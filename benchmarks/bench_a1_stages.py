"""Regenerate A1 — stage placement ablation (extension beyond the paper's figures)."""

from repro.experiments import run_experiment

from conftest import save_report


def test_a1_stages(benchmark, report_dir, scale):
    result = benchmark.pedantic(
        run_experiment, args=("A1",), kwargs={"scale": scale},
        rounds=1, iterations=1,
    )
    save_report(report_dir, result)
    assert result.exp_id == "A1"
    assert result.text
