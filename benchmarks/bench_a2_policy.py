"""Regenerate A2 — policy threshold ablation (extension beyond the paper's figures)."""

from repro.experiments import run_experiment

from conftest import save_report


def test_a2_policy(benchmark, report_dir, scale):
    result = benchmark.pedantic(
        run_experiment, args=("A2",), kwargs={"scale": scale},
        rounds=1, iterations=1,
    )
    save_report(report_dir, result)
    assert result.exp_id == "A2"
    assert result.text
