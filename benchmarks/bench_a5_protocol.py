"""Regenerate A5 — MSI vs MESI protocol (extension beyond the paper)."""

from repro.experiments import run_experiment

from conftest import save_report


def test_a5_protocol(benchmark, report_dir, scale):
    result = benchmark.pedantic(
        run_experiment, args=("A5",), kwargs={"scale": scale},
        rounds=1, iterations=1,
    )
    save_report(report_dir, result)
    assert result.exp_id == "A5"
    assert result.text
