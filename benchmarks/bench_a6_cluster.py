"""Regenerate A6 — cluster organization (extension beyond the paper)."""

from repro.experiments import run_experiment

from conftest import save_report


def test_a6_cluster(benchmark, report_dir, scale):
    result = benchmark.pedantic(
        run_experiment, args=("A6",), kwargs={"scale": scale},
        rounds=1, iterations=1,
    )
    save_report(report_dir, result)
    assert result.exp_id == "A6"
    assert result.text
