"""Regenerate A7 — switch-cache replacement policy (extension)."""

from repro.experiments import run_experiment

from conftest import save_report


def test_a7_replacement(benchmark, report_dir, scale):
    result = benchmark.pedantic(
        run_experiment, args=("A7",), kwargs={"scale": scale},
        rounds=1, iterations=1,
    )
    save_report(report_dir, result)
    assert result.exp_id == "A7"
    assert result.text
