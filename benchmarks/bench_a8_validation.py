"""Regenerate A8 — network model validation (fabric vs flit reference)."""

from repro.experiments import run_experiment

from conftest import save_report


def test_a8_validation(benchmark, report_dir, scale):
    result = benchmark.pedantic(
        run_experiment, args=("A8",), kwargs={"scale": scale},
        rounds=1, iterations=1,
    )
    save_report(report_dir, result)
    assert result.exp_id == "A8"
    # the models must agree within a few percent on every microbenchmark
    for label, entry in result.data.items():
        ratio = entry["fabric"] / entry["flit_ref"]
        assert 0.9 <= ratio <= 1.1, (label, entry)
