"""Regenerate E4 — read stall time (paper anchor: see DESIGN.md Sec. 4)."""

from repro.experiments import run_experiment

from conftest import save_report


def test_e4_stall(benchmark, report_dir, scale):
    result = benchmark.pedantic(
        run_experiment, args=("E4",), kwargs={"scale": scale},
        rounds=1, iterations=1,
    )
    save_report(report_dir, result)
    assert result.exp_id == "E4"
    assert result.text
