"""Regenerate E6 — cache size sensitivity (paper anchor: see DESIGN.md Sec. 4)."""

from repro.experiments import run_experiment

from conftest import save_report


def test_e6_size(benchmark, report_dir, scale):
    result = benchmark.pedantic(
        run_experiment, args=("E6",), kwargs={"scale": scale},
        rounds=1, iterations=1,
    )
    save_report(report_dir, result)
    assert result.exp_id == "E6"
    assert result.text
