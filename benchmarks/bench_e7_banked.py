"""Regenerate E7 — CAESAR vs CAESAR+ (paper anchor: see DESIGN.md Sec. 4)."""

from repro.experiments import run_experiment

from conftest import save_report


def test_e7_banked(benchmark, report_dir, scale):
    result = benchmark.pedantic(
        run_experiment, args=("E7",), kwargs={"scale": scale},
        rounds=1, iterations=1,
    )
    save_report(report_dir, result)
    assert result.exp_id == "E7"
    assert result.text
