"""Regenerate E8 — output width (paper anchor: see DESIGN.md Sec. 4)."""

from repro.experiments import run_experiment

from conftest import save_report


def test_e8_width(benchmark, report_dir, scale):
    result = benchmark.pedantic(
        run_experiment, args=("E8",), kwargs={"scale": scale},
        rounds=1, iterations=1,
    )
    save_report(report_dir, result)
    assert result.exp_id == "E8"
    assert result.text
