"""Regenerate E9 — hits by MIN stage (paper anchor: see DESIGN.md Sec. 4)."""

from repro.experiments import run_experiment

from conftest import save_report


def test_e9_stages(benchmark, report_dir, scale):
    result = benchmark.pedantic(
        run_experiment, args=("E9",), kwargs={"scale": scale},
        rounds=1, iterations=1,
    )
    save_report(report_dir, result)
    assert result.exp_id == "E9"
    assert result.text
