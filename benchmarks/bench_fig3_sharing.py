"""Regenerate F3 — read sharing pattern (paper anchor: see DESIGN.md Sec. 4)."""

from repro.experiments import run_experiment

from conftest import save_report


def test_fig3_sharing(benchmark, report_dir, scale):
    result = benchmark.pedantic(
        run_experiment, args=("F3",), kwargs={"scale": scale},
        rounds=1, iterations=1,
    )
    save_report(report_dir, result)
    assert result.exp_id == "F3"
    assert result.text
