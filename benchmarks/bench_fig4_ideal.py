"""Regenerate F4 — ideal global cache (paper anchor: see DESIGN.md Sec. 4)."""

from repro.experiments import run_experiment

from conftest import save_report


def test_fig4_ideal(benchmark, report_dir, scale):
    result = benchmark.pedantic(
        run_experiment, args=("F4",), kwargs={"scale": scale},
        rounds=1, iterations=1,
    )
    save_report(report_dir, result)
    assert result.exp_id == "F4"
    assert result.text
