"""Regenerate F5 — base latency breakdown (paper anchor: see DESIGN.md Sec. 4)."""

from repro.experiments import run_experiment

from conftest import save_report


def test_fig5_breakdown(benchmark, report_dir, scale):
    result = benchmark.pedantic(
        run_experiment, args=("F5",), kwargs={"scale": scale},
        rounds=1, iterations=1,
    )
    save_report(report_dir, result)
    assert result.exp_id == "F5"
    assert result.text
