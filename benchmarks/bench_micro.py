"""Microbenchmarks of the simulator's hot paths.

These are true pytest-benchmark measurements (many iterations): cache
array probes, BMIN route computation, switch-cache engine operations, and
the event engine itself.  They guard against performance regressions that
would make the paper-scale experiments impractically slow.
"""

from repro.cache.array import CacheArray
from repro.cache.states import LineState
from repro.core.caesar import CaesarEngine
from repro.core.switchcache import SwitchCacheGeometry
from repro.network.message import Message, MsgKind
from repro.network.topology import BminTopology
from repro.sim.engine import Simulator


def test_cache_array_lookup(benchmark):
    array = CacheArray(16 * 1024, 64, 2)
    for block in range(256):
        array.insert(block * 64, LineState.SHARED, 1)

    def probe_all():
        hits = 0
        for block in range(256):
            if array.lookup(block * 64) is not None:
                hits += 1
        return hits

    assert benchmark(probe_all) == 256


def test_bmin_routing(benchmark):
    topo = BminTopology(16)

    def route_all_pairs():
        total = 0
        for a in range(16):
            for b in range(16):
                if a != b:
                    total += len(topo.path(a, b))
        return total

    assert benchmark(route_all_pairs) > 0


def test_event_engine_throughput(benchmark):
    def run_10k_events():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                sim.schedule(1, tick)

        sim.schedule(0, tick)
        sim.run()
        return count[0]

    assert benchmark(run_10k_events) == 10_000


def test_event_engine_cancellation(benchmark):
    """Timeout-style load: most events are cancelled before they fire.

    Models the simulator's dominant cancellation pattern (speculative
    wakeups superseded by earlier completions) and exercises the
    pop-once ``run(until=...)`` loop plus the O(1) ``pending`` counter.
    """

    def run_with_cancellations():
        sim = Simulator()
        fired = [0]

        def tick():
            fired[0] += 1

        # schedule 4 timeouts per step, cancel 3, run in until-windows
        events = []
        for step in range(2_000):
            t = step * 4
            for slot in range(4):
                events.append(sim.at(t + slot + 1, tick))
        for i, event in enumerate(events):
            if i % 4:
                event.cancel()
        horizon = 0
        while sim.pending:
            horizon += 512
            sim.run(until=horizon)
        return fired[0]

    assert benchmark(run_with_cancellations) == 2_000


def test_caesar_deposit_then_hit(benchmark):
    def deposit_and_intercept():
        sim = Simulator()
        engine = CaesarEngine(sim, (1, 0), SwitchCacheGeometry(size=2048))
        served = 0
        for block in range(64):
            addr = block * 64
            reply = Message(MsgKind.DATA_S, 0, 1, addr, 9, data=1)
            engine.try_deposit(reply)
            request = Message(MsgKind.READ, 2, 0, addr, 1)
            if engine.try_intercept(request) is not None:
                served += 1
            # worms arrive spaced out; keep the engine's ports drained so
            # the busy-bypass policy (correctly) stays out of the way
            sim.now += 16
        return served

    assert benchmark(deposit_and_intercept) == 64
