"""Microbenchmarks of the simulator's hot paths.

These are true pytest-benchmark measurements (many iterations): cache
array probes, BMIN route computation, switch-cache engine operations, and
the event engine itself.  They guard against performance regressions that
would make the paper-scale experiments impractically slow.
"""

from repro.cache.array import CacheArray
from repro.cache.states import LineState
from repro.core.caesar import CaesarEngine
from repro.core.switchcache import SwitchCacheGeometry
from repro.network.message import Message, MsgKind
from repro.network.topology import BminTopology
from repro.sim.engine import Simulator


def test_cache_array_lookup(benchmark):
    array = CacheArray(16 * 1024, 64, 2)
    for block in range(256):
        array.insert(block * 64, LineState.SHARED, 1)

    def probe_all():
        hits = 0
        for block in range(256):
            if array.lookup(block * 64) is not None:
                hits += 1
        return hits

    assert benchmark(probe_all) == 256


def test_bmin_routing(benchmark):
    topo = BminTopology(16)

    def route_all_pairs():
        total = 0
        for a in range(16):
            for b in range(16):
                if a != b:
                    total += len(topo.path(a, b))
        return total

    assert benchmark(route_all_pairs) > 0


def test_event_engine_throughput(benchmark):
    """Steady-state engine load: thousands pending, interleaved cancels.

    The old version of this benchmark kept exactly one event queued
    (schedule-one/fire-one), which a heap serves in O(1) too — it could
    not distinguish the calendar queue from the reference heap.  This
    one holds a few thousand events pending (a 16-node machine peaks in
    the tens-to-hundreds; paper-scale configs go higher), with the
    short constant delays and the speculative-wakeup cancellations of
    the real machine, so per-op cost at realistic depth is what gets
    measured.
    """
    DEPTH = 3_000
    TOTAL = 15_000

    def run_steady_state():
        sim = Simulator()
        fired = [0]
        cancelled = []

        def tick(delay):
            fired[0] += 1
            if fired[0] + sim.pending < TOTAL:
                # reschedule at the machine's short constant delays, and
                # park a speculative event that is cancelled before firing
                event = sim.call(delay + 200, tick, delay)
                cancelled.append(event)
                sim.call(delay, tick, delay)
                if len(cancelled) >= 16:
                    cancelled.pop().cancel()

        for i in range(DEPTH):
            sim.call(1 + (i % 64), tick, 1 + (i % 7) * 4)
        sim.run()
        return fired[0]

    assert benchmark(run_steady_state) > DEPTH


def test_event_engine_cancellation(benchmark):
    """Timeout-style load: most events are cancelled before they fire.

    Models the simulator's dominant cancellation pattern (speculative
    wakeups superseded by earlier completions) and exercises the
    pop-once ``run(until=...)`` loop plus the O(1) ``pending`` counter.
    """

    def run_with_cancellations():
        sim = Simulator()
        fired = [0]

        def tick():
            fired[0] += 1

        # schedule 4 timeouts per step, cancel 3, run in until-windows
        events = []
        for step in range(2_000):
            t = step * 4
            for slot in range(4):
                events.append(sim.at(t + slot + 1, tick))
        for i, event in enumerate(events):
            if i % 4:
                event.cancel()
        horizon = 0
        while sim.pending:
            horizon += 512
            sim.run(until=horizon)
        return fired[0]

    assert benchmark(run_with_cancellations) == 2_000


def test_caesar_deposit_then_hit(benchmark):
    def deposit_and_intercept():
        sim = Simulator()
        engine = CaesarEngine(sim, (1, 0), SwitchCacheGeometry(size=2048))
        served = 0
        for block in range(64):
            addr = block * 64
            reply = Message(MsgKind.DATA_S, 0, 1, addr, 9, data=1)
            engine.try_deposit(reply)
            request = Message(MsgKind.READ, 2, 0, addr, 1)
            if engine.try_intercept(request) is not None:
                served += 1
            # worms arrive spaced out; keep the engine's ports drained so
            # the busy-bypass policy (correctly) stays out of the way
            sim.now += 16
        return served

    assert benchmark(deposit_and_intercept) == 64
