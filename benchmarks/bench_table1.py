"""Regenerate T1 — CAESAR access operations and delays (paper anchor: see DESIGN.md Sec. 4)."""

from repro.experiments import run_experiment

from conftest import save_report


def test_table1(benchmark, report_dir, scale):
    result = benchmark.pedantic(
        run_experiment, args=("T1",), kwargs={"scale": scale},
        rounds=1, iterations=1,
    )
    save_report(report_dir, result)
    assert result.exp_id == "T1"
    assert result.text
