"""Regenerate T2 — simulation parameters (paper anchor: see DESIGN.md Sec. 4)."""

from repro.experiments import run_experiment

from conftest import save_report


def test_table2(benchmark, report_dir, scale):
    result = benchmark.pedantic(
        run_experiment, args=("T2",), kwargs={"scale": scale},
        rounds=1, iterations=1,
    )
    save_report(report_dir, result)
    assert result.exp_id == "T2"
    assert result.text
