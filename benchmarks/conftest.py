"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one table/figure of the paper (see
DESIGN.md Sec. 4).  Simulation runs are memoized inside
``repro.experiments.common``, so the whole harness executes each distinct
(app, config) machine exactly once per pytest session; reports are written
to ``benchmarks/output/<exp-id>.txt`` for inspection.

Two more caching layers speed the harness up further (DESIGN.md):

* the on-disk run cache (``results/.runcache/``) persists completed
  runs across pytest sessions — disable with ``--no-runcache``;
* with ``--jobs N`` the distinct simulations every experiment needs are
  executed up front on N worker processes (``repro.experiments.parallel``),
  so the serial bench modules find them all memoized.
"""

from __future__ import annotations

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--jobs", type=int, default=1, metavar="N",
        help="prewarm the harness's simulations over N worker processes",
    )
    parser.addoption(
        "--no-runcache", action="store_true",
        help="do not read or write the on-disk run cache",
    )


@pytest.fixture(scope="session", autouse=True)
def run_caches(request: pytest.FixtureRequest, scale: str) -> None:
    """Enable the disk cache and (optionally) prewarm in parallel."""
    from repro.experiments import parallel, runcache
    from repro.experiments.registry import EXPERIMENTS

    runcache.set_enabled(not request.config.getoption("--no-runcache"))
    jobs = request.config.getoption("--jobs")
    if jobs > 1:
        parallel.prewarm(list(EXPERIMENTS), scale=scale, jobs=jobs)


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def scale() -> str:
    """Input scale used by the benchmark harness."""
    return "quick"


def save_report(report_dir: pathlib.Path, result) -> None:
    path = report_dir / f"{result.exp_id}.txt"
    path.write_text(f"== {result.exp_id}: {result.title} ==\n{result.text}\n")
