"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one table/figure of the paper (see
DESIGN.md Sec. 4).  Simulation runs are memoized inside
``repro.experiments.common``, so the whole harness executes each distinct
(app, config) machine exactly once per pytest session; reports are written
to ``benchmarks/output/<exp-id>.txt`` for inspection.
"""

from __future__ import annotations

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def scale() -> str:
    """Input scale used by the benchmark harness."""
    return "quick"


def save_report(report_dir: pathlib.Path, result) -> None:
    path = report_dir / f"{result.exp_id}.txt"
    path.write_text(f"== {result.exp_id}: {result.title} ==\n{result.text}\n")
