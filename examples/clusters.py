"""Bus-based clusters: the same 16 processors, three organizations.

The paper's CC-NUMA machines are built from bus-based clusters; this
example arranges 16 processors as 16x1, 8x2, and 4x4 (nodes x processors
per node) and compares the base machine, a per-node network cache, and
CAESAR switch caches.  The L2s are deliberately small so the network
cache has capacity re-fetches to serve — the miss class it was designed
for — while the switch caches keep serving the sharing misses.

Run:  python examples/clusters.py
"""

from repro import Machine, base_config, netcache_config, switch_cache_config
from repro.apps import MatrixMultiply
from repro.stats import format_table


def run(config):
    machine = Machine(config)
    stats = machine.run(MatrixMultiply(n=24))
    return machine, stats


def main() -> None:
    rows = []
    small = dict(l1_size=512, l2_size=2048)
    for nodes, ppn in ((16, 1), (8, 2), (4, 4)):
        _m, base = run(base_config(num_nodes=nodes, procs_per_node=ppn, **small))
        _m, nc = run(netcache_config(num_nodes=nodes, procs_per_node=ppn,
                                     netcache_size=32 * 1024, **small))
        _m, sc = run(switch_cache_config(size=2048, num_nodes=nodes,
                                         procs_per_node=ppn, **small))
        rows.append(
            (
                f"{nodes} x {ppn}",
                base.exec_time,
                f"{nc.exec_time / base.exec_time:.3f}",
                f"{sc.exec_time / base.exec_time:.3f}",
                nc.read_counts["netcache"],
                base.read_counts["cluster"],
                sc.read_counts["switch"],
            )
        )
    print(format_table(
        ("nodes x procs", "base cycles", "NC (norm)", "SC (norm)",
         "NC hits", "bus reads", "switch hits"),
        rows,
        title="MM (n=24), 16 processors, small L2s: cluster organizations",
    ))


if __name__ == "__main__":
    main()
