"""The paper's central comparison: base vs network cache vs switch cache.

Runs all six kernels on the three system designs and prints normalized
execution time and remote-read service counts — the data behind the
paper's conclusion that in-network caching beats per-node network caches
when each node has a single processor.

Run:  python examples/compare_designs.py [app ...]
"""

import sys

from repro import Machine, base_config, netcache_config, switch_cache_config
from repro.apps import PAPER_APPS
from repro.stats import format_table


def run_design(app_name: str, config):
    machine = Machine(config)
    stats = machine.run(PAPER_APPS[app_name]())
    return stats


def main() -> None:
    names = sys.argv[1:] or list(PAPER_APPS)
    rows = []
    for name in names:
        base = run_design(name, base_config())
        nc = run_design(name, netcache_config())
        sc = run_design(name, switch_cache_config(size=2048))
        rows.append(
            (
                name,
                base.exec_time,
                f"{nc.exec_time / base.exec_time:.3f}",
                f"{sc.exec_time / base.exec_time:.3f}",
                base.reads_at_remote_memory(),
                nc.reads_at_remote_memory(),
                sc.reads_at_remote_memory(),
                sc.read_counts["switch"],
            )
        )
    print(format_table(
        ("app", "base cycles", "NC (norm)", "SC (norm)",
         "remote@base", "remote@NC", "remote@SC", "switch hits"),
        rows,
        title="Base vs network cache vs CAESAR switch cache",
    ))


if __name__ == "__main__":
    main()
