"""Writing your own workload against the Application API.

Models a software pipeline: stage 0 produces a buffer, every other
processor consumes it, round after round — a producer-to-all-consumers
pattern like the paper's GE/FWA phases.  Shows allocation with explicit
home placement, barrier sequencing, and how to read the statistics that
matter for a sharing study.

Run:  python examples/custom_workload.py
"""

from repro import Machine, switch_cache_config
from repro.apps.base import Application, BarrierSequencer
from repro.stats import format_series, percent
from repro.system.addressing import Vector


class BroadcastPipeline(Application):
    """One producer, N-1 consumers, ``rounds`` hand-offs."""

    name = "broadcast-pipeline"

    def __init__(self, buffer_bytes: int = 4096, rounds: int = 4) -> None:
        self.buffer_bytes = buffer_bytes
        self.rounds = rounds
        self.buffer = None

    def setup(self, machine) -> None:
        # the buffer lives in the producer's local memory (node 0)
        self.buffer = Vector(machine.space, self.buffer_bytes // 8, home=0)

    def ops(self, proc_id: int, machine):
        barriers = BarrierSequencer(self.name)
        words = self.buffer_bytes // 8
        for _round in range(self.rounds):
            if proc_id == 0:
                for i in range(0, words, 8):  # one store per cache block
                    yield ("w", self.buffer.addr(i))
            yield ("barrier", barriers.next())
            if proc_id != 0:
                for i in range(words):
                    yield ("r", self.buffer.addr(i))
                yield ("work", words)
            yield ("barrier", barriers.next())


def main() -> None:
    machine = Machine(switch_cache_config(size=2048))
    stats = machine.run(BroadcastPipeline())

    dist = stats.service_distribution()
    print("read service distribution:")
    for category in ("l1", "l2", "switch", "remote_mem", "owner"):
        print(f"  {category:11s} {percent(dist[category])}")
    print(f"\nmean sharing degree: {stats.mean_sharing_degree():.1f} readers/block")
    stages = [stats.switch_hits_by_stage.get(s, 0) for s in range(4)]
    print(format_series("switch hits by stage", list(range(4)), stages))
    print(f"execution time: {stats.exec_time} cycles")


if __name__ == "__main__":
    main()
