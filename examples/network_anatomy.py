"""Anatomy of the wormhole BMIN: routing, latency, and hot links.

Walks through the interconnect substrate on its own — paths through the
butterfly, the per-hop latency arithmetic of a worm, and which links
saturate under an all-to-one hotspot — useful when reasoning about where
switch caches pay off (they serve requests *before* the hotspot).

Run:  python examples/network_anatomy.py
"""

from repro.network.fabric import Fabric
from repro.network.message import Message, MsgKind, flits_for
from repro.network.topology import BminTopology
from repro.sim.engine import Simulator
from repro.stats import format_table


def show_routing(topo: BminTopology) -> None:
    print("paths from node 0 (stage, row):")
    for dst in (1, 2, 5, 15):
        hops = " -> ".join(str(s) for s in topo.path(0, dst))
        print(f"  0 -> {dst:2d}: {hops}")
    print()


def show_latency() -> None:
    sim = Simulator()
    topo = BminTopology(16)
    fabric = Fabric(sim, topo)
    delivered = {}
    for node in range(16):
        fabric.attach_node(node, lambda m, n=node: delivered.setdefault(m.id, sim.now))
    rows = []
    for dst in (1, 2, 5, 15):
        for kind in (MsgKind.READ, MsgKind.DATA_S):
            msg = Message(kind, 0, dst, 0x40, flits_for(kind, 64), data=0)
            fabric.inject(msg)
            sim.run()
            rows.append((f"0 -> {dst}", kind.value, msg.flits,
                         len(msg.route), msg.delivered_at - msg.created_at))
    print(format_table(
        ("route", "message", "flits", "hops", "latency (cycles)"),
        rows, title="Uncontended worm latencies",
    ))
    print()


def show_hotspot() -> None:
    sim = Simulator()
    topo = BminTopology(16)
    fabric = Fabric(sim, topo)
    for node in range(16):
        fabric.attach_node(node, lambda m: None)
    # every node fires a data-sized worm at node 0 (an all-to-one hotspot,
    # like bulk read replies leaving one hot home memory)
    for src in range(1, 16):
        fabric.inject(Message(MsgKind.DATA_S, src, 0, 0x40, 9, data=0))
    sim.run()
    hot = []
    for sid, switch in fabric.switches.items():
        for neighbor, link in switch.outputs().items():
            if link.msgs:
                hot.append((str(sid), str(neighbor), link.msgs,
                            f"{link.mean_queueing_delay():.1f}"))
    hot.sort(key=lambda r: -float(r[3]))
    print(format_table(
        ("switch", "toward", "worms", "mean queue (cycles)"),
        hot[:8], title="Hottest links under a 15-to-1 hotspot",
    ))


def main() -> None:
    topo = BminTopology(16)
    print(f"{topo!r}\n")
    show_routing(topo)
    show_latency()
    show_hotspot()


if __name__ == "__main__":
    main()
