"""MSI vs MESI: a protocol case study.

The MESI extension grants a sole reader a clean-exclusive copy so a
later write needs no upgrade transaction — a win for private
read-modify-write data, but every *second* reader of an E-granted block
pays a recall instead of a plain memory serve.  This example runs two
contrasting workloads to show both sides, mirroring ablation A5.

Run:  python examples/protocol_study.py
"""

from repro import Machine, SystemConfig
from repro.apps import MatrixMultiply, PrivateWork
from repro.stats import format_table


def run(app_factory, protocol):
    machine = Machine(SystemConfig(protocol=protocol))
    stats = machine.run(app_factory())
    return machine, stats


def main() -> None:
    workloads = [
        ("PrivateWork (read-modify-write, private)",
         lambda: PrivateWork(nbytes_per_proc=4096, rounds=2)),
        ("MM n=24 (widely read-shared B matrix)",
         lambda: MatrixMultiply(n=24)),
    ]
    rows = []
    for label, factory in workloads:
        _m_msi, msi = run(factory, "msi")
        m_mesi, mesi = run(factory, "mesi")
        grants = sum(n.home_ctrl.exclusive_grants for n in m_mesi.nodes)
        rows.append(
            (
                label,
                msi.exec_time,
                f"{mesi.exec_time / msi.exec_time:.3f}",
                msi.upgrades_completed,
                mesi.upgrades_completed,
                grants,
            )
        )
    print(format_table(
        ("workload", "MSI cycles", "MESI/MSI", "upgrades (MSI)",
         "upgrades (MESI)", "E grants"),
        rows,
        title="MSI vs MESI on 16 nodes",
    ))
    print(
        "\nPrivate data: MESI deletes the upgrade transactions (1024 -> 0)\n"
        "but the write buffer already hid their latency under release\n"
        "consistency, so the saving is traffic, not time.\n"
        "Read-shared data: every E grant turns the next reader's miss\n"
        "into a three-hop recall on the critical (read) path — the\n"
        "paper's MSI choice is the right one for its workload class\n"
        "(ablation A5 quantifies this at full scale)."
    )


if __name__ == "__main__":
    main()
