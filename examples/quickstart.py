"""Quickstart: run one application on a switch-cache machine.

Builds the paper's 16-node CC-NUMA system with 2 KB CAESAR switch caches,
runs Gaussian elimination, and prints where reads were served and how the
execution time compares with the plain base machine.

Run:  python examples/quickstart.py
"""

from repro import Machine, base_config, switch_cache_config
from repro.apps import GaussianElimination
from repro.stats import format_table, percent


def main() -> None:
    app_factory = lambda: GaussianElimination(n=32)

    base = Machine(base_config())
    base_stats = base.run(app_factory())

    caesar = Machine(switch_cache_config(size=2048))
    caesar_stats = caesar.run(app_factory())

    rows = []
    for label, stats in (("base", base_stats), ("switch cache", caesar_stats)):
        dist = stats.service_distribution()
        rows.append(
            (
                label,
                stats.exec_time,
                percent(dist["l1"] + dist["wb"]),
                percent(dist["l2"]),
                percent(dist["switch"]),
                percent(dist["remote_mem"] + dist["owner"]),
            )
        )
    print(format_table(
        ("config", "exec cycles", "L1/WB", "L2", "switch cache", "remote mem"),
        rows,
        title="GE (n=32) on 16 nodes",
    ))

    speedup = 1 - caesar_stats.exec_time / base_stats.exec_time
    print(f"\nexecution-time improvement: {speedup:.1%}")
    print(f"switch-cache hits by MIN stage: {caesar_stats.switch_hits_by_stage}")
    print(f"coherence audit: {'clean' if not caesar.check_coherence() else 'VIOLATIONS'}")


if __name__ == "__main__":
    main()
