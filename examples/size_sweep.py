"""Switch-cache size sensitivity (the paper's 512-byte claim).

Sweeps the per-switch cache size from 256 B to 8 KB on the high-sharing
Floyd-Warshall kernel and prints the improvement curve.  The paper's
claim C4: "a small cache size of 512 bytes is sufficient to provide a
reasonable performance benefit".

Run:  python examples/size_sweep.py
"""

from repro import Machine, base_config, switch_cache_config
from repro.apps import FloydWarshall
from repro.stats import format_table


def main() -> None:
    app_factory = lambda: FloydWarshall(n=32)
    base = Machine(base_config()).run(app_factory())

    rows = []
    for size in (256, 512, 1024, 2048, 4096, 8192):
        machine = Machine(switch_cache_config(size=size))
        stats = machine.run(app_factory())
        totals = machine.switch_cache_stats()
        rows.append(
            (
                f"{size}B",
                f"{1 - stats.exec_time / base.exec_time:.1%}",
                stats.read_counts["switch"],
                totals["deposits"],
                f"{totals['hits'] / max(1, totals['lookups']):.1%}",
            )
        )
    print(format_table(
        ("cache size", "exec improvement", "reads served in-network",
         "deposits", "engine hit rate"),
        rows,
        title=f"FWA (n=32): switch-cache size sweep (base = {base.exec_time} cycles)",
    ))


if __name__ == "__main__":
    main()
