"""repro — Switch Cache (CAESAR) for CC-NUMA multiprocessors.

An execution-driven simulation library reproducing Iyer & Bhuyan,
"Switch Cache: A Framework for Improving the Remote Memory Access
Latency of CC-NUMA Multiprocessors" (HPCA 1999).

Quickstart::

    from repro import Machine, switch_cache_config
    from repro.apps import GaussianElimination

    machine = Machine(switch_cache_config(size=2048))
    stats = machine.run(GaussianElimination(n=32))
    print(stats.service_distribution())
"""

from .errors import (
    ConfigError,
    DeadlockError,
    NetworkError,
    ProtocolError,
    ReproError,
    SimulationError,
)
from .stats.counters import MachineStats
from .system.config import KB, SystemConfig
from .system.machine import Machine
from .system.presets import (
    base_config,
    caesar_plus_config,
    netcache_config,
    switch_cache_config,
)

__version__ = "1.0.0"

__all__ = [
    "ConfigError",
    "DeadlockError",
    "NetworkError",
    "ProtocolError",
    "ReproError",
    "SimulationError",
    "MachineStats",
    "KB",
    "SystemConfig",
    "Machine",
    "base_config",
    "caesar_plus_config",
    "netcache_config",
    "switch_cache_config",
    "__version__",
]
