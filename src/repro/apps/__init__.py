"""Workloads: the six paper kernels plus synthetic test patterns."""

from .base import Application, BarrierSequencer, block_partition, cyclic_partition, owner_of_row
from .fft import SixStepFFT
from .fwa import FloydWarshall
from .ge import GaussianElimination
from .gs import GramSchmidt
from .mm import MatrixMultiply
from .sor import RedBlackSOR
from .synthetic import HotBlock, PingPong, PrivateWork, SharedReaders, UniformRandom
from .trace import TraceApplication, TraceRecorder

PAPER_APPS = {
    "FWA": FloydWarshall,
    "GS": GramSchmidt,
    "GE": GaussianElimination,
    "MM": MatrixMultiply,
    "SOR": RedBlackSOR,
    "FFT": SixStepFFT,
}

__all__ = [
    "Application",
    "BarrierSequencer",
    "block_partition",
    "cyclic_partition",
    "owner_of_row",
    "FloydWarshall",
    "GaussianElimination",
    "GramSchmidt",
    "MatrixMultiply",
    "RedBlackSOR",
    "SixStepFFT",
    "SharedReaders",
    "PingPong",
    "PrivateWork",
    "UniformRandom",
    "HotBlock",
    "TraceApplication",
    "TraceRecorder",
    "PAPER_APPS",
]
