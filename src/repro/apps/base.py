"""Application framework.

An :class:`Application` allocates its shared data structures on the
machine (``setup``) and then supplies one operation stream per processor
(``ops``).  The streams are *execution-driven at memory-operation
granularity*: they are produced by actually running the kernel's loops,
so the addresses, their order, the inter-processor sharing pattern and
the barrier structure are those of the real algorithm (see DESIGN.md,
substitution table).

Operation vocabulary (consumed by :class:`repro.node.processor.Processor`):

``('r', addr)`` ``('w', addr)`` ``('work', cycles)``
``('barrier', id)`` ``('lock', id)`` ``('unlock', id)``

Applications may instead describe their streams as *macro ops* —
the elementary vocabulary plus ``('rr', base, stride, count)`` /
``('wr', base, stride, count)`` stride runs and
``('loop', iters, body)`` fixed-slot loops — which the op-stream
compiler (:mod:`repro.apps.opstream`, DESIGN.md §13) lowers to
integer-coded superops; the elementary ``ops`` stream is then derived
by expansion, so both front-end modes execute the same stream by
construction.
"""

from __future__ import annotations

import abc
import zlib
from typing import Dict, Iterator, Tuple

from ..errors import ConfigError
from .opstream import expand_macro

Op = Tuple


def block_partition(n_items: int, proc: int, num_procs: int) -> range:
    """Contiguous (blocked) partition of ``n_items`` among processors."""
    base = n_items // num_procs
    extra = n_items % num_procs
    start = proc * base + min(proc, extra)
    size = base + (1 if proc < extra else 0)
    return range(start, start + size)


def cyclic_partition(n_items: int, proc: int, num_procs: int) -> range:
    """Round-robin (cyclic) partition: items proc, proc+P, proc+2P, ..."""
    return range(proc, n_items, num_procs)


def owner_of_row(row: int, n_rows: int, num_procs: int) -> int:
    """Owner of a row under blocked partitioning."""
    base = n_rows // num_procs
    extra = n_rows % num_procs
    threshold = extra * (base + 1)
    if row < threshold:
        return row // (base + 1)
    return extra + (row - threshold) // base


class Application(abc.ABC):
    """One workload: shared-data setup plus per-processor op streams."""

    #: short name used in reports ("FWA", "GE", ...)
    name: str = "app"

    @abc.abstractmethod
    def setup(self, machine) -> None:
        """Allocate shared structures in ``machine.space``."""

    def ops(self, proc_id: int, machine) -> Iterator[Op]:
        """Yield the elementary operation stream for one processor.

        Subclasses override either this or :meth:`macro_ops`; the
        default of each derives from the other, so the two views always
        agree op for op.
        """
        if type(self).macro_ops is Application.macro_ops:
            raise ConfigError(
                f"{type(self).__name__} overrides neither ops() nor macro_ops()"
            )
        return expand_macro(self.macro_ops(proc_id, machine))

    def macro_ops(self, proc_id: int, machine) -> Iterator[Op]:
        """Yield the macro-op stream for one processor (see module doc)."""
        if type(self).ops is Application.ops:
            raise ConfigError(
                f"{type(self).__name__} overrides neither ops() nor macro_ops()"
            )
        return self.ops(proc_id, machine)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class BarrierSequencer:
    """Deterministic barrier-id source shared across a proc's generator.

    Every processor must create its sequencer the same way and call
    ``next()`` at the same program points, so all processors agree on
    barrier identities without global coordination.
    """

    def __init__(self, app_name: str) -> None:
        # ids only need to be unique within one machine run; hash the app
        # name into the id space so two apps never collide in tests that
        # run multiple apps on one machine.  crc32, not builtin hash():
        # string hashing is salted per process (PYTHONHASHSEED), so
        # hash() would make barrier ids — and every artifact that
        # records them — differ across processes (lint rule N).
        self._base = zlib.crc32(app_name.encode()) % 1000 * 1_000_000
        self._next = 0

    def next(self) -> int:
        bid = self._base + self._next
        self._next += 1
        return bid


def read_row(matrix, i: int, cols: int) -> Iterator[Op]:
    """Ops reading one matrix row element by element."""
    for j in range(cols):
        yield ("r", matrix.addr(i, j))


def touch_every_block(base: int, nbytes: int, block_size: int) -> Iterator[Op]:
    """Ops reading the first word of every block in a range."""
    for offset in range(0, nbytes, block_size):
        yield ("r", base + offset)
