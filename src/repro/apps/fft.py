"""FFT — the SPLASH six-step 1-D fast Fourier transform.

The n-point dataset is a sqrt(n) x sqrt(n) matrix of complex values,
row-partitioned.  The six steps are transpose, row FFTs, transpose,
twiddle + row FFTs, transpose (+ final row FFTs folded into step 4 as in
SPLASH).  Every remote datum in a transpose is read by exactly *one*
other processor — there is no read sharing to exploit — which is why the
paper finds FFT unaffected by switch caches.
"""

from __future__ import annotations

import math
from typing import Iterator

from ..errors import ConfigError
from ..system.addressing import Matrix
from .base import Application, BarrierSequencer, Op, block_partition, owner_of_row


class SixStepFFT(Application):
    name = "FFT"

    def __init__(self, m: int = 12, work_scale: int = 2) -> None:
        """``m``: log2 of the number of points (n = 2**m, m even)."""
        if m % 2:
            raise ConfigError("m must be even so sqrt(n) is integral")
        self.m = m
        self.side = 1 << (m // 2)
        self.work_scale = work_scale
        self.src = self.dst = None

    def setup(self, machine) -> None:
        side, procs = self.side, machine.num_procs
        home = lambda i: machine.node_of_proc(owner_of_row(i, side, procs))
        self.src = Matrix(machine.space, side, side, elem_bytes=16, row_home=home)
        self.dst = Matrix(machine.space, side, side, elem_bytes=16, row_home=home)

    def _row_fft(self, matrix, i: int) -> Iterator[Op]:
        side = self.side
        for j in range(side):
            yield ("r", matrix.addr(i, j))
        yield ("work", self.work_scale * side * max(1, int(math.log2(side))))
        for j in range(side):
            yield ("w", matrix.addr(i, j))

    def _transpose(self, src, dst, my_rows) -> Iterator[Op]:
        # read columns of src (remote rows, each element read once),
        # write my rows of dst
        for i in my_rows:
            for j in range(self.side):
                yield ("r", src.addr(j, i))
                yield ("w", dst.addr(i, j))

    def ops(self, proc_id: int, machine) -> Iterator[Op]:
        barriers = BarrierSequencer(self.name)
        my_rows = block_partition(self.side, proc_id, machine.num_procs)
        # step 1: transpose src -> dst
        yield from self._transpose(self.src, self.dst, my_rows)
        yield ("barrier", barriers.next())
        # step 2: FFT my rows of dst
        for i in my_rows:
            yield from self._row_fft(self.dst, i)
        yield ("barrier", barriers.next())
        # step 3: transpose dst -> src
        yield from self._transpose(self.dst, self.src, my_rows)
        yield ("barrier", barriers.next())
        # step 4: twiddle multiply + FFT my rows of src
        for i in my_rows:
            yield from self._row_fft(self.src, i)
        yield ("barrier", barriers.next())
        # step 5/6: final transpose src -> dst
        yield from self._transpose(self.src, self.dst, my_rows)
        yield ("barrier", barriers.next())
