"""FFT — the SPLASH six-step 1-D fast Fourier transform.

The n-point dataset is a sqrt(n) x sqrt(n) matrix of complex values,
row-partitioned.  The six steps are transpose, row FFTs, transpose,
twiddle + row FFTs, transpose (+ final row FFTs folded into step 4 as in
SPLASH).  Every remote datum in a transpose is read by exactly *one*
other processor — there is no read sharing to exploit — which is why the
paper finds FFT unaffected by switch caches.
"""

from __future__ import annotations

import math
from typing import Iterator

from ..errors import ConfigError
from ..system.addressing import Matrix
from .base import Application, BarrierSequencer, Op, block_partition, owner_of_row
from .opstream import row_pitch


class SixStepFFT(Application):
    name = "FFT"

    def __init__(self, m: int = 12, work_scale: int = 2) -> None:
        """``m``: log2 of the number of points (n = 2**m, m even)."""
        if m % 2:
            raise ConfigError("m must be even so sqrt(n) is integral")
        self.m = m
        self.side = 1 << (m // 2)
        self.work_scale = work_scale
        self.src = self.dst = None

    def setup(self, machine) -> None:
        side, procs = self.side, machine.num_procs
        home = lambda i: machine.node_of_proc(owner_of_row(i, side, procs))
        self.src = Matrix(machine.space, side, side, elem_bytes=16, row_home=home)
        self.dst = Matrix(machine.space, side, side, elem_bytes=16, row_home=home)

    def _row_fft(self, matrix, i: int) -> Iterator[Op]:
        side = self.side
        base = matrix._row_base[i]
        eb = matrix.elem_bytes
        yield ("rr", base, eb, side)
        yield ("work", self.work_scale * side * max(1, int(math.log2(side))))
        yield ("wr", base, eb, side)

    def _transpose(self, src, dst, my_rows) -> Iterator[Op]:
        # read columns of src (remote rows, each element read once,
        # striding down the column by the row pitch), write my rows of
        # dst — a two-slot loop per output row
        side = self.side
        eb = src.elem_bytes
        src_bases, dst_bases = src._row_base, dst._row_base
        pitch = row_pitch(src)
        for i in my_rows:
            if pitch:
                yield ("loop", side, (("r", src_bases[0] + i * eb, pitch),
                                      ("w", dst_bases[i], eb)))
            else:  # unevenly spaced rows: elementary fallback
                for j in range(side):
                    yield ("r", src_bases[j] + i * eb)
                    yield ("w", dst_bases[i] + j * eb)

    def macro_ops(self, proc_id: int, machine) -> Iterator[Op]:
        barriers = BarrierSequencer(self.name)
        my_rows = block_partition(self.side, proc_id, machine.num_procs)
        # step 1: transpose src -> dst
        yield from self._transpose(self.src, self.dst, my_rows)
        yield ("barrier", barriers.next())
        # step 2: FFT my rows of dst
        for i in my_rows:
            yield from self._row_fft(self.dst, i)
        yield ("barrier", barriers.next())
        # step 3: transpose dst -> src
        yield from self._transpose(self.dst, self.src, my_rows)
        yield ("barrier", barriers.next())
        # step 4: twiddle multiply + FFT my rows of src
        for i in my_rows:
            yield from self._row_fft(self.src, i)
        yield ("barrier", barriers.next())
        # step 5/6: final transpose src -> dst
        yield from self._transpose(self.src, self.dst, my_rows)
        yield ("barrier", barriers.next())
