"""FWA — Floyd-Warshall all-pairs shortest paths.

Blocked row partitioning of the distance matrix.  Iteration k relaxes
every (i, j) through vertex k: each processor reads *row k* for all its
updates — one producer, fifteen consumers, repeated N times.  The
highest sustained read-sharing degree of the six applications.
"""

from __future__ import annotations

from typing import Iterator

from ..system.addressing import Matrix
from .base import Application, BarrierSequencer, Op, block_partition, owner_of_row


class FloydWarshall(Application):
    name = "FWA"

    def __init__(self, n: int = 32, work_per_elem: int = 1) -> None:
        self.n = n
        self.work_per_elem = work_per_elem
        self.d = None

    def setup(self, machine) -> None:
        n, procs = self.n, machine.num_procs
        self.d = Matrix(
            machine.space, n, n,
            row_home=lambda i: machine.node_of_proc(owner_of_row(i, n, procs)),
        )

    def macro_ops(self, proc_id: int, machine) -> Iterator[Op]:
        n = self.n
        barriers = BarrierSequencer(self.name)
        my_rows = block_partition(n, proc_id, machine.num_procs)
        bases = self.d._row_base
        eb = self.d.elem_bytes
        work = ("work", self.work_per_elem * n)
        for k in range(n):
            yield ("barrier", barriers.next())
            k_base = bases[k]
            for i in my_rows:
                if i == k:
                    continue
                base = bases[i]
                yield ("r", base + k * eb)  # d[i][k]: in my own band
                # the j loop: row k (read by all), then row i read+write
                yield ("loop", n, (("r", k_base, eb),
                                   ("r", base, eb),
                                   ("w", base, eb)))
                yield work
        yield ("barrier", barriers.next())
