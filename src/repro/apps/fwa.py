"""FWA — Floyd-Warshall all-pairs shortest paths.

Blocked row partitioning of the distance matrix.  Iteration k relaxes
every (i, j) through vertex k: each processor reads *row k* for all its
updates — one producer, fifteen consumers, repeated N times.  The
highest sustained read-sharing degree of the six applications.
"""

from __future__ import annotations

from typing import Iterator

from ..system.addressing import Matrix
from .base import Application, BarrierSequencer, Op, block_partition, owner_of_row


class FloydWarshall(Application):
    name = "FWA"

    def __init__(self, n: int = 32, work_per_elem: int = 1) -> None:
        self.n = n
        self.work_per_elem = work_per_elem
        self.d = None

    def setup(self, machine) -> None:
        n, procs = self.n, machine.num_procs
        self.d = Matrix(
            machine.space, n, n,
            row_home=lambda i: machine.node_of_proc(owner_of_row(i, n, procs)),
        )

    def ops(self, proc_id: int, machine) -> Iterator[Op]:
        n = self.n
        barriers = BarrierSequencer(self.name)
        my_rows = block_partition(n, proc_id, machine.num_procs)
        for k in range(n):
            yield ("barrier", barriers.next())
            for i in my_rows:
                if i == k:
                    continue
                yield ("r", self.d.addr(i, k))  # d[i][k]: in my own band
                for j in range(n):
                    yield ("r", self.d.addr(k, j))  # row k: read by all
                    yield ("r", self.d.addr(i, j))
                    yield ("w", self.d.addr(i, j))
                yield ("work", self.work_per_elem * n)
        yield ("barrier", barriers.next())
