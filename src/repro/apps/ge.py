"""GE — Gaussian elimination with cyclic row distribution.

At step k every processor eliminates column k from its own rows below
the pivot, which requires reading pivot row k — produced by one
processor, *read by all* in the following phase.  This
producer-to-all-consumers pattern (Figure 3 of the paper) is where
switch caches shine: the first consumer's reply populates the switches
on the pivot row's tree and the remaining consumers hit in the network.
"""

from __future__ import annotations

from typing import Iterator

from ..system.addressing import Matrix
from .base import Application, BarrierSequencer, Op, cyclic_partition


class GaussianElimination(Application):
    name = "GE"

    def __init__(self, n: int = 32, work_per_elem: int = 2) -> None:
        self.n = n
        self.work_per_elem = work_per_elem
        self.a = None

    def setup(self, machine) -> None:
        n, procs = self.n, machine.num_procs
        # cyclic distribution: row i lives at (and is updated by) proc i % P
        self.a = Matrix(
            machine.space, n, n,
            row_home=lambda i: machine.node_of_proc(i % procs),
        )

    def macro_ops(self, proc_id: int, machine) -> Iterator[Op]:
        n, procs = self.n, machine.num_procs
        barriers = BarrierSequencer(self.name)
        my_rows = set(cyclic_partition(n, proc_id, procs))
        row_base = self.a._row_base
        eb = self.a.elem_bytes
        work = self.work_per_elem
        for k in range(n - 1):
            pivot_base = row_base[k]
            pivot_k = pivot_base + k * eb
            # the pivot owner normalizes row k: read-then-write sweep
            if k in my_rows:
                yield ("loop", n - k, (("r", pivot_k, eb), ("w", pivot_k, eb)))
                yield ("work", work * (n - k))
            yield ("barrier", barriers.next())
            # everyone eliminates column k from their rows below k
            for i in range(k + 1, n):
                if i not in my_rows:
                    continue
                base = row_base[i]
                yield ("r", base + k * eb)
                # pivot row (read by all) against my row i, element-wise
                yield ("loop", n - k, (("r", pivot_k, eb),
                                       ("r", base + k * eb, eb),
                                       ("w", base + k * eb, eb)))
                yield ("work", work * (n - k))
        yield ("barrier", barriers.next())
