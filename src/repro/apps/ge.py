"""GE — Gaussian elimination with cyclic row distribution.

At step k every processor eliminates column k from its own rows below
the pivot, which requires reading pivot row k — produced by one
processor, *read by all* in the following phase.  This
producer-to-all-consumers pattern (Figure 3 of the paper) is where
switch caches shine: the first consumer's reply populates the switches
on the pivot row's tree and the remaining consumers hit in the network.
"""

from __future__ import annotations

from typing import Iterator

from ..system.addressing import Matrix
from .base import Application, BarrierSequencer, Op, cyclic_partition


class GaussianElimination(Application):
    name = "GE"

    def __init__(self, n: int = 32, work_per_elem: int = 2) -> None:
        self.n = n
        self.work_per_elem = work_per_elem
        self.a = None

    def setup(self, machine) -> None:
        n, procs = self.n, machine.num_procs
        # cyclic distribution: row i lives at (and is updated by) proc i % P
        self.a = Matrix(
            machine.space, n, n,
            row_home=lambda i: machine.node_of_proc(i % procs),
        )

    def ops(self, proc_id: int, machine) -> Iterator[Op]:
        n, procs = self.n, machine.num_procs
        barriers = BarrierSequencer(self.name)
        my_rows = set(cyclic_partition(n, proc_id, procs))
        for k in range(n - 1):
            # the pivot owner normalizes row k
            if k in my_rows:
                for j in range(k, n):
                    yield ("r", self.a.addr(k, j))
                    yield ("w", self.a.addr(k, j))
                yield ("work", self.work_per_elem * (n - k))
            yield ("barrier", barriers.next())
            # everyone eliminates column k from their rows below k
            for i in range(k + 1, n):
                if i not in my_rows:
                    continue
                yield ("r", self.a.addr(i, k))
                for j in range(k, n):
                    yield ("r", self.a.addr(k, j))  # pivot row: read by all
                    yield ("r", self.a.addr(i, j))
                    yield ("w", self.a.addr(i, j))
                yield ("work", self.work_per_elem * (n - k))
        yield ("barrier", barriers.next())
