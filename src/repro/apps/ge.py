"""GE — Gaussian elimination with cyclic row distribution.

At step k every processor eliminates column k from its own rows below
the pivot, which requires reading pivot row k — produced by one
processor, *read by all* in the following phase.  This
producer-to-all-consumers pattern (Figure 3 of the paper) is where
switch caches shine: the first consumer's reply populates the switches
on the pivot row's tree and the remaining consumers hit in the network.
"""

from __future__ import annotations

from typing import Iterator

from ..system.addressing import Matrix
from .base import Application, BarrierSequencer, Op, cyclic_partition


class GaussianElimination(Application):
    name = "GE"

    def __init__(self, n: int = 32, work_per_elem: int = 2) -> None:
        self.n = n
        self.work_per_elem = work_per_elem
        self.a = None

    def setup(self, machine) -> None:
        n, procs = self.n, machine.num_procs
        # cyclic distribution: row i lives at (and is updated by) proc i % P
        self.a = Matrix(
            machine.space, n, n,
            row_home=lambda i: machine.node_of_proc(i % procs),
        )

    def ops(self, proc_id: int, machine) -> Iterator[Op]:
        n, procs = self.n, machine.num_procs
        barriers = BarrierSequencer(self.name)
        my_rows = set(cyclic_partition(n, proc_id, procs))
        # Matrix.addr inlined: this generator resumes once per simulated
        # op, so the per-element address arithmetic runs on locals
        row_base = self.a._row_base
        eb = self.a.elem_bytes
        work = self.work_per_elem
        for k in range(n - 1):
            pivot_base = row_base[k]
            # the pivot owner normalizes row k
            if k in my_rows:
                for j in range(k, n):
                    a = pivot_base + j * eb
                    yield ("r", a)
                    yield ("w", a)
                yield ("work", work * (n - k))
            yield ("barrier", barriers.next())
            # everyone eliminates column k from their rows below k
            for i in range(k + 1, n):
                if i not in my_rows:
                    continue
                base = row_base[i]
                yield ("r", base + k * eb)
                for j in range(k, n):
                    yield ("r", pivot_base + j * eb)  # pivot row: read by all
                    a = base + j * eb
                    yield ("r", a)
                    yield ("w", a)
                yield ("work", work * (n - k))
        yield ("barrier", barriers.next())
