"""GS — QR factorization by the modified Gram-Schmidt algorithm.

Vectors are distributed cyclically.  At step k the owner of vector k
normalizes it; every processor then orthogonalizes its own later vectors
against vector k.  Like GE, the current basis vector is produced by one
processor and read by all — the paper's strongest read-sharing class.
"""

from __future__ import annotations

from typing import Iterator

from ..system.addressing import Matrix
from .base import Application, BarrierSequencer, Op, cyclic_partition


class GramSchmidt(Application):
    name = "GS"

    def __init__(self, n_vectors: int = 24, length: int = 32, work_per_elem: int = 2) -> None:
        self.n_vectors = n_vectors
        self.length = length
        self.work_per_elem = work_per_elem
        self.v = None

    def setup(self, machine) -> None:
        procs = machine.num_procs
        # vector i is row i, homed at its owner's node
        self.v = Matrix(
            machine.space, self.n_vectors, self.length,
            row_home=lambda i: machine.node_of_proc(i % procs),
        )

    def macro_ops(self, proc_id: int, machine) -> Iterator[Op]:
        n, length = self.n_vectors, self.length
        procs = machine.num_procs
        barriers = BarrierSequencer(self.name)
        mine = set(cyclic_partition(n, proc_id, procs))
        bases = self.v._row_base
        eb = self.v.elem_bytes
        work = ("work", self.work_per_elem * length)
        for k in range(n):
            k_base = bases[k]
            if k in mine:
                # normalize vector k: dot(v_k, v_k) then scale
                yield ("rr", k_base, eb, length)
                yield work
                yield ("wr", k_base, eb, length)
            yield ("barrier", barriers.next())
            # orthogonalize my later vectors against v_k (read by all)
            for i in range(k + 1, n):
                if i not in mine:
                    continue
                base = bases[i]
                yield ("loop", length, (("r", k_base, eb), ("r", base, eb)))
                yield work
                yield ("wr", base, eb, length)
        yield ("barrier", barriers.next())
