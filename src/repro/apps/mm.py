"""MM — dense matrix multiplication (C = A x B).

Blocked row partitioning: processor p computes its band of C rows.  Its
A and C rows are homed locally; B is read by *every* processor (each C
column touches all of B), giving the all-to-all read sharing that makes
MM a switch-cache-friendly workload in the paper.
"""

from __future__ import annotations

from typing import Iterator

from ..system.addressing import Matrix
from .base import Application, Op, block_partition, owner_of_row
from .opstream import row_pitch


class MatrixMultiply(Application):
    name = "MM"

    def __init__(self, n: int = 40, work_per_mac: int = 2) -> None:
        self.n = n
        self.work_per_mac = work_per_mac
        self.a = self.b = self.c = None

    def setup(self, machine) -> None:
        n, procs = self.n, machine.num_procs
        home = lambda i: machine.node_of_proc(owner_of_row(i, n, procs))
        self.a = Matrix(machine.space, n, n, row_home=home)
        self.c = Matrix(machine.space, n, n, row_home=home)
        # B is globally shared: interleave its blocks across all memories
        self.b = Matrix(machine.space, n, n)

    def macro_ops(self, proc_id: int, machine) -> Iterator[Op]:
        n = self.n
        my_rows = block_partition(n, proc_id, machine.num_procs)
        # the k loop is a fixed two-slot pattern: A walks row i element
        # by element, B walks column j row by row (stride = row pitch)
        a_bases, b_bases = self.a._row_base, self.b._row_base
        eb = self.a.elem_bytes
        b_pitch = row_pitch(self.b)
        b_col0 = b_bases[0]
        work = ("work", self.work_per_mac * n)
        for i in my_rows:
            a_base = a_bases[i]
            c_base = self.c._row_base[i]
            for j in range(n):
                if b_pitch:
                    yield ("loop", n, (("r", a_base, eb),
                                       ("r", b_col0 + j * eb, b_pitch)))
                else:  # unevenly spaced B rows: elementary fallback
                    for k in range(n):
                        yield ("r", a_base + k * eb)
                        yield ("r", b_bases[k] + j * eb)
                yield work
                yield ("w", c_base + j * eb)
