"""MM — dense matrix multiplication (C = A x B).

Blocked row partitioning: processor p computes its band of C rows.  Its
A and C rows are homed locally; B is read by *every* processor (each C
column touches all of B), giving the all-to-all read sharing that makes
MM a switch-cache-friendly workload in the paper.
"""

from __future__ import annotations

from typing import Iterator

from ..system.addressing import Matrix
from .base import Application, Op, block_partition, owner_of_row


class MatrixMultiply(Application):
    name = "MM"

    def __init__(self, n: int = 40, work_per_mac: int = 2) -> None:
        self.n = n
        self.work_per_mac = work_per_mac
        self.a = self.b = self.c = None

    def setup(self, machine) -> None:
        n, procs = self.n, machine.num_procs
        home = lambda i: machine.node_of_proc(owner_of_row(i, n, procs))
        self.a = Matrix(machine.space, n, n, row_home=home)
        self.c = Matrix(machine.space, n, n, row_home=home)
        # B is globally shared: interleave its blocks across all memories
        self.b = Matrix(machine.space, n, n)

    def ops(self, proc_id: int, machine) -> Iterator[Op]:
        n = self.n
        my_rows = block_partition(n, proc_id, machine.num_procs)
        for i in my_rows:
            for j in range(n):
                for k in range(n):
                    yield ("r", self.a.addr(i, k))
                    yield ("r", self.b.addr(k, j))
                yield ("work", self.work_per_mac * n)
                yield ("w", self.c.addr(i, j))
