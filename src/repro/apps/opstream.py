"""Op-stream compiler: integer-coded op arrays with stride superops.

The op generators in this package are *execution-driven*: they resume
once per simulated memory operation, which makes the Python generator
machinery itself — frame resume, tuple allocation, interpreter dispatch
— the dominant front-end cost after the engine (DESIGN.md §9), state
kernel (§10) and express-transit (§12) passes.  This module lowers any
operation stream to flat integer-coded *chunks* (plain Python lists) the
processor consumes with indexed loads, and fuses the regular access
patterns of the partitioned-matrix kernels into *superops* the processor
expands arithmetically:

``OP_R_RUN/OP_W_RUN base stride count``
    a constant-stride read/write run (``read_row``,
    ``touch_every_block``, a normalization sweep);

``OP_LOOP iters nslots (kind a b) ...``
    ``iters`` repetitions of a fixed slot pattern — the inner loops of
    FWA/GE/GS/SOR/MM, where each iteration touches a few addresses that
    each advance by a constant stride (work slots allowed);

``OP_WORK cycles count``
    ``count`` adjacent ``('work', cycles)`` ops of equal cost.  Only
    equal-cost neighbors fuse: the processor re-expands the count
    arithmetically, so per-op quantum yields — and therefore the event
    sequence — stay bit-identical to the generator path.

Applications describe their streams through :meth:`Application.macro_ops`
(plain ops plus ``('rr', base, stride, count)`` / ``('wr', ...)`` /
``('loop', iters, body)`` macros); generators without a macro form are
compiled op by op through the same peephole, which rediscovers runs from
the elementary stream.  Compilation is streaming — chunks are emitted as
the source generator is consumed, so peak memory stays flat regardless
of stream length.

``REPRO_OPS=gen`` is the escape hatch that keeps the original
generator-driven front end (compiled is the default); the two paths are
bit-identical — same stats, same timing, same value traces — which the
lockstep differential suites in tests/test_opstream_differential.py pin.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator, List, Tuple

from ..errors import ConfigError, SimulationError

Op = Tuple

# ---------------------------------------------------------------------------
# mode selection (same escape-hatch idiom as REPRO_ENGINE / REPRO_STATE)
# ---------------------------------------------------------------------------

OPS_ENV = "REPRO_OPS"

#: valid values for REPRO_OPS
OPS_MODES = ("compiled", "gen")


def ops_mode() -> str:
    """The configured front-end mode (``compiled`` unless overridden)."""
    mode = os.environ.get(OPS_ENV, "compiled")
    if mode not in OPS_MODES:
        raise ConfigError(
            f"unknown {OPS_ENV}={mode!r}; expected one of {OPS_MODES}"
        )
    return mode


# ---------------------------------------------------------------------------
# instruction encoding
# ---------------------------------------------------------------------------

#: opcodes (word 0 of each instruction)
OP_R = 0        # [OP_R, addr]
OP_W = 1        # [OP_W, addr]
OP_WORK = 2     # [OP_WORK, cycles, count]  (count equal-cost ops merged)
OP_BARRIER = 3  # [OP_BARRIER, id]
OP_LOCK = 4     # [OP_LOCK, id]
OP_UNLOCK = 5   # [OP_UNLOCK, id]
OP_R_RUN = 6    # [OP_R_RUN, base, stride, count]
OP_W_RUN = 7    # [OP_W_RUN, base, stride, count]
OP_LOOP = 8     # [OP_LOOP, iters, nslots, (kind, a, b) * nslots]

#: loop slot kinds: (SLOT_R|SLOT_W, base, stride) or (SLOT_WORK, cycles, 0)
SLOT_R = 0
SLOT_W = 1
SLOT_WORK = 2

#: default chunk capacity in words; instructions never straddle a chunk
CHUNK_WORDS = 16384

#: default cap on the element count of one emitted run superop; a longer
#: fused run is split into several instructions (keeps any one decode
#: step bounded and gives the chunk-boundary tests a handle)
MAX_RUN = 1 << 20

_SYNC_OPCODE = {"barrier": OP_BARRIER, "lock": OP_LOCK, "unlock": OP_UNLOCK}
_SLOT_KIND = {"r": SLOT_R, "w": SLOT_W, "work": SLOT_WORK}


def row_pitch(matrix) -> int:
    """The constant row-to-row address delta of a matrix, or 0 if the
    rows are not evenly spaced (callers then emit elementary ops).

    Interleaved matrices are contiguous (pitch = ``row_bytes``);
    ``row_home`` matrices allocate their rows back to back, so the pitch
    is normally the block-rounded row size — but this is a property of
    the allocator, so ports verify it instead of assuming it.
    """
    bases = matrix._row_base
    if len(bases) < 2:
        return matrix.row_bytes
    pitch = bases[1] - bases[0]
    for k in range(2, len(bases)):
        if bases[k] - bases[k - 1] != pitch:
            return 0
    return pitch


def elems_in_block(addr: int, stride: int, block_size: int) -> int:
    """How many elements of a positive-stride run starting at ``addr``
    fall in ``addr``'s block.  Works for any block size (the write
    buffer supports non-power-of-2 blocks; caches do not)."""
    if stride <= 0:
        raise ConfigError(f"elems_in_block needs a positive stride, got {stride}")
    block_end = addr // block_size * block_size + block_size
    return (block_end - addr + stride - 1) // stride


# ---------------------------------------------------------------------------
# macro expansion (the generator path is derived from the macro form,
# so gen and compiled modes execute the same stream by construction)
# ---------------------------------------------------------------------------

def expand_macro(macro_iter: Iterable[Op]) -> Iterator[Op]:
    """Expand a macro-op stream to the elementary op vocabulary."""
    for op in macro_iter:
        code = op[0]
        if code == "rr" or code == "wr":
            kind = "r" if code == "rr" else "w"
            _, base, stride, count = op
            addr = base
            for _ in range(count):
                yield (kind, addr)
                addr += stride
        elif code == "loop":
            _, iters, body = op
            for it in range(iters):
                for slot in body:
                    skind = slot[0]
                    if skind == "work":
                        yield ("work", slot[1])
                    else:
                        yield (skind, slot[1] + it * slot[2])
        else:
            yield op


# ---------------------------------------------------------------------------
# the compiler
# ---------------------------------------------------------------------------

def compile_chunks(
    macro_iter: Iterable[Op],
    chunk_words: int = CHUNK_WORDS,
    max_run: int = MAX_RUN,
) -> Iterator[List[int]]:
    """Lower a (macro or elementary) op stream to integer-coded chunks.

    The peephole fuses adjacent elementary ops as they stream through:
    consecutive equal-cost ``('work', n)`` merge into one ``OP_WORK``
    with a repeat count; consecutive same-kind ``r``/``w`` ops whose
    addresses advance by a constant stride (any stride, including
    zero) collapse into one run superop.  Explicit macros
    (``rr``/``wr``/``loop``) pass through unfused.  Chunks are plain
    lists of ints — the elements are created once here and only
    referenced by the consumer — and are yielded as they fill, so
    compilation streams with bounded memory.
    """
    if chunk_words < 16:
        raise ConfigError(f"chunk_words {chunk_words} too small for one loop op")
    if max_run < 2:
        raise ConfigError(f"max_run must be at least 2, got {max_run}")
    out: List[int] = []
    append = out.append
    # pending fusion window: exactly one of
    #   run_count  > 0 — a same-kind r/w stride run (run_kind/base/stride/last)
    #   work_count > 0 — a summed work op
    run_kind = run_base = run_stride = run_last = run_count = 0
    work_cycles = work_count = 0

    def flush_run() -> None:
        nonlocal run_count
        if run_count == 1:
            append(OP_R if run_kind == SLOT_R else OP_W)
            append(run_base)
        elif run_count:
            base, left = run_base, run_count
            while left > max_run:
                append(OP_R_RUN if run_kind == SLOT_R else OP_W_RUN)
                append(base)
                append(run_stride)
                append(max_run)
                base += run_stride * max_run
                left -= max_run
            append(OP_R_RUN if run_kind == SLOT_R else OP_W_RUN)
            append(base)
            append(run_stride)
            append(left)
        run_count = 0

    def flush_work() -> None:
        nonlocal work_cycles, work_count
        if work_count:
            append(OP_WORK)
            append(work_cycles)
            append(work_count)
        work_cycles = work_count = 0

    for op in macro_iter:
        code = op[0]
        if code == "r" or code == "w":
            kind = SLOT_R if code == "r" else SLOT_W
            addr = op[1]
            if run_count:
                if kind == run_kind:
                    if run_count == 1:
                        run_stride = addr - run_base
                        run_last = addr
                        run_count = 2
                        continue
                    if addr == run_last + run_stride:
                        run_last = addr
                        run_count += 1
                        continue
                flush_run()
            else:
                flush_work()
            run_kind, run_base, run_last, run_count = kind, addr, addr, 1
            run_stride = 0
        elif code == "work":
            flush_run()
            if work_count and op[1] != work_cycles:
                flush_work()
            work_cycles = op[1]
            work_count += 1
        else:
            flush_run()
            flush_work()
            if code == "rr" or code == "wr":
                _, base, stride, count = op
                if count == 1:
                    append(OP_R if code == "rr" else OP_W)
                    append(base)
                elif count:
                    left = count
                    while left:
                        n = left if left <= max_run else max_run
                        append(OP_R_RUN if code == "rr" else OP_W_RUN)
                        append(base)
                        append(stride)
                        append(n)
                        base += stride * n
                        left -= n
            elif code == "loop":
                _, iters, body = op
                if iters and body:
                    append(OP_LOOP)
                    append(iters)
                    append(len(body))
                    for slot in body:
                        append(_SLOT_KIND[slot[0]])
                        append(slot[1])
                        append(slot[2] if slot[0] != "work" else 0)
            else:
                opcode = _SYNC_OPCODE.get(code)
                if opcode is None:
                    # same error the generator loop raises at execution
                    raise SimulationError(f"unknown op {op!r}")
                append(opcode)
                append(op[1])
        if len(out) >= chunk_words:
            yield out
            out = []
            append = out.append
    flush_run()
    flush_work()
    if out:
        yield out


def compile_stream(app, proc_id: int, machine,
                   chunk_words: int = CHUNK_WORDS) -> Iterator[List[int]]:
    """Compile one processor's stream, preferring the app's macro form."""
    macro_fn = getattr(app, "macro_ops", None)
    if macro_fn is not None:
        source = macro_fn(proc_id, machine)
    else:
        source = app.ops(proc_id, machine)
    return compile_chunks(source, chunk_words)


# ---------------------------------------------------------------------------
# decoding (tests and debugging; the processor interprets chunks directly)
# ---------------------------------------------------------------------------

def expand_chunks(chunks: Iterable[List[int]]) -> Iterator[Op]:
    """Decode chunks back to elementary ops (exact round trip)."""
    for code in chunks:
        ip, end = 0, len(code)
        while ip < end:
            opcode = code[ip]
            if opcode == OP_R:
                yield ("r", code[ip + 1])
                ip += 2
            elif opcode == OP_W:
                yield ("w", code[ip + 1])
                ip += 2
            elif opcode == OP_WORK:
                cycles, count = code[ip + 1], code[ip + 2]
                for _ in range(count):
                    yield ("work", cycles)
                ip += 3
            elif opcode == OP_R_RUN or opcode == OP_W_RUN:
                kind = "r" if opcode == OP_R_RUN else "w"
                base, stride, count = code[ip + 1], code[ip + 2], code[ip + 3]
                for k in range(count):
                    yield (kind, base + k * stride)
                ip += 4
            elif opcode == OP_LOOP:
                iters, nslots = code[ip + 1], code[ip + 2]
                body = code[ip + 3:ip + 3 + 3 * nslots]
                for it in range(iters):
                    for s in range(nslots):
                        skind = body[3 * s]
                        if skind == SLOT_WORK:
                            yield ("work", body[3 * s + 1])
                        else:
                            yield ("r" if skind == SLOT_R else "w",
                                   body[3 * s + 1] + it * body[3 * s + 2])
                ip += 3 + 3 * nslots
            elif opcode == OP_BARRIER:
                yield ("barrier", code[ip + 1])
                ip += 2
            elif opcode == OP_LOCK:
                yield ("lock", code[ip + 1])
                ip += 2
            elif opcode == OP_UNLOCK:
                yield ("unlock", code[ip + 1])
                ip += 2
            else:
                raise ConfigError(f"bad opcode {opcode} at {ip}")
