"""SOR — red-black successive over-relaxation on a 2-D grid.

Blocked row partitioning.  Each sweep updates a point from its four
neighbors; only the rows at partition boundaries are read by a second
processor, so the sharing degree is 2 (nearest neighbor) — the paper's
low-sharing class, where switch caches help only modestly.
"""

from __future__ import annotations

from typing import Iterator

from ..system.addressing import Matrix
from .base import Application, BarrierSequencer, Op, block_partition, owner_of_row


class RedBlackSOR(Application):
    name = "SOR"

    def __init__(self, n: int = 48, iterations: int = 4, work_per_point: int = 4) -> None:
        self.n = n
        self.iterations = iterations
        self.work_per_point = work_per_point
        self.grid = None

    def setup(self, machine) -> None:
        n, procs = self.n, machine.num_procs
        self.grid = Matrix(
            machine.space, n, n,
            row_home=lambda i: machine.node_of_proc(owner_of_row(i, n, procs)),
        )

    def macro_ops(self, proc_id: int, machine) -> Iterator[Op]:
        n = self.n
        bases = self.grid._row_base
        eb = self.grid.elem_bytes
        step = 2 * eb  # red-black: every other point of the row
        barriers = BarrierSequencer(self.name)
        my_rows = block_partition(n, proc_id, machine.num_procs)
        for _sweep in range(self.iterations):
            for color in (0, 1):
                for i in my_rows:
                    if i == 0 or i == n - 1:
                        continue
                    j0 = 1 + (i + color) % 2
                    count = len(range(j0, n - 1, 2))
                    mid = bases[i] + j0 * eb
                    yield ("loop", count,
                           (("r", bases[i - 1] + j0 * eb, step),
                            ("r", bases[i + 1] + j0 * eb, step),
                            ("r", mid - eb, step),
                            ("r", mid + eb, step),
                            ("work", self.work_per_point),
                            ("w", mid, step)))
                yield ("barrier", barriers.next())
