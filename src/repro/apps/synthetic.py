"""Synthetic workloads with controlled sharing patterns.

These are not paper workloads; they exist to exercise specific protocol
paths deterministically in unit/property tests and to demonstrate the
switch-cache mechanism in isolation:

* :class:`SharedReaders` — one producer, N-1 consumers (maximal sharing).
* :class:`PingPong` — two processors alternate ownership of one block
  (recalls, upgrades, writebacks).
* :class:`UniformRandom` — seeded random traffic over a shared array.
* :class:`HotBlock` — all processors read one block, the owner rewrites
  it, repeat (stresses invalidation and the corrective-INV race).
* :class:`PrivateWork` — purely local traffic (baseline sanity).
"""

from __future__ import annotations

import random
from typing import Iterator

from ..system.addressing import Vector
from .base import Application, BarrierSequencer, Op


class SharedReaders(Application):
    """Proc 0 writes an array; everyone then reads it ``rounds`` times."""

    name = "shared-readers"

    def __init__(self, nbytes: int = 4096, rounds: int = 2, stride: int = 8) -> None:
        self.nbytes = nbytes
        self.rounds = rounds
        self.stride = stride
        self.data = None

    def setup(self, machine) -> None:
        self.data = Vector(
            machine.space, self.nbytes // 8, home=0, interleave=False
        )

    def macro_ops(self, proc_id: int, machine) -> Iterator[Op]:
        barriers = BarrierSequencer(self.name)
        n_words = self.nbytes // 8
        step = self.stride // 8 or 1
        count = len(range(0, n_words, step))
        base = self.data.base
        stride = step * self.data.elem_bytes
        if proc_id == 0:
            yield ("wr", base, stride, count)
        yield ("barrier", barriers.next())
        for _round in range(self.rounds):
            yield ("rr", base, stride, count)
            yield ("barrier", barriers.next())


class PingPong(Application):
    """Two processors bounce ownership of a handful of blocks."""

    name = "ping-pong"

    def __init__(self, rounds: int = 10, blocks: int = 2) -> None:
        self.rounds = rounds
        self.blocks = blocks
        self.data = None

    def setup(self, machine) -> None:
        self.data = Vector(
            machine.space,
            self.blocks * machine.config.block_size // 8,
            interleave=True,
        )

    def ops(self, proc_id: int, machine) -> Iterator[Op]:
        barriers = BarrierSequencer(self.name)
        words_per_block = machine.config.block_size // 8
        for round_no in range(self.rounds):
            if proc_id == round_no % 2:
                for b in range(self.blocks):
                    addr = self.data.addr(b * words_per_block)
                    yield ("r", addr)
                    yield ("w", addr)
            yield ("barrier", barriers.next())


class UniformRandom(Application):
    """Seeded random reads/writes over one shared interleaved array."""

    name = "uniform-random"

    def __init__(
        self,
        ops_per_proc: int = 500,
        nbytes: int = 64 * 1024,
        write_fraction: float = 0.2,
        seed: int = 42,
    ) -> None:
        self.ops_per_proc = ops_per_proc
        self.nbytes = nbytes
        self.write_fraction = write_fraction
        self.seed = seed
        self.data = None

    def setup(self, machine) -> None:
        self.data = Vector(machine.space, self.nbytes // 8, interleave=True)

    def ops(self, proc_id: int, machine) -> Iterator[Op]:
        rng = random.Random(self.seed + proc_id)
        n_words = self.nbytes // 8
        for _ in range(self.ops_per_proc):
            word = rng.randrange(n_words)
            addr = self.data.addr(word)
            if rng.random() < self.write_fraction:
                yield ("w", addr)
            else:
                yield ("r", addr)


class HotBlock(Application):
    """All processors read one hot block; proc 0 rewrites it each round."""

    name = "hot-block"

    def __init__(self, rounds: int = 5) -> None:
        self.rounds = rounds
        self.data = None

    def setup(self, machine) -> None:
        self.data = Vector(machine.space, 8, home=0, interleave=False)

    def ops(self, proc_id: int, machine) -> Iterator[Op]:
        barriers = BarrierSequencer(self.name)
        addr = self.data.addr(0)
        for _round in range(self.rounds):
            if proc_id == 0:
                yield ("w", addr)
            yield ("barrier", barriers.next())
            yield ("r", addr)
            yield ("barrier", barriers.next())


class PrivateWork(Application):
    """Each processor touches only its own locally-homed array."""

    name = "private-work"

    def __init__(self, nbytes_per_proc: int = 8192, rounds: int = 2) -> None:
        self.nbytes = nbytes_per_proc
        self.rounds = rounds
        self.arrays = None

    def setup(self, machine) -> None:
        self.arrays = [
            Vector(machine.space, self.nbytes // 8,
                   home=machine.node_of_proc(p), interleave=False)
            for p in range(machine.num_procs)
        ]

    def macro_ops(self, proc_id: int, machine) -> Iterator[Op]:
        mine = self.arrays[proc_id]
        n_words = self.nbytes // 8
        base, eb = mine.base, mine.elem_bytes
        for _round in range(self.rounds):
            yield ("loop", n_words, (("r", base, eb),
                                     ("w", base, eb),
                                     ("work", 2)))
