"""Trace-driven front-end: record and replay memory-reference traces.

The execution-driven kernels are the primary workloads, but a
trace-driven mode is useful for (a) replaying reference streams captured
elsewhere, (b) decoupling workload generation from simulation, and
(c) regression-pinning an exact stream.

Trace format — one op per line, whitespace separated::

    <proc> r <addr>
    <proc> w <addr>
    <proc> work <cycles>
    <proc> barrier <id>
    <proc> lock <id>
    <proc> unlock <id>
    # comments and blank lines are ignored

Addresses may be decimal or 0x-hex.  A trace file carries *absolute*
addresses, so replay must target a machine whose address space maps them
to the same homes; :class:`TraceRecorder` therefore stores the recorded
machine's full allocation layout in ``#range`` header lines and
:class:`TraceApplication` restores it at setup.
"""

from __future__ import annotations

import io
from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, TextIO, Tuple, Union

from ..errors import ConfigError
from .base import Application, Op

_INT_OPS = frozenset({"r", "w", "work", "barrier", "lock", "unlock"})
_HEADER = "#repro-trace v1"
_RANGE = "#range"


def format_op(proc: int, op: Op) -> str:
    """One trace line for an op."""
    code = op[0]
    if code not in _INT_OPS:
        raise ConfigError(f"cannot serialize op {op!r}")
    arg = op[1]
    if code in ("r", "w"):
        return f"{proc} {code} {arg:#x}"
    return f"{proc} {code} {arg}"


def parse_line(line: str) -> Union[Tuple[int, Op], None]:
    """Parse one trace line; None for blanks/comments."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    parts = stripped.split()
    if len(parts) != 3:
        raise ConfigError(f"malformed trace line: {line!r}")
    proc_str, code, arg_str = parts
    if code not in _INT_OPS:
        raise ConfigError(f"unknown op {code!r} in trace line: {line!r}")
    proc = int(proc_str)
    arg = int(arg_str, 0)
    return proc, (code, arg)


class TraceRecorder:
    """Wraps an application, recording every op it emits.

    Use it exactly like the wrapped app::

        recorder = TraceRecorder(GaussianElimination(n=16))
        machine.run(recorder)
        recorder.save(path)

    The recorded streams replay with :class:`TraceApplication`.
    """

    def __init__(self, app: Application) -> None:
        self.app = app
        self.name = f"trace({app.name})"
        self.recorded: Dict[int, List[Op]] = defaultdict(list)
        self._layout = []
        self._machine = None

    def setup(self, machine) -> None:
        self.app.setup(machine)
        self._machine = machine

    def ops(self, proc_id: int, machine) -> Iterator[Op]:
        bucket = self.recorded[proc_id]
        for op in self.app.ops(proc_id, machine):
            bucket.append(op)
            yield op

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def dump(self, stream: TextIO) -> None:
        stream.write(_HEADER + "\n")
        layout = (
            self._machine.space.export_layout() if self._machine is not None else []
        )
        for start, end, home in layout:
            home_str = "interleave" if home is None else str(home)
            stream.write(f"{_RANGE} {start:#x} {end:#x} {home_str}\n")
        for proc in sorted(self.recorded):
            for op in self.recorded[proc]:
                stream.write(format_op(proc, op) + "\n")

    def save(self, path: str) -> None:
        with open(path, "w") as f:
            self.dump(f)

    def dumps(self) -> str:
        buffer = io.StringIO()
        self.dump(buffer)
        return buffer.getvalue()


class TraceApplication(Application):
    """Replays a recorded trace as an application.

    Accepts a path, an open text stream, or an iterable of lines.  The
    per-processor op order is exactly the recorded order; inter-processor
    interleaving is re-decided by the simulated timing (as it would be on
    real hardware), with barriers/locks reproducing the synchronization
    structure.
    """

    name = "trace"

    def __init__(self, source: Union[str, TextIO, Iterable[str]]) -> None:
        self._source = source
        self.streams: Dict[int, List[Op]] = {}
        self.layout: List[Tuple[int, int, Union[int, None]]] = []
        self._loaded = False

    def _load(self) -> None:
        if self._loaded:
            return
        if isinstance(self._source, str):
            with open(self._source) as f:
                lines = f.readlines()
        elif hasattr(self._source, "read"):
            lines = self._source.readlines()
        else:
            lines = list(self._source)
        streams: Dict[int, List[Op]] = defaultdict(list)
        for line in lines:
            if line.startswith(_RANGE):
                _tag, start_s, end_s, home_s = line.split()
                home = None if home_s == "interleave" else int(home_s)
                self.layout.append((int(start_s, 0), int(end_s, 0), home))
                continue
            parsed = parse_line(line)
            if parsed is None:
                continue
            proc, op = parsed
            streams[proc].append(op)
        self.streams = dict(streams)
        self._loaded = True

    def setup(self, machine) -> None:
        self._load()
        if self.streams:
            max_proc = max(self.streams)
            if max_proc >= machine.config.num_nodes:
                raise ConfigError(
                    f"trace references processor {max_proc} but the machine "
                    f"has {machine.config.num_nodes} nodes"
                )
        if self.layout:
            # recreate the recorded machine's allocation map so every
            # address resolves to the same home node it had when recorded
            machine.space.restore_layout(self.layout)

    def ops(self, proc_id: int, machine) -> Iterator[Op]:
        self._load()
        yield from self.streams.get(proc_id, [])
