"""SRAM cache substrate: arrays, MSI states, hierarchy, write buffer."""

from .array import CacheArray, CacheLine
from .hierarchy import CacheHierarchy, ReadResult, WriteResult
from .states import DirState, LineState
from .writebuffer import WriteBuffer

__all__ = [
    "CacheArray",
    "CacheLine",
    "CacheHierarchy",
    "ReadResult",
    "WriteResult",
    "DirState",
    "LineState",
    "WriteBuffer",
]
