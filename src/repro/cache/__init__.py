"""SRAM cache substrate: arrays, MSI states, hierarchy, write buffer."""

from .array import (
    CacheArray,
    CacheArrayBase,
    CacheArrayObj,
    CacheLine,
    LineView,
    make_cache_array,
)
from .hierarchy import CacheHierarchy, ReadResult, WriteResult
from .states import STATE_ENV, DirState, LineState, state_model
from .writebuffer import WriteBuffer

__all__ = [
    "CacheArray",
    "CacheArrayBase",
    "CacheArrayObj",
    "CacheLine",
    "LineView",
    "make_cache_array",
    "CacheHierarchy",
    "ReadResult",
    "WriteResult",
    "DirState",
    "LineState",
    "STATE_ENV",
    "state_model",
    "WriteBuffer",
]
