"""Set-associative SRAM cache array mechanics.

This is pure state bookkeeping — hit/miss decisions, LRU replacement,
invalidation — with no timing.  Timing lives in the controllers that own an
array (the node-side hierarchy, the network cache, and the CAESAR switch
cache), because each of those clocks its array differently.

Lines carry a ``data`` payload.  Throughout the simulator the payload is a
*version number* for the block (incremented by every write), which lets the
test suite check coherence end-to-end: a read must never observe a version
older than the last write that completed before it.
"""

from __future__ import annotations

import random as _random
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import ConfigError
from .states import LineState


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


#: hoisted enum member: ``line.state is _INVALID`` in the probe hot path
_INVALID = LineState.INVALID


class CacheLine:
    """One cache line: tag, MSI state, payload, and LRU timestamp."""

    __slots__ = ("tag", "state", "data", "lru")

    def __init__(self, tag: int, state: LineState, data: int, lru: int) -> None:
        self.tag = tag
        self.state = state
        self.data = data
        self.lru = lru

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Line tag={self.tag:#x} {self.state.value} v{self.data}>"


class CacheArray:
    """A set-associative array with configurable replacement.

    Parameters mirror a hardware description: total ``size`` in bytes,
    ``block_size`` in bytes, ``assoc`` ways.  ``size`` must be a multiple of
    ``block_size * assoc`` and the resulting set count a power of two (the
    paper's caches are all power-of-two sized).

    ``replacement`` selects the victim policy: ``'lru'`` (true LRU,
    default), ``'fifo'`` (insertion order; cheaper hardware since hits do
    not touch the replacement state), or ``'random'`` (seeded, so runs
    stay deterministic).
    """

    REPLACEMENT_POLICIES = ("lru", "fifo", "random")

    def __init__(
        self,
        size: int,
        block_size: int,
        assoc: int,
        name: str = "",
        replacement: str = "lru",
        seed: int = 0xCAE5A,
    ) -> None:
        if replacement not in self.REPLACEMENT_POLICIES:
            raise ConfigError(f"unknown replacement policy {replacement!r}")
        self.replacement = replacement
        self._lru = replacement == "lru"  # hot-path flag (no str compare)
        self._rng = _random.Random(seed) if replacement == "random" else None
        if block_size <= 0 or not _is_power_of_two(block_size):
            raise ConfigError(f"block_size must be a power of two, got {block_size}")
        if assoc <= 0:
            raise ConfigError(f"assoc must be positive, got {assoc}")
        if size <= 0 or size % (block_size * assoc) != 0:
            raise ConfigError(
                f"cache size {size} not a multiple of block_size*assoc "
                f"({block_size}*{assoc})"
            )
        num_sets = size // (block_size * assoc)
        if not _is_power_of_two(num_sets):
            raise ConfigError(f"set count {num_sets} is not a power of two")
        self.size = size
        self.block_size = block_size
        self.assoc = assoc
        self.num_sets = num_sets
        self.name = name
        self._sets: List[Dict[int, CacheLine]] = [dict() for _ in range(num_sets)]
        self._tick = 0
        # statistics
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    # address helpers
    # ------------------------------------------------------------------
    def block_of(self, addr: int) -> int:
        return addr // self.block_size

    def _index(self, block: int) -> Tuple[int, int]:
        return block % self.num_sets, block // self.num_sets

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def probe(self, addr: int) -> Optional[CacheLine]:
        """Hit test *without* updating LRU or statistics (snoop-style)."""
        # hot path (every simulated load probes at least one array): the
        # set/tag arithmetic of block_of/_index is inlined here
        block = addr // self.block_size
        line = self._sets[block % self.num_sets].get(block // self.num_sets)
        if line is not None and line.state is not _INVALID:
            return line
        return None

    def lookup(self, addr: int) -> Optional[CacheLine]:
        """Hit test that updates LRU and hit/miss statistics."""
        block = addr // self.block_size
        line = self._sets[block % self.num_sets].get(block // self.num_sets)
        if line is None or line.state is _INVALID:
            self.misses += 1
            return None
        if self._lru:
            self._tick += 1
            line.lru = self._tick
        self.hits += 1
        return line

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(
        self, addr: int, state: LineState, data: int
    ) -> Optional[Tuple[int, LineState, int]]:
        """Install a block, evicting LRU if the set is full.

        Returns ``(victim_addr, victim_state, victim_data)`` when a valid
        line was displaced, else None.  Inserting over an existing line for
        the same block updates it in place (no eviction).
        """
        block = self.block_of(addr)
        set_idx, tag = self._index(block)
        cache_set = self._sets[set_idx]
        self._tick += 1
        existing = cache_set.get(tag)
        if existing is not None:
            existing.state = state
            existing.data = data
            existing.lru = self._tick
            return None
        victim_info = None
        if len(cache_set) >= self.assoc:
            if self._rng is not None:
                victim_tag = self._rng.choice(sorted(cache_set))
                victim = cache_set[victim_tag]
            else:
                # LRU and FIFO both evict the minimum timestamp; they
                # differ in whether hits refresh it (see lookup).  A
                # manual scan beats min(key=lambda) at these small assocs
                victim_tag = -1
                victim_lru = None
                for tag_i, line_i in cache_set.items():
                    if victim_lru is None or line_i.lru < victim_lru:
                        victim_tag, victim_lru = tag_i, line_i.lru
                victim = cache_set[victim_tag]
            del cache_set[victim_tag]
            if victim.state is not LineState.INVALID:
                self.evictions += 1
                victim_block = victim_tag * self.num_sets + set_idx
                victim_info = (victim_block * self.block_size, victim.state, victim.data)
        cache_set[tag] = CacheLine(tag, state, data, self._tick)
        return victim_info

    def set_state(self, addr: int, state: LineState) -> None:
        """Change the state of a resident line (line must be present)."""
        line = self.probe(addr)
        if line is None:
            raise KeyError(f"set_state on non-resident block {addr:#x}")
        line.state = state

    def invalidate(self, addr: int) -> Optional[Tuple[LineState, int]]:
        """Drop a block if present; returns its former (state, data)."""
        set_idx, tag = self._index(self.block_of(addr))
        cache_set = self._sets[set_idx]
        line = cache_set.get(tag)
        if line is None or line.state is LineState.INVALID:
            return None
        del cache_set[tag]
        self.invalidations += 1
        return line.state, line.data

    def clear(self) -> None:
        for cache_set in self._sets:
            cache_set.clear()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def resident_blocks(self) -> Iterator[Tuple[int, CacheLine]]:
        """Yield ``(block_start_addr, line)`` for every valid line."""
        for set_idx, cache_set in enumerate(self._sets):
            for tag, line in cache_set.items():
                if line.state is not LineState.INVALID:
                    block = tag * self.num_sets + set_idx
                    yield block * self.block_size, line

    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(len(s) for s in self._sets)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CacheArray {self.name or ''} {self.size}B "
            f"{self.num_sets}x{self.assoc}x{self.block_size}B>"
        )
