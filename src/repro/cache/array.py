"""Set-associative SRAM cache array mechanics.

This is pure state bookkeeping — hit/miss decisions, LRU replacement,
invalidation — with no timing.  Timing lives in the controllers that own an
array (the node-side hierarchy, the network cache, and the CAESAR switch
cache), because each of those clocks its array differently.

Lines carry a ``data`` payload.  Throughout the simulator the payload is a
*version number* for the block (incremented by every write), which lets the
test suite check coherence end-to-end: a read must never observe a version
older than the last write that completed before it.

Two implementations share one API (DESIGN.md §10):

* :class:`CacheArray` — the default *coded* kernel.  Each set is a slice
  of four flat parallel int lists (``tag``/``state``/``data``/``lru``),
  states are the small-int codes from :mod:`repro.cache.states`, and the
  occupied slots of a set are kept sorted by tag so the seeded random
  victim is a direct index (no per-victim sort).  ``probe``/``lookup``
  return a :class:`LineView` over the slot; the allocation-free
  ``*_data``/``*_state`` variants are what the simulation hot paths use.
* :class:`CacheArrayObj` — the original dict-of-:class:`CacheLine` model,
  kept byte-for-byte as the ``REPRO_STATE=obj`` escape hatch and as the
  reference half of the differential fuzzer.

Both must be observationally identical — same hits/misses/evictions, same
victims, same seeded-random victim choices — which the lockstep fuzzer in
``tests/test_state_differential.py`` enforces op by op.
"""

from __future__ import annotations

import random as _random
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..errors import ConfigError
from .states import LINE_STATE_BY_CODE, LineState, state_model


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


#: hoisted enum member: ``line.state is _INVALID`` in the probe hot path
_INVALID = LineState.INVALID

#: hoisted decode table and codes (module-level lookups in hot methods)
_DECODE = LINE_STATE_BY_CODE
_CODE_SHARED = LineState.SHARED.code
_CODE_MODIFIED = LineState.MODIFIED.code
_CODE_EXCLUSIVE = LineState.EXCLUSIVE.code


class CacheLine:
    """One cache line: tag, MSI state, payload, and LRU timestamp."""

    __slots__ = ("tag", "state", "data", "lru")

    def __init__(self, tag: int, state: LineState, data: int, lru: int) -> None:
        self.tag = tag
        self.state = state
        self.data = data
        self.lru = lru

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Line tag={self.tag:#x} {self.state.value} v{self.data}>"


class LineView:
    """A live window onto one occupied slot of the coded array.

    Reads and writes go straight through to the parallel lists, so a view
    behaves like the :class:`CacheLine` it replaces for snoop-style
    callers.  Views are transient: holding one across an ``insert`` or
    ``invalidate`` that reshuffles the set is undefined (the old model had
    the same caveat — an evicted ``CacheLine`` silently detached).
    """

    __slots__ = ("_arr", "_slot")

    def __init__(self, arr: "CacheArray", slot: int) -> None:
        self._arr = arr
        self._slot = slot

    @property
    def tag(self) -> int:
        return self._arr._tags[self._slot]

    @property
    def state(self) -> LineState:
        return _DECODE[self._arr._states[self._slot]]

    @state.setter
    def state(self, value: LineState) -> None:
        self._arr._states[self._slot] = value.code

    @property
    def data(self) -> int:
        return self._arr._data[self._slot]

    @data.setter
    def data(self, value: int) -> None:
        self._arr._data[self._slot] = value

    @property
    def lru(self) -> int:
        return self._arr._lrus[self._slot]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Line tag={self.tag:#x} {self.state.value} v{self.data}>"


class CacheArrayBase:
    """Geometry, statistics, and the policy knobs shared by both models.

    Parameters mirror a hardware description: total ``size`` in bytes,
    ``block_size`` in bytes, ``assoc`` ways.  ``size`` must be a multiple of
    ``block_size * assoc`` and the resulting set count a power of two (the
    paper's caches are all power-of-two sized).

    ``replacement`` selects the victim policy: ``'lru'`` (true LRU,
    default), ``'fifo'`` (insertion order; cheaper hardware since hits do
    not touch the replacement state), or ``'random'`` (seeded, so runs
    stay deterministic).
    """

    REPLACEMENT_POLICIES = ("lru", "fifo", "random")

    __slots__ = (
        "replacement", "_lru", "_rng", "size", "block_size", "assoc",
        "num_sets", "name", "_tick", "hits", "misses", "evictions",
        "invalidations",
    )

    def __init__(
        self,
        size: int,
        block_size: int,
        assoc: int,
        name: str = "",
        replacement: str = "lru",
        seed: int = 0xCAE5A,
    ) -> None:
        if replacement not in self.REPLACEMENT_POLICIES:
            raise ConfigError(f"unknown replacement policy {replacement!r}")
        self.replacement = replacement
        self._lru = replacement == "lru"  # hot-path flag (no str compare)
        self._rng = _random.Random(seed) if replacement == "random" else None
        if block_size <= 0 or not _is_power_of_two(block_size):
            raise ConfigError(f"block_size must be a power of two, got {block_size}")
        if assoc <= 0:
            raise ConfigError(f"assoc must be positive, got {assoc}")
        if size <= 0 or size % (block_size * assoc) != 0:
            raise ConfigError(
                f"cache size {size} not a multiple of block_size*assoc "
                f"({block_size}*{assoc})"
            )
        num_sets = size // (block_size * assoc)
        if not _is_power_of_two(num_sets):
            raise ConfigError(f"set count {num_sets} is not a power of two")
        self.size = size
        self.block_size = block_size
        self.assoc = assoc
        self.num_sets = num_sets
        self.name = name
        self._tick = 0
        # statistics
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    # address helpers
    # ------------------------------------------------------------------
    def block_of(self, addr: int) -> int:
        return addr // self.block_size

    def _index(self, block: int) -> Tuple[int, int]:
        return block % self.num_sets, block // self.num_sets

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.name or ''} {self.size}B "
            f"{self.num_sets}x{self.assoc}x{self.block_size}B>"
        )

    # ------------------------------------------------------------------
    # the common API both models implement
    # ------------------------------------------------------------------
    def probe(self, addr: int) -> Optional[Union[CacheLine, LineView]]:
        raise NotImplementedError

    def lookup(self, addr: int) -> Optional[Union[CacheLine, LineView]]:
        raise NotImplementedError

    def insert(
        self, addr: int, state: LineState, data: int
    ) -> Optional[Tuple[int, LineState, int]]:
        raise NotImplementedError

    def set_state(self, addr: int, state: LineState) -> None:
        raise NotImplementedError

    def invalidate(self, addr: int) -> Optional[Tuple[LineState, int]]:
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError

    def resident_blocks(
        self,
    ) -> Iterator[Tuple[int, Union[CacheLine, LineView]]]:
        raise NotImplementedError

    def occupancy(self) -> int:
        raise NotImplementedError

    def set_len(self, set_idx: int) -> int:
        """Occupied slots in one set (valid *and* INVALID-state lines)."""
        raise NotImplementedError

    # allocation-free variants used by the simulation hot paths ---------
    def probe_data(self, addr: int) -> Optional[int]:
        raise NotImplementedError

    def probe_state(self, addr: int) -> int:
        raise NotImplementedError

    def lookup_data(self, addr: int) -> Optional[int]:
        raise NotImplementedError

    def lookup_state(self, addr: int) -> int:
        raise NotImplementedError

    def write_owned(self, addr: int, data: int) -> bool:
        raise NotImplementedError

    def set_data(self, addr: int, data: int) -> bool:
        raise NotImplementedError

    def downgrade_owned(self, addr: int) -> Optional[int]:
        raise NotImplementedError


class CacheArray(CacheArrayBase):
    """The coded struct-of-arrays model (default kernel).

    Set ``s`` owns slots ``[s*assoc, (s+1)*assoc)`` of four flat parallel
    lists.  ``_tags[slot] == -1`` marks an empty slot; occupied slots form
    a prefix of the set, **sorted by tag**, so the seeded random victim
    (``rng.choice`` over the sorted tag list in the object model) becomes
    ``slot = base + rng.choice(range(assoc))`` — same entropy draw, same
    victim, no sort.  States are small-int codes (``states.py``).
    """

    __slots__ = (
        "_tags", "_states", "_data", "_lrus", "_occ", "_occupied",
        "_set_mask", "_set_bits", "_block_shift", "_victim_range", "_slot",
    )

    def __init__(
        self,
        size: int,
        block_size: int,
        assoc: int,
        name: str = "",
        replacement: str = "lru",
        seed: int = 0xCAE5A,
    ) -> None:
        super().__init__(size, block_size, assoc, name, replacement, seed)
        slots = self.num_sets * assoc
        self._tags: List[int] = [-1] * slots
        self._states: List[int] = [0] * slots
        self._data: List[int] = [0] * slots
        self._lrus: List[int] = [0] * slots
        self._occ: List[int] = [0] * self.num_sets
        self._occupied = 0
        self._set_mask = self.num_sets - 1
        self._set_bits = self.num_sets.bit_length() - 1
        self._block_shift = block_size.bit_length() - 1
        self._victim_range = range(assoc)
        # block -> slot index over the parallel lists.  The dict is pure
        # acceleration (the lists alone are authoritative): a hit is one
        # hash probe instead of a bounded list.index with a ValueError on
        # every miss, which profiling showed dominating the lookup cost.
        self._slot: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def probe(self, addr: int) -> Optional[LineView]:
        """Hit test *without* updating LRU or statistics (snoop-style)."""
        i = self._slot.get(addr >> self._block_shift)
        if i is not None and self._states[i]:
            return LineView(self, i)
        return None

    def lookup(self, addr: int) -> Optional[LineView]:
        """Hit test that updates LRU and hit/miss statistics."""
        i = self._slot.get(addr >> self._block_shift)
        if i is None or not self._states[i]:
            self.misses += 1
            return None
        if self._lru:
            self._tick += 1
            self._lrus[i] = self._tick
        self.hits += 1
        return LineView(self, i)

    # -- allocation-free variants (simulation hot paths) ----------------
    def probe_data(self, addr: int) -> Optional[int]:
        i = self._slot.get(addr >> self._block_shift)
        if i is not None and self._states[i]:
            return self._data[i]
        return None

    def probe_state(self, addr: int) -> int:
        """State code of a resident block (0 when absent or INVALID)."""
        i = self._slot.get(addr >> self._block_shift)
        return self._states[i] if i is not None else 0

    def lookup_data(self, addr: int) -> Optional[int]:
        """`lookup` returning the payload directly (same stats/LRU)."""
        i = self._slot.get(addr >> self._block_shift)
        if i is None or not self._states[i]:
            self.misses += 1
            return None
        if self._lru:
            self._tick += 1
            self._lrus[i] = self._tick
        self.hits += 1
        return self._data[i]

    def lookup_state(self, addr: int) -> int:
        """`lookup` returning the state code (0 on miss; same stats/LRU)."""
        i = self._slot.get(addr >> self._block_shift)
        if i is None or not self._states[i]:
            self.misses += 1
            return 0
        if self._lru:
            self._tick += 1
            self._lrus[i] = self._tick
        self.hits += 1
        return self._states[i]

    def write_owned(self, addr: int, data: int) -> bool:
        """Commit a store if the copy is writable (E/M); M-promote it."""
        i = self._slot.get(addr >> self._block_shift)
        if i is None or self._states[i] < _CODE_EXCLUSIVE:
            return False
        self._states[i] = _CODE_MODIFIED
        self._data[i] = data
        return True

    def set_data(self, addr: int, data: int) -> bool:
        """Update the payload of a resident block (no state change)."""
        i = self._slot.get(addr >> self._block_shift)
        if i is not None and self._states[i]:
            self._data[i] = data
            return True
        return False

    def downgrade_owned(self, addr: int) -> Optional[int]:
        """M/E -> S; returns the payload, or None if not resident-owned."""
        i = self._slot.get(addr >> self._block_shift)
        if i is None or self._states[i] < _CODE_EXCLUSIVE:
            return None
        self._states[i] = _CODE_SHARED
        return self._data[i]

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(
        self, addr: int, state: LineState, data: int
    ) -> Optional[Tuple[int, LineState, int]]:
        """Install a block, evicting per policy if the set is full.

        Returns ``(victim_addr, victim_state, victim_data)`` when a valid
        line was displaced, else None.  Inserting over an existing line for
        the same block updates it in place (no eviction).
        """
        block = addr >> self._block_shift
        set_idx = block & self._set_mask
        tag = block >> self._set_bits
        assoc = self.assoc
        num_sets = self.num_sets
        base = set_idx * assoc
        tags = self._tags
        states = self._states
        datas = self._data
        lrus = self._lrus
        slot = self._slot
        self._tick += 1
        tick = self._tick
        i = slot.get(block)
        if i is not None:
            states[i] = state.code
            datas[i] = data
            lrus[i] = tick
            return None
        victim_info = None
        n = self._occ[set_idx]
        if n >= assoc:
            rng = self._rng
            if rng is not None:
                # same entropy draw as rng.choice(sorted(tags)): the
                # occupied prefix is kept tag-sorted, so the k-th choice
                # IS slot base+k
                v = base + rng.choice(self._victim_range)
            else:
                # LRU and FIFO both evict the minimum timestamp; they
                # differ in whether hits refresh it (see lookup).  A
                # manual scan beats min(key=lambda) at these small assocs
                v = base
                victim_lru = lrus[base]
                for j in range(base + 1, base + n):
                    if lrus[j] < victim_lru:
                        v, victim_lru = j, lrus[j]
            victim_block = tags[v] * num_sets + set_idx
            if states[v]:
                self.evictions += 1
                victim_info = (
                    victim_block * self.block_size,
                    _DECODE[states[v]],
                    datas[v],
                )
            del slot[victim_block]
            # close the gap left by the victim (keeps the prefix sorted)
            for j in range(v, base + n - 1):
                tags[j] = tags[j + 1]
                states[j] = states[j + 1]
                datas[j] = datas[j + 1]
                lrus[j] = lrus[j + 1]
                slot[tags[j] * num_sets + set_idx] = j
            n -= 1
            tags[base + n] = -1
            self._occupied -= 1
        # sorted insertion into the occupied prefix
        pos = base
        end = base + n
        while pos < end and tags[pos] < tag:
            pos += 1
        for j in range(end, pos, -1):
            tags[j] = tags[j - 1]
            states[j] = states[j - 1]
            datas[j] = datas[j - 1]
            lrus[j] = lrus[j - 1]
            slot[tags[j] * num_sets + set_idx] = j
        tags[pos] = tag
        states[pos] = state.code
        datas[pos] = data
        lrus[pos] = tick
        slot[block] = pos
        self._occ[set_idx] = n + 1
        self._occupied += 1
        return victim_info

    def set_state(self, addr: int, state: LineState) -> None:
        """Change the state of a resident line (line must be present)."""
        i = self._slot.get(addr >> self._block_shift)
        if i is None or not self._states[i]:
            raise KeyError(f"set_state on non-resident block {addr:#x}")
        self._states[i] = state.code

    def invalidate(self, addr: int) -> Optional[Tuple[LineState, int]]:
        """Drop a block if present; returns its former (state, data)."""
        block = addr >> self._block_shift
        set_idx = block & self._set_mask
        slot = self._slot
        i = slot.get(block)
        if i is None or not self._states[i]:
            return None
        former = (_DECODE[self._states[i]], self._data[i])
        tags = self._tags
        states = self._states
        datas = self._data
        lrus = self._lrus
        num_sets = self.num_sets
        base = set_idx * self.assoc
        n = self._occ[set_idx]
        del slot[block]
        for j in range(i, base + n - 1):
            tags[j] = tags[j + 1]
            states[j] = states[j + 1]
            datas[j] = datas[j + 1]
            lrus[j] = lrus[j + 1]
            slot[tags[j] * num_sets + set_idx] = j
        tags[base + n - 1] = -1
        self._occ[set_idx] = n - 1
        self._occupied -= 1
        self.invalidations += 1
        return former

    def clear(self) -> None:
        slots = self.num_sets * self.assoc
        self._tags[:] = [-1] * slots
        self._occ[:] = [0] * self.num_sets
        self._occupied = 0
        self._slot.clear()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def resident_blocks(self) -> Iterator[Tuple[int, LineView]]:
        """Yield ``(block_start_addr, line)`` for every valid line."""
        assoc = self.assoc
        tags = self._tags
        states = self._states
        for set_idx in range(self.num_sets):
            base = set_idx * assoc
            for i in range(base, base + self._occ[set_idx]):
                if states[i]:
                    block = tags[i] * self.num_sets + set_idx
                    yield block * self.block_size, LineView(self, i)

    def occupancy(self) -> int:
        """Number of occupied slots (valid and INVALID-state lines)."""
        return self._occupied

    def set_len(self, set_idx: int) -> int:
        return self._occ[set_idx]


class CacheArrayObj(CacheArrayBase):
    """The original dict-of-``CacheLine`` model (``REPRO_STATE=obj``).

    Kept byte-for-byte faithful to the pre-coded implementation: it is the
    reference half of the lockstep differential fuzzer and the escape
    hatch for debugging the coded kernel, exactly as ``HeapQueue`` backs
    the calendar queue (DESIGN.md §9).
    """

    __slots__ = ("_sets",)

    def __init__(
        self,
        size: int,
        block_size: int,
        assoc: int,
        name: str = "",
        replacement: str = "lru",
        seed: int = 0xCAE5A,
    ) -> None:
        super().__init__(size, block_size, assoc, name, replacement, seed)
        self._sets: List[Dict[int, CacheLine]] = [
            dict() for _ in range(self.num_sets)
        ]

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def probe(self, addr: int) -> Optional[CacheLine]:
        """Hit test *without* updating LRU or statistics (snoop-style)."""
        block = addr // self.block_size
        line = self._sets[block % self.num_sets].get(block // self.num_sets)
        if line is not None and line.state is not _INVALID:
            return line
        return None

    def lookup(self, addr: int) -> Optional[CacheLine]:
        """Hit test that updates LRU and hit/miss statistics."""
        block = addr // self.block_size
        line = self._sets[block % self.num_sets].get(block // self.num_sets)
        if line is None or line.state is _INVALID:
            self.misses += 1
            return None
        if self._lru:
            self._tick += 1
            line.lru = self._tick
        self.hits += 1
        return line

    # -- allocation-free variants (same observable behavior) ------------
    def probe_data(self, addr: int) -> Optional[int]:
        line = self.probe(addr)
        return None if line is None else line.data

    def probe_state(self, addr: int) -> int:
        line = self.probe(addr)
        return 0 if line is None else line.state.code

    def lookup_data(self, addr: int) -> Optional[int]:
        line = self.lookup(addr)
        return None if line is None else line.data

    def lookup_state(self, addr: int) -> int:
        line = self.lookup(addr)
        return 0 if line is None else line.state.code

    def write_owned(self, addr: int, data: int) -> bool:
        line = self.probe(addr)
        if line is None or not line.state.writable():
            return False
        line.state = LineState.MODIFIED
        line.data = data
        return True

    def set_data(self, addr: int, data: int) -> bool:
        line = self.probe(addr)
        if line is None:
            return False
        line.data = data
        return True

    def downgrade_owned(self, addr: int) -> Optional[int]:
        line = self.probe(addr)
        if line is None or not line.state.owned():
            return None
        line.state = LineState.SHARED
        return line.data

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(
        self, addr: int, state: LineState, data: int
    ) -> Optional[Tuple[int, LineState, int]]:
        """Install a block, evicting per policy if the set is full."""
        block = self.block_of(addr)
        set_idx, tag = self._index(block)
        cache_set = self._sets[set_idx]
        self._tick += 1
        existing = cache_set.get(tag)
        if existing is not None:
            existing.state = state
            existing.data = data
            existing.lru = self._tick
            return None
        victim_info = None
        if len(cache_set) >= self.assoc:
            if self._rng is not None:
                victim_tag = self._rng.choice(sorted(cache_set))
                victim = cache_set[victim_tag]
            else:
                victim_tag = -1
                victim_lru = None
                for tag_i, line_i in cache_set.items():
                    if victim_lru is None or line_i.lru < victim_lru:
                        victim_tag, victim_lru = tag_i, line_i.lru
                victim = cache_set[victim_tag]
            del cache_set[victim_tag]
            if victim.state is not LineState.INVALID:
                self.evictions += 1
                victim_block = victim_tag * self.num_sets + set_idx
                victim_info = (
                    victim_block * self.block_size, victim.state, victim.data
                )
        cache_set[tag] = CacheLine(tag, state, data, self._tick)
        return victim_info

    def set_state(self, addr: int, state: LineState) -> None:
        """Change the state of a resident line (line must be present)."""
        line = self.probe(addr)
        if line is None:
            raise KeyError(f"set_state on non-resident block {addr:#x}")
        line.state = state

    def invalidate(self, addr: int) -> Optional[Tuple[LineState, int]]:
        """Drop a block if present; returns its former (state, data)."""
        set_idx, tag = self._index(self.block_of(addr))
        cache_set = self._sets[set_idx]
        line = cache_set.get(tag)
        if line is None or line.state is LineState.INVALID:
            return None
        del cache_set[tag]
        self.invalidations += 1
        return line.state, line.data

    def clear(self) -> None:
        for cache_set in self._sets:
            cache_set.clear()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def resident_blocks(self) -> Iterator[Tuple[int, CacheLine]]:
        """Yield ``(block_start_addr, line)`` for every valid line."""
        for set_idx, cache_set in enumerate(self._sets):
            for tag, line in cache_set.items():
                if line.state is not LineState.INVALID:
                    block = tag * self.num_sets + set_idx
                    yield block * self.block_size, line

    def occupancy(self) -> int:
        """Number of occupied slots (valid and INVALID-state lines)."""
        return sum(len(s) for s in self._sets)

    def set_len(self, set_idx: int) -> int:
        return len(self._sets[set_idx])


def make_cache_array(
    size: int,
    block_size: int,
    assoc: int,
    name: str = "",
    replacement: str = "lru",
    seed: int = 0xCAE5A,
    model: Optional[str] = None,
) -> CacheArrayBase:
    """Build a cache array for the configured state model.

    ``model`` overrides the ``REPRO_STATE`` environment selection
    (``coded`` by default, ``obj`` for the reference kernel).
    """
    cls = CacheArrayObj if (model or state_model()) == "obj" else CacheArray
    return cls(size, block_size, assoc, name, replacement, seed)
