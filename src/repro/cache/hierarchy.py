"""Two-level processor cache hierarchy (state mechanics).

Mirrors the paper's per-node hierarchy: a 16 KB L1 and a 128 KB L2.  The L1
is write-through/no-write-allocate (so it never holds dirty data and needs
no M state); the L2 is write-back MSI and inclusive of the L1.  All methods
are pure state transitions — the node controller adds timing and drives the
coherence protocol for misses.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .array import CacheArrayBase, make_cache_array
from .states import CODE_EXCLUSIVE, LineState


class ReadResult:
    """Outcome of a hierarchy read probe."""

    __slots__ = ("level", "data")

    def __init__(self, level: str, data: Optional[int]) -> None:
        self.level = level  # 'l1' | 'l2' | 'miss'
        self.data = data

    @property
    def hit(self) -> bool:
        return self.level != "miss"


class WriteResult:
    """Outcome of a hierarchy write probe.

    ``action`` is one of:

    * ``'hit'``      — L2 holds the block in M; write performed.
    * ``'upgrade'``  — L2 holds the block in S; ownership needed.
    * ``'miss'``     — block absent; read-exclusive needed.
    """

    __slots__ = ("action",)

    def __init__(self, action: str) -> None:
        self.action = action


#: interned probe outcomes — write_probe is on the store hot path and the
#: three results are immutable, so one instance each suffices
_WR_HIT = WriteResult("hit")
_WR_UPGRADE = WriteResult("upgrade")
_WR_MISS = WriteResult("miss")


class CacheHierarchy:
    """L1 + inclusive write-back L2 for one processor."""

    def __init__(
        self,
        l1_size: int,
        l2_size: int,
        block_size: int,
        l1_assoc: int = 2,
        l2_assoc: int = 4,
        node_id: int = -1,
        model: Optional[str] = None,
    ) -> None:
        self.block_size = block_size
        self.node_id = node_id
        self.l1: CacheArrayBase = make_cache_array(
            l1_size, block_size, l1_assoc, name=f"L1[{node_id}]", model=model
        )
        self.l2: CacheArrayBase = make_cache_array(
            l2_size, block_size, l2_assoc, name=f"L2[{node_id}]", model=model
        )

    # ------------------------------------------------------------------
    # processor-side probes
    # ------------------------------------------------------------------
    def read(self, addr: int) -> ReadResult:
        """Probe for a load.  On an L2 hit the block is refilled into L1."""
        data = self.l1.lookup_data(addr)
        if data is not None:
            return ReadResult("l1", data)
        data = self.l2.lookup_data(addr)
        if data is not None:
            # L1 is no-write-allocate and write-through, so refills are
            # always clean copies; an L1 victim needs no writeback.
            self.l1.insert(addr, LineState.SHARED, data)
            return ReadResult("l2", data)
        return ReadResult("miss", None)

    def write_probe(self, addr: int) -> WriteResult:
        """Probe for a store (no data change yet)."""
        code = self.l2.lookup_state(addr)
        if not code:
            return _WR_MISS
        if code >= CODE_EXCLUSIVE:
            return _WR_HIT
        return _WR_UPGRADE

    def perform_write(self, addr: int, data: int) -> None:
        """Commit a store to an owned L2 line (and through to L1 if present).

        An EXCLUSIVE line is silently promoted to MODIFIED (MESI).
        """
        if not self.l2.write_owned(addr, data):
            raise KeyError(f"perform_write without ownership of {addr:#x}")
        self.l1.set_data(addr, data)

    # ------------------------------------------------------------------
    # protocol-side operations
    # ------------------------------------------------------------------
    def fill(
        self, addr: int, state: LineState, data: int, fill_l1: bool = False
    ) -> Optional[Tuple[int, int]]:
        """Install a reply block into L2 (and L1 for demand-load fills).

        Returns ``(victim_addr, victim_data)`` if a *dirty* (M) victim was
        displaced and must be written back to its home; clean victims are
        dropped silently.  Inclusion: any displaced L2 victim is also purged
        from L1.
        """
        victim = self.l2.insert(addr, state, data)
        dirty_victim = None
        if victim is not None:
            victim_addr, victim_state, victim_data = victim
            self.l1.invalidate(victim_addr)
            if victim_state.owned():
                # M victims carry dirty data home; E victims (MESI) send a
                # replacement notification so the directory frees the owner
                dirty_victim = (victim_addr, victim_data)
        if fill_l1:
            # the load that missed passes its data through L1 (clean copy;
            # the L1 is write-through so it never holds dirty state)
            self.l1.insert(addr, LineState.SHARED, data)
        return dirty_victim

    def upgrade(self, addr: int) -> None:
        """Promote an S-state L2 line to M after an upgrade ack."""
        self.l2.set_state(addr, LineState.MODIFIED)

    def invalidate(self, addr: int) -> Optional[Tuple[LineState, int]]:
        """Invalidate a block in both levels; returns former L2 (state, data)."""
        self.l1.invalidate(addr)
        return self.l2.invalidate(addr)

    def downgrade(self, addr: int) -> int:
        """M/E -> S in L2 (remote read hit an owned block); returns the data."""
        data = self.l2.downgrade_owned(addr)
        if data is None:
            raise KeyError(f"downgrade without ownership of {addr:#x}")
        return data

    def state_of(self, addr: int) -> LineState:
        line = self.l2.probe(addr)
        return line.state if line is not None else LineState.INVALID

    def state_code(self, addr: int) -> int:
        """L2 state as a small-int code (0 when absent) — the hot form."""
        return self.l2.probe_state(addr)
