"""MSI line states shared by all cache levels.

The paper's system uses an invalidation-based three-state (MSI) protocol in
the processor caches and a full-map directory at the home memories [7].
Switch caches only ever hold clean shared data, so they reuse ``SHARED``.
"""

from __future__ import annotations

import enum


class LineState(enum.Enum):
    """Coherence state of one cache line.

    ``EXCLUSIVE`` exists only when the machine runs the MESI protocol
    extension (``SystemConfig.protocol = "mesi"``): a clean sole copy
    that may be written without a coherence transaction (silent E -> M).
    """

    INVALID = "I"
    SHARED = "S"
    EXCLUSIVE = "E"
    MODIFIED = "M"

    def readable(self) -> bool:
        """Whether a read can be satisfied from this state."""
        return self is not LineState.INVALID

    def writable(self) -> bool:
        """Whether a write can be performed without a coherence action.

        EXCLUSIVE counts: the write silently promotes the line to M.
        """
        return self in (LineState.MODIFIED, LineState.EXCLUSIVE)

    def owned(self) -> bool:
        """Whether this copy is the block's sole (owner) copy."""
        return self in (LineState.MODIFIED, LineState.EXCLUSIVE)


class DirState(enum.Enum):
    """Directory-entry state at a home node (full-map, three states [7])."""

    UNOWNED = "U"
    SHARED = "S"
    MODIFIED = "M"
