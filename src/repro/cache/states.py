"""MSI line states shared by all cache levels.

The paper's system uses an invalidation-based three-state (MSI) protocol in
the processor caches and a full-map directory at the home memories [7].
Switch caches only ever hold clean shared data, so they reuse ``SHARED``.

Integer codes
-------------
Every ``LineState`` member carries a small-int ``code`` (``I=0, S=1, E=2,
M=3``) so the struct-of-arrays cache kernel (:mod:`repro.cache.array`) can
store states as plain ints.  The encoding is ordered so the two hot
predicates become single comparisons::

    readable  <=>  code > 0            (anything but INVALID)
    writable  <=>  code >= CODE_EXCLUSIVE   (EXCLUSIVE or MODIFIED)
    owned     <=>  code >= CODE_EXCLUSIVE   (same set as writable)

``LINE_STATE_BY_CODE`` is the hoisted decode table back to the enum for
the object-facing views and victim tuples.

``REPRO_STATE`` selects the state-kernel implementation machine-wide:
``coded`` (default; bitmask directories + struct-of-arrays cache sets) or
``obj`` (the original per-object model, kept byte-for-byte as a
differential-debugging escape hatch, like ``REPRO_ENGINE=heap``).
"""

from __future__ import annotations

import enum
import os
from typing import Tuple

from ..errors import ConfigError

#: environment variable selecting the state-kernel model
STATE_ENV = "REPRO_STATE"

#: valid values for REPRO_STATE
STATE_MODELS = ("coded", "obj")


def state_model() -> str:
    """The configured state-kernel model (``coded`` unless overridden)."""
    model = os.environ.get(STATE_ENV, "coded")
    if model not in STATE_MODELS:
        raise ConfigError(
            f"unknown {STATE_ENV}={model!r}; expected one of {STATE_MODELS}"
        )
    return model


class LineState(enum.Enum):
    """Coherence state of one cache line.

    ``EXCLUSIVE`` exists only when the machine runs the MESI protocol
    extension (``SystemConfig.protocol = "mesi"``): a clean sole copy
    that may be written without a coherence transaction (silent E -> M).
    """

    code: int  # small-int encoding (assigned below; I=0, S=1, E=2, M=3)

    INVALID = "I"
    SHARED = "S"
    EXCLUSIVE = "E"
    MODIFIED = "M"

    def readable(self) -> bool:
        """Whether a read can be satisfied from this state."""
        return self is not LineState.INVALID

    def writable(self) -> bool:
        """Whether a write can be performed without a coherence action.

        EXCLUSIVE counts: the write silently promotes the line to M.
        """
        return self in (LineState.MODIFIED, LineState.EXCLUSIVE)

    def owned(self) -> bool:
        """Whether this copy is the block's sole (owner) copy."""
        return self in (LineState.MODIFIED, LineState.EXCLUSIVE)


for _code, _member in enumerate(LineState):
    _member.code = _code

#: decode table: LINE_STATE_BY_CODE[code] is the enum member
LINE_STATE_BY_CODE: Tuple[LineState, ...] = tuple(LineState)

#: hoisted code constants for the comparison predicates
CODE_INVALID = LineState.INVALID.code
CODE_SHARED = LineState.SHARED.code
CODE_EXCLUSIVE = LineState.EXCLUSIVE.code
CODE_MODIFIED = LineState.MODIFIED.code


class DirState(enum.Enum):
    """Directory-entry state at a home node (full-map, three states [7])."""

    UNOWNED = "U"
    SHARED = "S"
    MODIFIED = "M"
