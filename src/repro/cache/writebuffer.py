"""Release-consistency write buffer.

Under release consistency the processor retires stores into a write buffer
and continues; only synchronization releases wait for the buffer to drain.
Entries are kept at block granularity and stores to a block already pending
merge into the existing entry (standard coalescing write buffer).

The node controller drains the head entry through the coherence protocol;
this class only tracks contents, ordering, and occupancy statistics.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Optional, Tuple


class WriteBuffer:
    """Coalescing FIFO write buffer (per processor)."""

    def __init__(self, capacity: int = 8, block_size: int = 64) -> None:
        self.capacity = capacity
        self.block_size = block_size
        # block masking: AND with -block_size when it is a power of two
        # (always, in practice); 0 falls back to division in _block()
        self._neg_mask = -block_size if block_size & (block_size - 1) == 0 else 0
        # block_addr -> number of merged stores
        self._entries: "OrderedDict[int, int]" = OrderedDict()
        # the entry currently being drained (removed from _entries)
        self._draining: Optional[int] = None
        # statistics
        self.stores_retired = 0
        self.stores_merged = 0
        self.full_stalls = 0

    def _block(self, addr: int) -> int:
        if self._neg_mask:
            return addr & self._neg_mask
        return (addr // self.block_size) * self.block_size

    # ------------------------------------------------------------------
    # processor side
    # ------------------------------------------------------------------
    def can_accept(self, addr: int) -> bool:
        block = self._block(addr)
        if block in self._entries or block == self._draining:
            return True
        return len(self._entries) < self.capacity

    def push(self, addr: int) -> bool:
        """Retire a store.  Returns False (and counts a stall) when full."""
        block = self._block(addr)
        if block == self._draining:
            # Store to the block being drained right now cannot merge into
            # the in-flight transaction; it needs a fresh entry.
            if len(self._entries) >= self.capacity:
                self.full_stalls += 1
                return False
            self._entries[block] = self._entries.get(block, 0) + 1
            self.stores_retired += 1
            return True
        if block in self._entries:
            self._entries[block] += 1
            self.stores_retired += 1
            self.stores_merged += 1
            return True
        if len(self._entries) >= self.capacity:
            self.full_stalls += 1
            return False
        self._entries[block] = 1
        self.stores_retired += 1
        return True

    def contains(self, addr: int) -> bool:
        """Whether a store to this block is still pending (incl. draining)."""
        # hot path (checked on every simulated load): _block() inlined
        mask = self._neg_mask
        block = addr & mask if mask else addr // self.block_size * self.block_size
        return block in self._entries or block == self._draining

    # ------------------------------------------------------------------
    # drain side
    # ------------------------------------------------------------------
    def begin_drain(self) -> Optional[int]:
        """Pop the oldest entry and mark it in flight; returns its block addr."""
        if self._draining is not None or not self._entries:
            return None
        block, _count = self._entries.popitem(last=False)
        self._draining = block
        return block

    def finish_drain(self) -> None:
        """The in-flight entry's coherence transaction completed."""
        self._draining = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def draining(self) -> Optional[int]:
        return self._draining

    def __len__(self) -> int:
        return len(self._entries) + (1 if self._draining is not None else 0)

    def is_empty(self) -> bool:
        return len(self) == 0

    def pending_blocks(self) -> Iterator[int]:
        if self._draining is not None:
            yield self._draining
        yield from self._entries.keys()
