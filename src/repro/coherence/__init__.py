"""Directory-based MSI coherence substrate."""

from .directory import DirEntry, Directory
from .home import HomeController
from .l2ctrl import NodeController
from .messages import Transaction, make_message

__all__ = [
    "DirEntry",
    "Directory",
    "HomeController",
    "NodeController",
    "Transaction",
    "make_message",
]
