"""Full-map three-state directory (Censier & Feautrier [7]).

Each home node keeps, for every memory block it owns, a full-map bit
vector of the nodes that may hold a shared copy, or the identity of the
single owner when the block is modified.  The directory also holds the
memory image itself; block payloads are version numbers (see
:mod:`repro.cache.array`), incremented by each completed write, which the
test suite uses to verify coherence end to end.

Sharer encoding (DESIGN.md §10)
-------------------------------
The default :class:`DirEntry` stores the full-map vector literally as an
int bitmask (``sharers_mask``, bit *n* = node *n* shares) with a cached
popcount (``sharer_count``), so the per-transition hot path is bit
arithmetic with no set objects and no hashing.  Fan-out sites use
``sorted_sharers()``, which decodes the mask in ascending node order —
the same order ``sorted(set)`` produced — so message timing is
bit-identical to the old model.  :class:`DirEntryObj` keeps the original
``Set[int]`` storage and backs ``REPRO_STATE=obj`` plus the differential
fuzzer.  ``entry.sharers`` stays available on both as a decoded-set view
for tests and cold invariant checks.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..cache.states import DirState, state_model
from ..errors import ProtocolError


class DirEntry:
    """Directory state for one block (coded: sharers as an int bitmask)."""

    __slots__ = ("state", "sharers_mask", "sharer_count", "owner", "version")

    def __init__(self) -> None:
        self.state = DirState.UNOWNED
        self.sharers_mask = 0
        self.sharer_count = 0  # cached popcount of sharers_mask
        self.owner: Optional[int] = None
        self.version = 0  # current memory image (stale while MODIFIED)

    # -- sharer-set operations (the coded hot path) ---------------------
    def has_sharer(self, node: int) -> bool:
        return (self.sharers_mask >> node) & 1 == 1

    def num_sharers(self) -> int:
        return self.sharer_count

    def add_sharer_node(self, node: int) -> None:
        mask = self.sharers_mask
        bit = 1 << node
        if not mask & bit:
            self.sharers_mask = mask | bit
            self.sharer_count += 1

    def clear_sharer_nodes(self) -> None:
        self.sharers_mask = 0
        self.sharer_count = 0

    def sorted_sharers(self) -> List[int]:
        """Sharer node ids in ascending order (the fan-out order)."""
        out = []
        mask = self.sharers_mask
        while mask:
            low = mask & -mask
            out.append(low.bit_length() - 1)
            mask ^= low
        return out

    @property
    def sharers(self) -> Set[int]:
        """Decoded sharer set (tests / cold invariant checks only)."""
        return set(self.sorted_sharers())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DirEntry {self.state.value} sharers={self.sorted_sharers()} "
            f"owner={self.owner} v{self.version}>"
        )


class DirEntryObj(DirEntry):
    """The original ``Set[int]`` entry (``REPRO_STATE=obj`` reference).

    The private ``_sharers`` set is the storage; the mask slots of the
    base class go unused.  Kept observationally identical to the coded
    entry — the lockstep fuzzer in ``tests/test_state_differential.py``
    holds the two in sync op by op.
    """

    __slots__ = ("_sharers",)

    def __init__(self) -> None:
        super().__init__()
        self._sharers: Set[int] = set()

    def has_sharer(self, node: int) -> bool:
        return node in self._sharers

    def num_sharers(self) -> int:
        return len(self._sharers)

    def add_sharer_node(self, node: int) -> None:
        self._sharers.add(node)

    def clear_sharer_nodes(self) -> None:
        self._sharers.clear()

    def sorted_sharers(self) -> List[int]:
        return sorted(self._sharers)

    @property
    def sharers(self) -> Set[int]:
        return self._sharers


class Directory:
    """All directory entries homed at one node.

    ``model`` selects the entry encoding (``coded``/``obj``); the default
    follows the machine-wide ``REPRO_STATE`` selection.
    """

    def __init__(
        self, node_id: int, block_size: int, model: Optional[str] = None
    ) -> None:
        self.node_id = node_id
        self.block_size = block_size
        self._entry_cls = (
            DirEntryObj if (model or state_model()) == "obj" else DirEntry
        )
        self._entries: Dict[int, DirEntry] = {}

    def _block(self, addr: int) -> int:
        return (addr // self.block_size) * self.block_size

    def entry(self, addr: int) -> DirEntry:
        block = self._block(addr)
        entry = self._entries.get(block)
        if entry is None:
            entry = self._entry_cls()
            self._entries[block] = entry
        return entry

    def peek(self, addr: int) -> Optional[DirEntry]:
        return self._entries.get(self._block(addr))

    # ------------------------------------------------------------------
    # transitions (pure bookkeeping; the home controller adds timing)
    # ------------------------------------------------------------------
    def add_sharer(self, addr: int, node: int) -> None:
        entry = self.entry(addr)
        if entry.state is DirState.MODIFIED:
            raise ProtocolError(
                f"add_sharer on MODIFIED block (owner {entry.owner})",
                node=node, addr=addr, state=entry.state,
            )
        entry.state = DirState.SHARED
        entry.add_sharer_node(node)

    def set_owner(self, addr: int, node: int, version: Optional[int] = None) -> None:
        entry = self.entry(addr)
        entry.state = DirState.MODIFIED
        entry.clear_sharer_nodes()
        entry.owner = node
        if version is not None:
            entry.version = version

    def writeback(self, addr: int, node: int, version: int) -> None:
        """Owner returned dirty data (eviction or recall)."""
        entry = self.entry(addr)
        if entry.state is not DirState.MODIFIED or entry.owner != node:
            raise ProtocolError(
                f"writeback from non-owner (entry {entry!r})",
                node=node, addr=addr, state=entry.state,
            )
        entry.state = DirState.UNOWNED
        entry.owner = None
        entry.version = version

    def clear_sharers(self, addr: int) -> Set[int]:
        entry = self.entry(addr)
        sharers = set(entry.sorted_sharers())
        entry.clear_sharer_nodes()
        if entry.state is DirState.SHARED:
            entry.state = DirState.UNOWNED
        return sharers

    # ------------------------------------------------------------------
    # introspection (used by invariant checks)
    # ------------------------------------------------------------------
    def entries(self) -> Iterator[Tuple[int, DirEntry]]:
        return iter(self._entries.items())

    def version_of(self, addr: int) -> int:
        return self.entry(addr).version
