"""Full-map three-state directory (Censier & Feautrier [7]).

Each home node keeps, for every memory block it owns, a full-map bit
vector of the nodes that may hold a shared copy, or the identity of the
single owner when the block is modified.  The directory also holds the
memory image itself; block payloads are version numbers (see
:mod:`repro.cache.array`), incremented by each completed write, which the
test suite uses to verify coherence end to end.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Set, Tuple

from ..cache.states import DirState
from ..errors import ProtocolError


class DirEntry:
    """Directory state for one block."""

    __slots__ = ("state", "sharers", "owner", "version")

    def __init__(self) -> None:
        self.state = DirState.UNOWNED
        self.sharers: Set[int] = set()
        self.owner: Optional[int] = None
        self.version = 0  # current memory image (stale while MODIFIED)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DirEntry {self.state.value} sharers={sorted(self.sharers)} "
            f"owner={self.owner} v{self.version}>"
        )


class Directory:
    """All directory entries homed at one node."""

    def __init__(self, node_id: int, block_size: int) -> None:
        self.node_id = node_id
        self.block_size = block_size
        self._entries: Dict[int, DirEntry] = {}

    def _block(self, addr: int) -> int:
        return (addr // self.block_size) * self.block_size

    def entry(self, addr: int) -> DirEntry:
        block = self._block(addr)
        entry = self._entries.get(block)
        if entry is None:
            entry = DirEntry()
            self._entries[block] = entry
        return entry

    def peek(self, addr: int) -> Optional[DirEntry]:
        return self._entries.get(self._block(addr))

    # ------------------------------------------------------------------
    # transitions (pure bookkeeping; the home controller adds timing)
    # ------------------------------------------------------------------
    def add_sharer(self, addr: int, node: int) -> None:
        entry = self.entry(addr)
        if entry.state is DirState.MODIFIED:
            raise ProtocolError(
                f"add_sharer on MODIFIED block (owner {entry.owner})",
                node=node, addr=addr, state=entry.state,
            )
        entry.state = DirState.SHARED
        entry.sharers.add(node)

    def set_owner(self, addr: int, node: int, version: Optional[int] = None) -> None:
        entry = self.entry(addr)
        entry.state = DirState.MODIFIED
        entry.sharers = set()
        entry.owner = node
        if version is not None:
            entry.version = version

    def writeback(self, addr: int, node: int, version: int) -> None:
        """Owner returned dirty data (eviction or recall)."""
        entry = self.entry(addr)
        if entry.state is not DirState.MODIFIED or entry.owner != node:
            raise ProtocolError(
                f"writeback from non-owner (entry {entry!r})",
                node=node, addr=addr, state=entry.state,
            )
        entry.state = DirState.UNOWNED
        entry.owner = None
        entry.version = version

    def clear_sharers(self, addr: int) -> Set[int]:
        entry = self.entry(addr)
        sharers = entry.sharers
        entry.sharers = set()
        if entry.state is DirState.SHARED:
            entry.state = DirState.UNOWNED
        return sharers

    # ------------------------------------------------------------------
    # introspection (used by invariant checks)
    # ------------------------------------------------------------------
    def entries(self) -> Iterator[Tuple[int, DirEntry]]:
        return iter(self._entries.items())

    def version_of(self, addr: int) -> int:
        return self.entry(addr).version
