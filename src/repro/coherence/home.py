"""Home-node memory/directory controller.

Each node is home for a slice of physical memory.  This controller owns
that slice's full-map directory and memory module and runs the
three-state (MSI) directory protocol [7]:

* ``READ``    — serve from memory (U/S) or recall the owner (M).
* ``READX``   — invalidate every registered sharer, read memory, grant
  ownership; recall-and-invalidate the owner when modified.
* ``UPGRADE`` — invalidate the other sharers and acknowledge; degenerates
  to READX when the requester's copy was invalidated by a racing write.
* ``DIR_UPDATE`` — switch-cache bookkeeping: a switch served this read, so
  register the requester as a sharer.  If a write slipped in between the
  switch hit and this update (directory now MODIFIED), send a *corrective
  invalidation* to the requester: it purges the stale switch copies along
  the home-to-requester path and the requester's own copy.
* ``WRITEBACK`` / ``RECALL_REPLY`` — owner data returns; both are accepted
  for a transaction awaiting owner data because an eviction can race a
  recall (the ex-owner answers the recall with ``no_data`` and the in-
  flight writeback supplies the block).

Transactions to the same block are serialized through a per-block FIFO —
a request arriving while another is active simply queues, which is how
the transient states of a hardware directory are realized here.

**Switch-cache purge rule.**  Invalidations for a write go to *every*
registered sharer, including the writer itself when it is upgrading: the
writer receives a ``purge_only`` invalidation that it acknowledges without
dropping its copy.  The purpose is to walk the home-to-writer path and
purge the switch-cache copies deposited when the writer originally
fetched the block (the paper's tree-cover argument requires every
home-to-sharer path to be snooped).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional

from ..cache.states import DirState
from ..errors import ProtocolError
from ..memory.dram import MemoryModule
from ..network.message import Message, MessagePool, MsgKind
from ..sim.engine import Simulator
from .directory import Directory

#: directory-access overhead for transactions that do not touch memory
DIR_CYCLES = 4


class HomeTxn:
    """One active transaction at the home (per-block serialized)."""

    __slots__ = (
        "msg",
        "block",
        "requester",
        "acks_needed",
        "mem_done",
        "awaiting_owner_data",
        "awaiting_wb",
        "owner_version",
        "reply_kind",
        "mem_wait",
        "finished",
    )

    def __init__(self, msg: Message, block: int) -> None:
        self.msg = msg
        self.block = block
        self.requester = msg.src
        self.acks_needed = 0
        self.mem_done: Optional[int] = None  # cycle memory data is ready
        self.awaiting_owner_data = False
        self.awaiting_wb = False
        self.owner_version: Optional[int] = None
        self.reply_kind: Optional[MsgKind] = None
        self.mem_wait = 0
        self.finished = False


class HomeController:
    """Directory + memory controller for one node's home memory."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        directory: Directory,
        memory: MemoryModule,
        send: Callable[[Message, Optional[int]], None],
        block_size: int,
        protocol: str = "msi",
        pool: Optional[MessagePool] = None,
    ) -> None:
        self.sim = sim
        self._tracer = sim.tracer  # installed before construction
        self.node_id = node_id
        self.directory = directory
        self.memory = memory
        self._send = send
        self.block_size = block_size
        self.protocol = protocol
        # shared machine-wide pool (id stream + worm free list); private
        # when the controller is built standalone in unit tests
        self._pool = pool if pool is not None else MessagePool(block_size)
        self._active: Dict[int, HomeTxn] = {}
        self._pending: Dict[int, Deque[Message]] = {}
        self.trace_track = f"home{node_id}"
        # statistics
        self.reads_served = 0
        self.reads_recalled = 0
        self.writes_served = 0
        self.upgrades_served = 0
        self.dir_updates = 0
        self.corrective_invs = 0
        self.writebacks = 0
        self.exclusive_grants = 0

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def receive(self, msg: Message) -> None:
        kind = msg.kind
        if kind in (MsgKind.READ, MsgKind.READX, MsgKind.UPGRADE, MsgKind.DIR_UPDATE):
            self._enqueue(msg)
        elif kind is MsgKind.INV_ACK:
            self._on_inv_ack(msg)
        elif kind is MsgKind.RECALL_REPLY:
            self._on_recall_reply(msg)
        elif kind is MsgKind.WRITEBACK:
            self._on_writeback(msg)
        else:
            entry = self.directory.peek(msg.addr)
            raise ProtocolError(
                f"home got unexpected {msg!r}",
                node=self.node_id, addr=msg.addr,
                state=entry.state if entry is not None else None,
            )

    def _block(self, addr: int) -> int:
        return (addr // self.block_size) * self.block_size

    def _enqueue(self, msg: Message) -> None:
        block = self._block(msg.addr)
        if block in self._active:
            self._pending.setdefault(block, deque()).append(msg)
        else:
            self._start(msg, block)

    def _complete(self, txn: HomeTxn) -> None:
        del self._active[txn.block]
        queue = self._pending.get(txn.block)
        if queue:
            nxt = queue.popleft()
            if not queue:
                del self._pending[txn.block]
            self._start(nxt, txn.block)

    # ------------------------------------------------------------------
    # transaction start
    # ------------------------------------------------------------------
    def _start(self, msg: Message, block: int) -> None:
        txn = HomeTxn(msg, block)
        self._active[block] = txn
        kind = msg.kind
        if kind is MsgKind.READ:
            self._start_read(txn)
        elif kind is MsgKind.READX:
            self._start_write(txn, upgrade=False)
        elif kind is MsgKind.UPGRADE:
            self._start_write(txn, upgrade=True)
        elif kind is MsgKind.DIR_UPDATE:
            self._start_dir_update(txn)
        else:  # pragma: no cover - guarded by receive()
            raise ProtocolError(
                f"cannot start {msg!r}", node=self.node_id, addr=msg.addr
            )

    def _start_read(self, txn: HomeTxn) -> None:
        entry = self.directory.entry(txn.block)
        txn.reply_kind = MsgKind.DATA_S
        tracer = self._tracer
        if tracer is not None:
            now = self.sim.now
            tracer.instant(
                self.trace_track, "read", now,
                {
                    "addr": txn.block, "requester": txn.requester,
                    "state": entry.state.name,
                    "recalled": entry.state is DirState.MODIFIED,
                },
            )
            tracer.counter(
                self.trace_track, "mem_backlog", now,
                max(0, self.memory.array.free_at() - now),
            )
        if entry.state is DirState.MODIFIED:
            self.reads_recalled += 1
            if entry.owner == txn.requester:
                # the requester's own writeback is in flight; wait for it
                txn.awaiting_wb = True
            else:
                txn.awaiting_owner_data = True
                self._send_ctl(MsgKind.RECALL, entry.owner, txn)
        else:
            start, done = self.memory.read()
            txn.mem_wait = max(0, start - self.sim.now - self.memory.bus_cycles)
            txn.mem_done = done
            self.sim.call_at(done, self._finish_read_from_memory, txn)

    def _finish_read_from_memory(self, txn: HomeTxn) -> None:
        entry = self.directory.entry(txn.block)
        self.reads_served += 1
        if self.protocol == "mesi" and entry.state is DirState.UNOWNED:
            # MESI: a sole reader gets a clean-exclusive copy so a later
            # write needs no upgrade; the directory records it as owner
            self.directory.set_owner(txn.block, txn.requester)
            self.exclusive_grants += 1
            self._reply_data(txn, MsgKind.DATA_E, entry.version, served_by="home_mem")
        else:
            self.directory.add_sharer(txn.block, txn.requester)
            self._reply_data(txn, MsgKind.DATA_S, entry.version, served_by="home_mem")
        self._complete(txn)

    def _start_write(self, txn: HomeTxn, upgrade: bool) -> None:
        entry = self.directory.entry(txn.block)
        requester = txn.requester
        tracer = self._tracer
        if tracer is not None:
            tracer.instant(
                self.trace_track, "upgrade" if upgrade else "write",
                self.sim.now,
                {
                    "addr": txn.block, "requester": requester,
                    "state": entry.state.name, "invs": entry.num_sharers(),
                },
            )
        if (upgrade and entry.state is DirState.SHARED
                and entry.has_sharer(requester)):
            # true upgrade: no data needed
            txn.reply_kind = MsgKind.UPGR_ACK
        else:
            # write miss — or an upgrade whose copy a racing write destroyed
            txn.reply_kind = MsgKind.DATA_X
        if entry.state is DirState.MODIFIED:
            if entry.owner == requester:
                txn.awaiting_wb = True
            else:
                txn.awaiting_owner_data = True
                self._send_ctl(MsgKind.RECALL_X, entry.owner, txn)
            return
        # invalidate every registered sharer; the requester (if registered)
        # gets a purge-only invalidation that cleans its path's switch
        # caches.  Ascending node order: fan-out order must not depend on
        # set hash order or simulated timing would vary across builds.
        targets = entry.sorted_sharers()
        txn.acks_needed = len(targets)
        for sharer in targets:
            inv = self._pool.make(
                MsgKind.INV,
                src=self.node_id,
                dst=sharer,
                addr=txn.block,
                payload={"purge_only": sharer == requester},
            )
            self._send(inv, None)
        if txn.reply_kind is MsgKind.DATA_X:
            start, done = self.memory.read()
            txn.mem_wait = max(0, start - self.sim.now - self.memory.bus_cycles)
            txn.mem_done = done
            self.sim.call_at(done, self._write_maybe_finish, txn, True)
        else:
            txn.mem_done = self.sim.now + DIR_CYCLES
            self.sim.call_at(txn.mem_done, self._write_maybe_finish, txn, True)

    def _write_maybe_finish(self, txn: HomeTxn, mem_ready: bool = False) -> None:
        if txn.finished:
            return
        if txn.acks_needed > 0:
            return
        if txn.mem_done is None or self.sim.now < txn.mem_done:
            return
        txn.finished = True
        entry = self.directory.entry(txn.block)
        if txn.reply_kind is MsgKind.UPGR_ACK:
            self.upgrades_served += 1
            self.directory.clear_sharers(txn.block)
            self.directory.set_owner(txn.block, txn.requester)
            reply = self._pool.make(
                MsgKind.UPGR_ACK,
                src=self.node_id,
                dst=txn.requester,
                addr=txn.block,
                payload={"proc": txn.msg.payload.get("proc")},
                transaction=txn.msg.transaction,
            )
            self._send(reply, None)
        else:
            self.writes_served += 1
            version = (
                txn.owner_version if txn.owner_version is not None else entry.version
            )
            self.directory.clear_sharers(txn.block)
            self.directory.set_owner(txn.block, txn.requester, version=version)
            self._reply_data(txn, MsgKind.DATA_X, version, served_by="home_mem")
        self._complete(txn)

    def _start_dir_update(self, txn: HomeTxn) -> None:
        self.dir_updates += 1
        requester = txn.msg.payload.get("requester", txn.msg.src)
        served = txn.msg.payload.get("sc_version")
        entry = self.directory.entry(txn.block)
        stale = entry.state is DirState.MODIFIED or (
            served is not None and served != entry.version
        )
        tracer = self._tracer
        if tracer is not None:
            tracer.instant(
                self.trace_track, "dir_update", self.sim.now,
                {"addr": txn.block, "requester": requester, "stale": stale},
            )
            if stale:
                tracer.instant(
                    self.trace_track, "corrective_inv", self.sim.now,
                    {"addr": txn.block, "requester": requester},
                )
        if stale:
            # a write slipped between the switch hit and this update: the
            # requester received stale data — chase it with an invalidation
            # that also purges the stale switch copies along the path.
            # The version comparison catches the writeback race the dir
            # state alone misses: the intervening writer may already have
            # evicted (dir back to UNOWNED/SHARED at a newer version) by
            # the time this update arrives, and the requester's copy is
            # stale all the same.
            self.corrective_invs += 1
            inv = self._pool.make(
                MsgKind.INV,
                src=self.node_id,
                dst=requester,
                addr=txn.block,
                payload={"no_ack": True},
            )
            self._send(inv, None)
        else:
            self.directory.add_sharer(txn.block, requester)
        self.sim.call(DIR_CYCLES, self._complete, txn)

    # ------------------------------------------------------------------
    # responses feeding active transactions
    # ------------------------------------------------------------------
    def _on_inv_ack(self, msg: Message) -> None:
        txn = self._active.get(self._block(msg.addr))
        if txn is None:
            entry = self.directory.peek(msg.addr)
            raise ProtocolError(
                f"stray INV_ACK {msg!r} at home",
                node=self.node_id, addr=msg.addr,
                state=entry.state if entry is not None else None,
            )
        txn.acks_needed -= 1
        if txn.acks_needed < 0:
            raise ProtocolError(
                f"too many INV_ACKs for block {txn.block:#x}",
                node=self.node_id, addr=txn.block,
                state=self.directory.entry(txn.block).state,
            )
        self._write_maybe_finish(txn)

    def _on_recall_reply(self, msg: Message) -> None:
        txn = self._active.get(self._block(msg.addr))
        if txn is None or not txn.awaiting_owner_data:
            if msg.payload.get("no_data"):
                return  # benign late reply; the writeback already served us
            entry = self.directory.peek(msg.addr)
            raise ProtocolError(
                f"stray RECALL_REPLY {msg!r} at home",
                node=self.node_id, addr=msg.addr,
                state=entry.state if entry is not None else None,
            )
        if msg.payload.get("no_data"):
            # the owner evicted before the recall arrived; its writeback
            # is already in flight on the same path and will supply data
            txn.awaiting_owner_data = False
            txn.awaiting_wb = True
            if txn.owner_version is not None:
                self._owner_data_ready(txn)
        else:
            txn.awaiting_owner_data = False
            txn.owner_version = msg.data
            self._owner_data_ready(txn)

    def _on_writeback(self, msg: Message) -> None:
        self.writebacks += 1
        tracer = self._tracer
        if tracer is not None:
            tracer.instant(
                self.trace_track, "writeback", self.sim.now,
                {"addr": msg.addr, "owner": msg.src},
            )
        block = self._block(msg.addr)
        txn = self._active.get(block)
        entry = self.directory.entry(block)
        if entry.state is DirState.MODIFIED and entry.owner == msg.src:
            self.directory.writeback(block, msg.src, msg.data)
        self.memory.write()
        if txn is not None and (txn.awaiting_wb or txn.awaiting_owner_data):
            txn.owner_version = msg.data
            if txn.awaiting_wb:
                txn.awaiting_wb = False
                self._owner_data_ready(txn)
            # if still awaiting the recall reply, _on_recall_reply will
            # notice owner_version is set and finish then

    def _owner_data_ready(self, txn: HomeTxn) -> None:
        """Owner (or writeback) data arrived for the active transaction."""
        version = txn.owner_version
        if version is None:
            raise ProtocolError(
                "owner data ready without a version",
                node=self.node_id, addr=txn.block,
                state=self.directory.entry(txn.block).state,
            )
        entry = self.directory.entry(txn.block)
        if txn.msg.kind is MsgKind.READ:
            # recall (M -> S): old owner keeps a shared copy unless it
            # answered with no_data (eviction); memory is updated
            if entry.state is DirState.MODIFIED:
                owner = entry.owner
                self.directory.writeback(txn.block, owner, version)
                self.directory.add_sharer(txn.block, owner)
            else:
                entry.version = version
            self.directory.add_sharer(txn.block, txn.requester)
            self.memory.write()
            self.reads_served += 1
            self._reply_data(txn, MsgKind.DATA_S, version, served_by="owner")
            self._complete(txn)
        else:
            # RECALL_X or owner==requester writeback for a write
            if entry.state is DirState.MODIFIED:
                self.directory.writeback(txn.block, entry.owner, version)
            else:
                entry.version = version
            txn.mem_done = self.sim.now
            self._write_maybe_finish(txn, mem_ready=True)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _reply_data(
        self, txn: HomeTxn, kind: MsgKind, version: int, served_by: str
    ) -> None:
        reply = self._pool.make(
            kind,
            src=self.node_id,
            dst=txn.requester,
            addr=txn.block,
            data=version,
            payload={
                "served_by": served_by,
                "mem_wait": txn.mem_wait,
                "proc": txn.msg.payload.get("proc"),
            },
            transaction=txn.msg.transaction,
        )
        self._send(reply, None)

    def _send_ctl(self, kind: MsgKind, dst: int, txn: HomeTxn) -> None:
        msg = self._pool.make(kind, src=self.node_id, dst=dst, addr=txn.block)
        self._send(msg, None)
