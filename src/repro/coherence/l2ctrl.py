"""Node-side coherence controller (L2 controller + MSHRs).

Sits between a processor's cache hierarchy and the system: it turns L2
misses into directory transactions, handles incoming protocol traffic
(invalidations, recalls) against the hierarchy, fills replies, and spills
dirty victims as writebacks.  One MSHR per block; the processor model
guarantees at most one outstanding read plus one outstanding write drain,
and never both to the same block (reads that match a pending write-buffer
entry are forwarded from the buffer instead).

The *late invalidation* race is handled DASH-style: an INV that arrives
while the block's reply is still in flight marks the MSHR; the reply's
data is then delivered to the processor once but not installed in any
cache.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..cache.hierarchy import CacheHierarchy
from ..cache.states import CODE_EXCLUSIVE, CODE_SHARED, LineState
from ..errors import ProtocolError
from ..memory.netcache import NetworkCache
from ..memory.nic import NetworkInterface
from ..sim.engine import Simulator
from .messages import Transaction


# imported lazily by name to avoid a hard import cycle in type checkers
from ..network.message import Message, MessagePool, MsgKind


class NodeController:
    """Coherence controller for one node's processor side."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        hierarchy: CacheHierarchy,
        ni: NetworkInterface,
        home_of: Callable[[int], int],
        block_size: int,
        netcache: Optional[NetworkCache] = None,
        proc_id: Optional[int] = None,
        probe_netcache: bool = True,
        pool: Optional[MessagePool] = None,
    ) -> None:
        self.sim = sim
        self._tracer = sim.tracer  # installed before construction
        self.node_id = node_id
        self.hierarchy = hierarchy
        self.ni = ni
        self.home_of = home_of
        self.block_size = block_size
        # the machine shares one pool (one id stream, one worm free list);
        # standalone controllers in unit tests get a private pool
        self._pool = pool if pool is not None else MessagePool(block_size)
        self.netcache = netcache
        self.proc_id = proc_id
        self.probe_netcache = probe_netcache
        self._mshr: Dict[int, Transaction] = {}
        # statistics
        self.reads_issued = 0
        self.writes_issued = 0
        self.upgrades_issued = 0
        self.writebacks_sent = 0
        self.invs_received = 0
        self.late_invals = 0

    def _block(self, addr: int) -> int:
        return (addr // self.block_size) * self.block_size

    def _req_payload(self):
        return {"proc": self.proc_id} if self.proc_id is not None else None

    def mark_pending_inval(self, block: int) -> None:
        """Node-level INV handling: flag an in-flight read as use-once."""
        pending = self._mshr.get(block)
        if pending is not None and pending.kind == "read":
            pending.pending_inval = True

    # ------------------------------------------------------------------
    # processor-facing: miss issue
    # ------------------------------------------------------------------
    def issue_read(
        self, addr: int, callback: Callable[[Transaction], None]
    ) -> Transaction:
        """L1+L2 read miss: probe the network cache, then go to the home."""
        block = self._block(addr)
        home = self.home_of(block)
        txn = Transaction(
            "read", block, self.node_id, home, self.block_size, self.sim.now, callback
        )
        self.reads_issued += 1
        if block in self._mshr:
            raise ProtocolError(
                f"MSHR conflict on read (pending {self._mshr[block]!r})",
                node=self.node_id, addr=block,
                state=self.hierarchy.state_of(block),
            )
        if (self.probe_netcache and self.netcache is not None
                and home != self.node_id):
            data, done = self.netcache.lookup(block)
            if data is not None:
                txn.served_by = "netcache"
                txn.data = data
                self.sim.call_at(done, self._complete_nc_read, txn)
                return txn
            # miss: the probe's latency is paid before the request departs
            self._mshr[block] = txn
            msg = self._pool.make(
                MsgKind.READ, self.node_id, home, block,
                payload=self._req_payload(), transaction=txn,
            )
            txn.req_msg = msg
            self.ni.send(msg, at=done)
            return txn
        self._mshr[block] = txn
        msg = self._pool.make(
            MsgKind.READ, self.node_id, home, block,
            payload=self._req_payload(), transaction=txn,
        )
        txn.req_msg = msg
        self.ni.send(msg)
        return txn

    def _complete_nc_read(self, txn: Transaction) -> None:
        victim = self.hierarchy.fill(txn.addr, LineState.SHARED, txn.data, fill_l1=True)
        self._spill(victim)
        self._finish(txn)

    def issue_write(
        self, addr: int, callback: Callable[[Transaction], None]
    ) -> Transaction:
        """Write-buffer drain needs ownership: upgrade or read-exclusive."""
        block = self._block(addr)
        home = self.home_of(block)
        if self.hierarchy.state_code(block) == CODE_SHARED:
            kind, txn_kind = MsgKind.UPGRADE, "upgrade"
            self.upgrades_issued += 1
        else:
            kind, txn_kind = MsgKind.READX, "write"
            self.writes_issued += 1
        txn = Transaction(
            txn_kind, block, self.node_id, home, self.block_size, self.sim.now, callback
        )
        if block in self._mshr:
            raise ProtocolError(
                f"MSHR conflict on write (pending {self._mshr[block]!r})",
                node=self.node_id, addr=block,
                state=self.hierarchy.state_of(block),
            )
        self._mshr[block] = txn
        msg = self._pool.make(
            kind, self.node_id, home, block,
            payload=self._req_payload(), transaction=txn,
        )
        txn.req_msg = msg
        self.ni.send(msg)
        return txn

    # ------------------------------------------------------------------
    # network-facing: receive
    # ------------------------------------------------------------------
    def receive(self, msg: Message) -> None:
        kind = msg.kind
        if kind is MsgKind.DATA_S:
            self._on_data_s(msg)
        elif kind is MsgKind.DATA_X:
            self._on_data_x(msg)
        elif kind is MsgKind.DATA_E:
            self._on_data_e(msg)
        elif kind is MsgKind.UPGR_ACK:
            self._on_upgr_ack(msg)
        elif kind is MsgKind.INV:
            self._on_inv(msg)
        elif kind in (MsgKind.RECALL, MsgKind.RECALL_X):
            self._on_recall(msg)
        else:
            raise ProtocolError(
                f"node got unexpected {msg!r}",
                node=self.node_id, addr=msg.addr,
                state=self.hierarchy.state_of(msg.addr),
            )

    def _pop_mshr(self, msg: Message) -> Transaction:
        block = self._block(msg.addr)
        txn = self._mshr.pop(block, None)
        if txn is None:
            raise ProtocolError(
                f"reply {msg!r} matches no MSHR",
                node=self.node_id, addr=block,
                state=self.hierarchy.state_of(block),
            )
        return txn

    def _on_data_s(self, msg: Message) -> None:
        txn = self._pop_mshr(msg)
        txn.reply_msg = msg
        txn.data = msg.data
        served_by = msg.payload.get("served_by", "home_mem")
        if served_by == "switch":
            txn.served_by = "switch"
            txn.served_stage = msg.payload.get("served_stage")
        elif served_by == "owner":
            txn.served_by = "owner"
        else:
            txn.served_by = "local_mem" if txn.home == self.node_id else "remote_mem"
        if txn.pending_inval:
            # use-once data: deliver to the processor, install nowhere
            self.late_invals += 1
            self._finish(txn)
            return
        victim = self.hierarchy.fill(txn.addr, LineState.SHARED, msg.data, fill_l1=True)
        self._spill(victim)
        if self.netcache is not None and txn.home != self.node_id:
            self.netcache.fill(txn.addr, msg.data)
        self._finish(txn)

    def _on_data_x(self, msg: Message) -> None:
        txn = self._pop_mshr(msg)
        txn.reply_msg = msg
        txn.data = msg.data
        txn.served_by = "home_mem"
        victim = self.hierarchy.fill(txn.addr, LineState.MODIFIED, msg.data)
        self._spill(victim)
        self._finish(txn)

    def _on_data_e(self, msg: Message) -> None:
        txn = self._pop_mshr(msg)
        txn.reply_msg = msg
        txn.data = msg.data
        txn.served_by = "local_mem" if txn.home == self.node_id else "remote_mem"
        if txn.pending_inval:
            self.late_invals += 1
            self._finish(txn)
            return
        victim = self.hierarchy.fill(
            txn.addr, LineState.EXCLUSIVE, msg.data, fill_l1=True
        )
        self._spill(victim)
        self._finish(txn)

    def _on_upgr_ack(self, msg: Message) -> None:
        txn = self._pop_mshr(msg)
        txn.reply_msg = msg
        state = self.hierarchy.state_of(txn.addr)
        if state is not LineState.SHARED:
            raise ProtocolError(
                "UPGR_ACK but line is not SHARED — the home should have "
                "escalated to READX",
                node=self.node_id, addr=txn.addr, state=state,
            )
        self.hierarchy.upgrade(txn.addr)
        self._finish(txn)

    def _on_inv(self, msg: Message) -> None:
        self.invs_received += 1
        block = self._block(msg.addr)
        if msg.payload.get("purge_only"):
            # our own upgrade/write: the L2 copy stays (it becomes the M
            # copy) but the network cache's clean copy is now stale
            if self.netcache is not None:
                self.netcache.invalidate(block)
        else:
            self.hierarchy.invalidate(block)
            if self.netcache is not None:
                self.netcache.invalidate(block)
            pending = self._mshr.get(block)
            if pending is not None and pending.kind == "read":
                pending.pending_inval = True
        if not msg.payload.get("no_ack"):
            ack = self._pool.make(MsgKind.INV_ACK, self.node_id, msg.src, block)
            self.ni.send(ack)

    def _on_recall(self, msg: Message) -> None:
        block = self._block(msg.addr)
        if self.hierarchy.state_code(block) >= CODE_EXCLUSIVE:
            if msg.kind is MsgKind.RECALL:
                data = self.hierarchy.downgrade(block)
            else:
                _state, data = self.hierarchy.invalidate(block)
                if self.netcache is not None:
                    self.netcache.invalidate(block)
            reply = self._pool.make(
                MsgKind.RECALL_REPLY, self.node_id, msg.src, block, data=data,
            )
        else:
            # eviction raced the recall; the writeback is already in flight
            reply = self._pool.make(
                MsgKind.RECALL_REPLY, self.node_id, msg.src, block,
                payload={"no_data": True},
            )
        self.ni.send(reply)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _spill(self, victim) -> None:
        """Send a displaced dirty L2 victim home as a writeback."""
        if victim is None:
            return
        victim_addr, victim_data = victim
        home = self.home_of(victim_addr)
        self.writebacks_sent += 1
        wb = self._pool.make(
            MsgKind.WRITEBACK, self.node_id, home, victim_addr,
            data=victim_data,
        )
        self.ni.send(wb)

    def _finish(self, txn: Transaction) -> None:
        txn.completed_at = self.sim.now
        tracer = self._tracer
        if tracer is not None:
            proc = self.proc_id if self.proc_id is not None else self.node_id
            tracer.async_span(
                f"proc{proc}", txn.kind, "txn", txn.id,
                txn.issued_at, txn.completed_at,
                {"addr": txn.addr, "served_by": txn.served_by},
            )
        if txn.callback is not None:
            txn.callback(txn)

    @property
    def outstanding(self) -> int:
        return len(self._mshr)
