"""Coherence transactions and message construction helpers.

A :class:`Transaction` is the node-side record of one outstanding
coherence operation (an L2 read miss, a write-ownership acquisition, or an
upgrade).  It carries the timestamps from which the paper's latency
breakdowns (Figure-5-style) are computed and the service classification
("where was this read served?") used by the evaluation figures.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Optional

from ..network.message import Message, MsgKind, flits_for

_txn_ids = itertools.count()


class Transaction:
    """One outstanding coherence operation from a node's point of view."""

    __slots__ = (
        "id",
        "kind",
        "addr",
        "node",
        "home",
        "block_size",
        "issued_at",
        "completed_at",
        "served_by",
        "served_stage",
        "pending_inval",
        "callback",
        "data",
        "req_msg",
        "reply_msg",
    )

    def __init__(
        self,
        kind: str,
        addr: int,
        node: int,
        home: int,
        block_size: int,
        issued_at: int,
        callback: Optional[Callable[["Transaction"], None]] = None,
    ) -> None:
        if kind not in ("read", "write", "upgrade"):
            raise ValueError(f"bad transaction kind {kind!r}")
        self.id = next(_txn_ids)
        self.kind = kind
        self.addr = addr
        self.node = node
        self.home = home
        self.block_size = block_size
        self.issued_at = issued_at
        self.completed_at: int = -1
        # where the read was ultimately served:
        # 'local_mem' | 'remote_mem' | 'owner' | 'netcache' | 'switch'
        self.served_by: Optional[str] = None
        self.served_stage: Optional[int] = None
        self.pending_inval = False
        self.callback = callback
        self.data: Optional[int] = None
        self.req_msg: Optional[Message] = None
        self.reply_msg: Optional[Message] = None

    @property
    def is_remote(self) -> bool:
        return self.node != self.home

    @property
    def latency(self) -> int:
        if self.completed_at < 0:
            raise ValueError("transaction not complete")
        return self.completed_at - self.issued_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Txn#{self.id} {self.kind} n{self.node}->h{self.home} "
            f"addr={self.addr:#x} served_by={self.served_by}>"
        )


def make_message(
    kind: MsgKind,
    src: int,
    dst: int,
    addr: int,
    block_size: int,
    data: Optional[int] = None,
    payload: Optional[Dict[str, Any]] = None,
    transaction: Optional[Transaction] = None,
) -> Message:
    """Build a message with the correct worm length for its kind."""
    return Message(
        kind=kind,
        src=src,
        dst=dst,
        addr=addr,
        flits=flits_for(kind, block_size),
        data=data,
        payload=payload,
        transaction=transaction,
    )
