"""The paper's contribution: CAESAR switch caches."""

from .caesar import CaesarEngine
from .policy import CachingPolicy
from .switchcache import SwitchCacheGeometry, SwitchCacheSRAM

__all__ = [
    "CaesarEngine",
    "CachingPolicy",
    "SwitchCacheGeometry",
    "SwitchCacheSRAM",
]
