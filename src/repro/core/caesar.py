"""CAESAR: the CAche Embedded Switch ARchitecture engine.

One :class:`CaesarEngine` lives inside each switch of a switch-cache
interconnect.  The fabric calls exactly three hooks as worm headers arrive.
Each hook takes the header-arrival cycle as an explicit ``now`` argument
(defaulting to the simulator clock): the fabric's express transit
(DESIGN.md §12) processes several hops inside one event, so the hooks
must time their port grants off the worm's *logical* arrival cycle, not
off whenever the fused event happens to be executing.  The three hooks:

* :meth:`snoop` — an INV worm passes: purge a matching block (second tag
  port, never skipped, never delays the worm).
* :meth:`try_deposit` — a DATA_S worm passes: opportunistically capture
  the block as it streams through the switch.
* :meth:`try_intercept` — a READ worm arrives: probe the cache; on a hit
  return the data and the time at which the fabricated reply's header can
  start (tag check + data-array streaming); on a miss or a policy bypass
  return None and the worm is forwarded untouched.

The engine keeps the per-switch statistics the evaluation section reports
(hits by request, deposits, bypasses, snoop purges).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..cache.states import LineState
from ..network.message import Message
from ..sim.engine import Simulator
from .policy import CachingPolicy
from .switchcache import SwitchCacheGeometry, SwitchCacheSRAM

#: hoisted member: deposits always install clean shared copies
_SHARED = LineState.SHARED


class CaesarEngine:
    """Cache engine embedded in one switch."""

    def __init__(
        self,
        sim: Simulator,
        switch_id: Tuple[int, int],
        geometry: SwitchCacheGeometry,
        policy: Optional[CachingPolicy] = None,
    ) -> None:
        self.sim = sim
        self._tracer = sim.tracer  # installed before construction
        self.switch_id = switch_id
        self.stage = switch_id[0]
        self.geo = geometry
        self.policy = policy if policy is not None else CachingPolicy()
        self.sram = SwitchCacheSRAM(sim, geometry, name=f"sc{switch_id}")
        self._enabled = self.policy.stage_enabled(self.stage)
        # same tracer track as the owning switch (see Switch.trace_track)
        self.trace_track = f"switch{switch_id[0]}.{switch_id[1]}"
        # hot-path hoists: policy thresholds and SRAM geometry are fixed
        # after construction, so the fabric hooks below read them (and the
        # SRAM's ports/array methods) without chasing attribute chains.
        # The hooks inline Timeline.reserve's grant arithmetic — kept in
        # lockstep with repro.sim.resource.Timeline — because a worm
        # passes a switch engine once per hop and the nested calls
        # dominate the engine's cost when tracing is off.
        self._bypass_threshold = self.policy.bypass_threshold
        self._deposit_threshold = self.policy.deposit_threshold
        sram = self.sram
        self._tag_port = sram.tag_port
        self._snoop_port = sram.snoop_port
        self._data_ports = sram.data_ports
        self._tag_cycles = sram._tag_cycles
        self._data_cycles = sram._data_cycles
        self._block_size = sram._block_size
        self._bank_mask = sram._bank_mask
        self._lookup_data = sram.array.lookup_data
        self._insert = sram.array.insert
        self._invalidate = sram.array.invalidate
        # statistics
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        self.bypasses = 0
        self.deposits = 0
        self.deposit_skips = 0
        self.snoops = 0
        self.purges = 0

    # ------------------------------------------------------------------
    # fabric hooks
    # ------------------------------------------------------------------
    def snoop(self, msg: Message, now: int = -1) -> None:
        """INV passing through: purge a matching block.  Never skipped."""
        self.snoops += 1
        # inlined SwitchCacheSRAM.snoop_invalidate (same grants, stats)
        port = self._snoop_port
        tag_cycles = self._tag_cycles
        if now < 0:
            now = self.sim.now
        start = port._free_at
        if start < now:
            start = now
        port._free_at = start + tag_cycles
        port.busy_cycles += tag_cycles
        port.reservations += 1
        port.queued_cycles += start - now
        if self._invalidate(msg.addr) is not None:
            # valid-bit clear costs one extra tag-port cycle
            start = port._free_at  # just advanced past now: no clamp
            port._free_at = start + tag_cycles
            port.busy_cycles += tag_cycles
            port.reservations += 1
            port.queued_cycles += start - now
            self.purges += 1
            tracer = self._tracer
            if tracer is not None:
                tracer.instant(
                    self.trace_track, "sc_purge", now, {"addr": msg.addr}
                )

    def try_deposit(self, msg: Message, now: int = -1) -> bool:
        """DATA_S passing through: capture the block unless the bank is busy."""
        if not self._enabled:
            return False
        addr = msg.addr
        if now < 0:
            now = self.sim.now
        port = self._data_ports[(addr // self._block_size) & self._bank_mask]
        # policy.should_deposit(data_backlog) with the max(0, ...) folded in
        if port._free_at - now > self._deposit_threshold:
            self.deposit_skips += 1
            return False
        # inlined SwitchCacheSRAM.write: tag update, then the full-block
        # data-bank occupancy starting no earlier than the tag grant
        tag_port = self._tag_port
        tag_cycles = self._tag_cycles
        start = tag_port._free_at
        if start < now:
            start = now
        tag_port._free_at = start + tag_cycles
        tag_port.busy_cycles += tag_cycles
        tag_port.reservations += 1
        tag_port.queued_cycles += start - now
        tag_done = start + tag_cycles
        data_cycles = self._data_cycles
        dstart = port._free_at
        if dstart < tag_done:
            dstart = tag_done
        port._free_at = dstart + data_cycles
        port.busy_cycles += data_cycles
        port.reservations += 1
        port.queued_cycles += dstart - tag_done
        victim = self._insert(addr, _SHARED, msg.data)
        self.deposits += 1
        tracer = self._tracer
        if tracer is not None:
            tracer.instant(
                self.trace_track, "sc_deposit", now, {"addr": addr}
            )
            if victim is not None:
                tracer.instant(
                    self.trace_track, "sc_evict", now, {"addr": victim[0]}
                )
        return True

    def try_intercept(
        self, msg: Message, now: int = -1
    ) -> Optional[Tuple[int, int]]:
        """READ arriving: probe; return (data, reply_ready_time) on a hit."""
        if not self._enabled:
            return None
        if now < 0:
            now = self.sim.now
        tag_port = self._tag_port
        # policy.should_check(tag_backlog) with the max(0, ...) folded in
        if tag_port._free_at - now > self._bypass_threshold:
            self.bypasses += 1
            tracer = self._tracer
            if tracer is not None:
                tracer.instant(
                    self.trace_track, "sc_bypass", now, {"addr": msg.addr}
                )
            return None
        self.lookups += 1
        # inlined SwitchCacheSRAM.read: tag check, then (on a hit) the
        # block streams through the addressed data bank
        tag_cycles = self._tag_cycles
        start = tag_port._free_at
        if start < now:
            start = now
        tag_port._free_at = start + tag_cycles
        tag_port.busy_cycles += tag_cycles
        tag_port.reservations += 1
        tag_port.queued_cycles += start - now
        addr = msg.addr
        data = self._lookup_data(addr)
        done = tag_done = start + tag_cycles
        if data is not None:
            port = self._data_ports[
                (addr // self._block_size) & self._bank_mask
            ]
            data_cycles = self._data_cycles
            dstart = port._free_at
            if dstart < tag_done:
                dstart = tag_done
            port._free_at = dstart + data_cycles
            port.busy_cycles += data_cycles
            port.reservations += 1
            port.queued_cycles += dstart - tag_done
            done = dstart + data_cycles
        tracer = self._tracer
        if tracer is not None:
            tracer.instant(
                self.trace_track, "sc_probe", now,
                {"addr": addr, "hit": data is not None},
            )
        if data is None:
            self.misses += 1
            return None
        self.hits += 1
        return data, done

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def array(self):
        return self.sram.array

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def occupancy(self) -> int:
        """Valid blocks currently resident in this switch's cache."""
        return self.sram.occupancy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CaesarEngine sw={self.switch_id} {self.geo.describe()} "
            f"hits={self.hits}/{self.lookups}>"
        )
