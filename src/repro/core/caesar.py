"""CAESAR: the CAche Embedded Switch ARchitecture engine.

One :class:`CaesarEngine` lives inside each switch of a switch-cache
interconnect.  The fabric calls exactly three hooks as worm headers arrive:

* :meth:`snoop` — an INV worm passes: purge a matching block (second tag
  port, never skipped, never delays the worm).
* :meth:`try_deposit` — a DATA_S worm passes: opportunistically capture
  the block as it streams through the switch.
* :meth:`try_intercept` — a READ worm arrives: probe the cache; on a hit
  return the data and the time at which the fabricated reply's header can
  start (tag check + data-array streaming); on a miss or a policy bypass
  return None and the worm is forwarded untouched.

The engine keeps the per-switch statistics the evaluation section reports
(hits by request, deposits, bypasses, snoop purges).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..network.message import Message
from ..sim.engine import Simulator
from .policy import CachingPolicy
from .switchcache import SwitchCacheGeometry, SwitchCacheSRAM


class CaesarEngine:
    """Cache engine embedded in one switch."""

    def __init__(
        self,
        sim: Simulator,
        switch_id: Tuple[int, int],
        geometry: SwitchCacheGeometry,
        policy: Optional[CachingPolicy] = None,
    ) -> None:
        self.sim = sim
        self._tracer = sim.tracer  # installed before construction
        self.switch_id = switch_id
        self.stage = switch_id[0]
        self.geo = geometry
        self.policy = policy if policy is not None else CachingPolicy()
        self.sram = SwitchCacheSRAM(sim, geometry, name=f"sc{switch_id}")
        self._enabled = self.policy.stage_enabled(self.stage)
        # same tracer track as the owning switch (see Switch.trace_track)
        self.trace_track = f"switch{switch_id[0]}.{switch_id[1]}"
        # statistics
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        self.bypasses = 0
        self.deposits = 0
        self.deposit_skips = 0
        self.snoops = 0
        self.purges = 0

    # ------------------------------------------------------------------
    # fabric hooks
    # ------------------------------------------------------------------
    def snoop(self, msg: Message) -> None:
        """INV passing through: purge a matching block.  Never skipped."""
        self.snoops += 1
        purged, _done = self.sram.snoop_invalidate(msg.addr)
        if purged:
            self.purges += 1
            tracer = self._tracer
            if tracer is not None:
                tracer.instant(
                    self.trace_track, "sc_purge", self.sim.now,
                    {"addr": msg.addr},
                )

    def try_deposit(self, msg: Message) -> bool:
        """DATA_S passing through: capture the block unless the bank is busy."""
        if not self._enabled:
            return False
        if not self.policy.should_deposit(self.sram.data_backlog(msg.addr)):
            self.deposit_skips += 1
            return False
        _done, victim_addr = self.sram.write(msg.addr, msg.data)
        self.deposits += 1
        tracer = self._tracer
        if tracer is not None:
            now = self.sim.now
            tracer.instant(
                self.trace_track, "sc_deposit", now, {"addr": msg.addr}
            )
            if victim_addr is not None:
                tracer.instant(
                    self.trace_track, "sc_evict", now, {"addr": victim_addr}
                )
        return True

    def try_intercept(self, msg: Message) -> Optional[Tuple[int, int]]:
        """READ arriving: probe; return (data, reply_ready_time) on a hit."""
        if not self._enabled:
            return None
        if not self.policy.should_check(self.sram.tag_backlog()):
            self.bypasses += 1
            tracer = self._tracer
            if tracer is not None:
                tracer.instant(
                    self.trace_track, "sc_bypass", self.sim.now,
                    {"addr": msg.addr},
                )
            return None
        self.lookups += 1
        data, done = self.sram.read(msg.addr)
        tracer = self._tracer
        if tracer is not None:
            tracer.instant(
                self.trace_track, "sc_probe", self.sim.now,
                {"addr": msg.addr, "hit": data is not None},
            )
        if data is None:
            self.misses += 1
            return None
        self.hits += 1
        return data, done

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def array(self):
        return self.sram.array

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def occupancy(self) -> int:
        """Valid blocks currently resident in this switch's cache."""
        return self.sram.occupancy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CaesarEngine sw={self.switch_id} {self.geo.describe()} "
            f"hits={self.hits}/{self.lookups}>"
        )
