"""Switch-cache caching policy.

The paper's policy is simple and conservative: a switch cache holds only
**clean shared** data (DATA_S replies), intercepts only read (GETS)
requests, and purges on every invalidation that passes.  The policy object
adds the knobs the evaluation section sweeps, plus two robustness knobs
from the CAESAR design discussion:

* ``bypass_threshold`` — a read request is forwarded *unchecked* when the
  regular tag port is backed up beyond this many cycles, so a congested
  cache engine can never throttle crossbar throughput (the switch keeps
  its 1-flit-per-cycle service rate).
* ``deposit_threshold`` — a passing reply's block is not deposited when
  the target data bank is backed up beyond this many cycles; deposits are
  pure opportunism and must never delay the worm.

Snoops are never skipped: correctness depends on them.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple


class CachingPolicy:
    """Decision rules for one switch's cache engine."""

    def __init__(
        self,
        bypass_threshold: int = 4,
        deposit_threshold: int = 16,
        enabled_stages: Optional[Set[int]] = None,
    ) -> None:
        self.bypass_threshold = bypass_threshold
        self.deposit_threshold = deposit_threshold
        self.enabled_stages = enabled_stages  # None = every stage caches

    def stage_enabled(self, stage: int) -> bool:
        return self.enabled_stages is None or stage in self.enabled_stages

    def should_check(self, tag_backlog: int) -> bool:
        """Whether a read request should probe the cache or bypass it."""
        return tag_backlog <= self.bypass_threshold

    def should_deposit(self, data_backlog: int) -> bool:
        """Whether a passing DATA_S reply should be captured."""
        return data_backlog <= self.deposit_threshold
