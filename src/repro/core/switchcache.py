"""CAESAR switch-cache SRAM: ports, banks, output width, access delays.

This models the cache subsystem embedded in a switch (paper Section 3.3 and
Table 1).  Architectural features reproduced:

* **Dual-ported tag array** (like the Pentium's on-chip cache [1]): snoop
  requests and regular requests probe tags concurrently on independent
  ports.
* **Single data array** (base CAESAR) or **2-way interleaved banks**
  (CAESAR+, like the R10000/Pentium-Pro L1s [21][28]): odd/even blocks map
  to different banks, so two regular requests to different banks can
  overlap.
* **Configurable output width**: a data array with a ``width``-bit output
  delivers ``width`` bits per cycle, so streaming one block takes
  ``block_size*8 / width`` cycles (e.g. 32-byte blocks through a 64-bit
  port: 4 cycles — the Pentium-Pro example in the paper).

The cache operates at the switch clock (200 MHz), so all delays are in
system cycles.  Tag access is one cycle.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..cache.array import make_cache_array
from ..cache.states import LineState
from ..errors import ConfigError
from ..sim.engine import Simulator
from ..sim.resource import Timeline


class SwitchCacheGeometry:
    """Static description of one switch cache's organization."""

    def __init__(
        self,
        size: int = 2048,
        block_size: int = 64,
        assoc: int = 2,
        banks: int = 1,
        output_width_bits: int = 64,
        tag_cycles: int = 1,
        replacement: str = "lru",
    ) -> None:
        if banks not in (1, 2, 4):
            raise ConfigError(f"banks must be 1, 2 or 4, got {banks}")
        if output_width_bits <= 0 or output_width_bits % 8:
            raise ConfigError(f"bad output width {output_width_bits}")
        if (block_size * 8) % output_width_bits:
            raise ConfigError(
                f"block ({block_size}B) must be a multiple of the "
                f"output width ({output_width_bits}b)"
            )
        self.size = size
        self.block_size = block_size
        self.assoc = assoc
        self.banks = banks
        self.output_width_bits = output_width_bits
        self.tag_cycles = tag_cycles
        self.replacement = replacement

    @property
    def data_cycles(self) -> int:
        """Cycles to stream one block through the data-array output port."""
        return (self.block_size * 8) // self.output_width_bits

    def bank_of(self, addr: int) -> int:
        """Interleaved bank selection by low block-address bits (CAESAR+)."""
        return (addr // self.block_size) % self.banks

    def describe(self) -> str:
        kind = "CAESAR+" if self.banks > 1 else "CAESAR"
        return (
            f"{kind} {self.size}B {self.assoc}-way, {self.banks} bank(s), "
            f"{self.output_width_bits}-bit output, "
            f"tag {self.tag_cycles} cyc, data {self.data_cycles} cyc/block"
        )


class SwitchCacheSRAM:
    """Timed SRAM: tag ports, banked data arrays, and the cache contents."""

    def __init__(self, sim: Simulator, geometry: SwitchCacheGeometry, name: str = "") -> None:
        self.sim = sim
        self.geo = geometry
        self.array = make_cache_array(
            geometry.size, geometry.block_size, geometry.assoc, name=name,
            replacement=geometry.replacement,
        )
        # dual-ported tags: one port for regular requests, one for snoops
        self.tag_port = Timeline(sim, f"{name}.tag")
        self.snoop_port = Timeline(sim, f"{name}.snooptag")
        self.data_ports = [
            Timeline(sim, f"{name}.data{b}") for b in range(geometry.banks)
        ]
        # geometry is immutable after construction; cache the per-access
        # quantities (banks is 1/2/4, so bank selection is a mask)
        self._tag_cycles = geometry.tag_cycles
        self._data_cycles = geometry.data_cycles
        self._block_size = geometry.block_size
        self._bank_mask = geometry.banks - 1

    # ------------------------------------------------------------------
    # timed operations — each returns completion time(s)
    # ------------------------------------------------------------------
    def tag_backlog(self) -> int:
        """Cycles until the regular tag port is free (0 when idle)."""
        return max(0, self.tag_port.free_at() - self.sim.now)

    def data_backlog(self, addr: int) -> int:
        port = self.data_ports[(addr // self._block_size) & self._bank_mask]
        return max(0, port.free_at() - self.sim.now)

    def read(self, addr: int) -> Tuple[Optional[int], int]:
        """Regular read lookup.

        Returns ``(data_or_None, done_time)``.  A hit streams the block
        through the data bank after the tag check; a miss costs only the
        tag check.
        """
        tag_cycles = self._tag_cycles
        tag_done = self.tag_port.reserve(tag_cycles) + tag_cycles
        data = self.array.lookup_data(addr)
        if data is None:
            return None, tag_done
        port = self.data_ports[(addr // self._block_size) & self._bank_mask]
        data_cycles = self._data_cycles
        data_start = port.reserve(data_cycles, earliest=tag_done)
        return data, data_start + data_cycles

    def write(self, addr: int, data: int) -> Tuple[int, Optional[int]]:
        """Deposit a block (tag update + full-block data write).

        Returns ``(done_time, victim_addr_or_None)`` — the victim is the
        block LRU-displaced by this deposit, if the set was full.
        """
        tag_cycles = self._tag_cycles
        tag_done = self.tag_port.reserve(tag_cycles) + tag_cycles
        port = self.data_ports[(addr // self._block_size) & self._bank_mask]
        data_cycles = self._data_cycles
        data_start = port.reserve(data_cycles, earliest=tag_done)
        victim = self.array.insert(addr, LineState.SHARED, data)
        victim_addr = victim[0] if victim is not None else None
        return data_start + data_cycles, victim_addr

    def snoop_invalidate(self, addr: int) -> Tuple[bool, int]:
        """Snoop-port probe + valid-bit clear on hit.

        Returns ``(purged, done_time)``.  Uses the second tag port so it
        never contends with regular requests; clearing a valid bit costs
        one extra tag-port cycle (no data-array access needed).
        """
        start = self.snoop_port.reserve(self.geo.tag_cycles)
        purged = self.array.invalidate(addr) is not None
        done = start + self.geo.tag_cycles
        if purged:
            extra = self.snoop_port.reserve(self.geo.tag_cycles)
            done = extra + self.geo.tag_cycles
        return purged, done

    # convenience for inspection
    @property
    def occupancy(self) -> int:
        return self.array.occupancy()
