"""Exception hierarchy for the repro package.

Every error raised intentionally by the simulator derives from
:class:`ReproError`, so callers can catch simulator problems without
swallowing genuine programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An invalid or inconsistent system configuration was supplied."""


class SimulationError(ReproError):
    """The simulation reached an internal inconsistency.

    These indicate bugs in component models (e.g. a protocol state machine
    receiving a message it can never legally receive), not user error.
    """


class ProtocolError(SimulationError):
    """A coherence-protocol invariant was violated."""


class NetworkError(SimulationError):
    """A network-model invariant was violated (routing, flow control)."""


class DeadlockError(SimulationError):
    """The event queue drained while components still had pending work."""
