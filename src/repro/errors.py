"""Exception hierarchy for the repro package.

Every error raised intentionally by the simulator derives from
:class:`ReproError`, so callers can catch simulator problems without
swallowing genuine programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An invalid or inconsistent system configuration was supplied."""


class SimulationError(ReproError):
    """The simulation reached an internal inconsistency.

    These indicate bugs in component models (e.g. a protocol state machine
    receiving a message it can never legally receive), not user error.
    """


class ProtocolError(SimulationError):
    """A coherence-protocol invariant was violated.

    Raise sites attach the node id, block address, and directory/cache
    state involved so sanitizer and test reports carry enough context to
    localize the failing transition without a debugger.
    """

    def __init__(
        self,
        message: str,
        *,
        node: "int | None" = None,
        addr: "int | None" = None,
        state: "object | None" = None,
    ) -> None:
        context = []
        if node is not None:
            context.append(f"node={node}")
        if addr is not None:
            context.append(f"addr={addr:#x}")
        if state is not None:
            context.append(f"state={getattr(state, 'name', state)}")
        if context:
            message = f"{message} [{' '.join(context)}]"
        super().__init__(message)
        self.node = node
        self.addr = addr
        self.state = state


class NetworkError(SimulationError):
    """A network-model invariant was violated (routing, flow control)."""


class DeadlockError(SimulationError):
    """The event queue drained while components still had pending work."""


class SanitizerError(SimulationError):
    """The runtime sanitizer (SCSan) detected an invariant violation."""
