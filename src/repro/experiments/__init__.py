"""Per-table/figure experiment harness (see DESIGN.md Sec. 4)."""

from .common import APP_ORDER, APP_SCALES, ExperimentResult, RunRecord, clear_cache, make_app, run
from .registry import EXPERIMENTS, run_experiment

__all__ = [
    "APP_ORDER",
    "APP_SCALES",
    "ExperimentResult",
    "RunRecord",
    "clear_cache",
    "make_app",
    "run",
    "EXPERIMENTS",
    "run_experiment",
]
