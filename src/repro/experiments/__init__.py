"""Per-table/figure experiment harness (see DESIGN.md Sec. 4)."""

from .common import (
    APP_ORDER,
    APP_SCALES,
    ExperimentResult,
    RunRecord,
    clear_cache,
    config_key,
    execute,
    make_app,
    run,
    run_key,
)
from .parallel import PLANS, RunSpec, plan, prewarm
from .registry import EXPERIMENTS, run_experiment

__all__ = [
    "APP_ORDER",
    "APP_SCALES",
    "ExperimentResult",
    "RunRecord",
    "clear_cache",
    "config_key",
    "execute",
    "make_app",
    "run",
    "run_key",
    "PLANS",
    "RunSpec",
    "plan",
    "prewarm",
    "EXPERIMENTS",
    "run_experiment",
]
