"""Ablation experiments beyond the paper's reported figures.

These probe the design choices DESIGN.md calls out:

* A1 — *stage placement*: cache only at one MIN stage at a time.  Where
  in the tree is the caching opportunity?
* A2 — *robustness thresholds*: the busy-bypass and deposit-skip
  policies that keep CAESAR off the crossbar's critical path.
* A3 — *associativity*: direct-mapped vs 2/4-way switch caches.
* A4 — *system size scaling*: the benefit as the machine grows (deeper
  BMIN, longer remote paths — the paper's scalability argument).
"""

from __future__ import annotations

from typing import Dict

from ..stats.report import format_series, format_table
from ..system.config import KB
from ..system.presets import base_config, switch_cache_config
from .common import APP_ORDER, ExperimentResult, run

#: apps with enough sharing to make ablations meaningful
SHARING_APPS = ("FWA", "GS", "GE", "MM")


def exp_a1(scale: str = "quick") -> ExperimentResult:
    """Cache at a single MIN stage at a time (plus all stages)."""
    rows = []
    data: Dict = {}
    placements = [({s}, f"stage {s}") for s in range(4)] + [(None, "all")]
    for name in SHARING_APPS:
        base = run(name, scale, base_config())
        for stages, label in placements:
            record = run(
                name, scale,
                switch_cache_config(size=2 * KB, stages=stages),
            )
            improvement = 1 - record.exec_time / base.exec_time
            hits = record.stats.read_counts["switch"]
            data[(name, label)] = {"improvement": improvement, "hits": hits}
            rows.append((name, label, f"{improvement:.1%}", hits))
    text = format_table(
        ("app", "caching stages", "exec improvement", "switch hits"),
        rows,
        title="A1: switch-cache placement by MIN stage",
    )
    return ExperimentResult("A1", "Stage placement ablation", text, data)


def exp_a2(scale: str = "quick") -> ExperimentResult:
    """Busy-bypass / deposit-skip thresholds (0 = maximally defensive)."""
    rows = []
    data: Dict = {}
    settings = [(0, 0), (4, 16), (64, 256)]
    for name in SHARING_APPS:
        base = run(name, scale, base_config())
        for bypass, deposit in settings:
            config = switch_cache_config(size=2 * KB)
            config = config.replaced(
                switch_cache_bypass_threshold=bypass,
                switch_cache_deposit_threshold=deposit,
            )
            record = run(name, scale, config)
            improvement = 1 - record.exec_time / base.exec_time
            data[(name, bypass, deposit)] = improvement
            rows.append(
                (
                    name,
                    f"bypass<={bypass}, deposit<={deposit}",
                    f"{improvement:.1%}",
                    record.switch_totals["bypasses"],
                    record.switch_totals["deposit_skips"],
                )
            )
    text = format_table(
        ("app", "policy", "exec improvement", "bypasses", "deposit skips"),
        rows,
        title="A2: CAESAR robustness-policy thresholds",
    )
    return ExperimentResult("A2", "Policy threshold ablation", text, data)


def exp_a3(scale: str = "quick") -> ExperimentResult:
    """Switch-cache associativity (conflict sensitivity)."""
    rows = []
    data: Dict = {}
    for name in SHARING_APPS:
        base = run(name, scale, base_config())
        for assoc in (1, 2, 4):
            record = run(
                name, scale, switch_cache_config(size=1 * KB, assoc=assoc)
            )
            improvement = 1 - record.exec_time / base.exec_time
            data[(name, assoc)] = improvement
            rows.append(
                (name, f"{assoc}-way", f"{improvement:.1%}",
                 record.stats.read_counts["switch"])
            )
    text = format_table(
        ("app", "associativity", "exec improvement", "switch hits"),
        rows,
        title="A3: switch-cache associativity (1KB per switch)",
    )
    return ExperimentResult("A3", "Associativity ablation", text, data)


def exp_a4(scale: str = "quick") -> ExperimentResult:
    """Benefit vs machine size (weak scaling: the GE matrix grows with N).

    Deeper BMINs mean longer remote paths and more switches per path for
    a reply to seed — the paper's scalability argument for in-network
    caching.  Problem size is scaled with the machine so per-processor
    work stays constant.
    """
    rows_per_proc = 2 if scale == "quick" else 4
    lines = []
    data: Dict = {}
    sizes = (4, 8, 16, 32)
    improvements = []
    remote_fracs = []
    for n in sizes:
        ge_n = rows_per_proc * n
        overrides = {"n": ge_n}
        base_stats = run(
            "GE", scale, base_config(num_nodes=n), app_overrides=overrides
        ).stats
        sc_stats = run(
            "GE", scale, switch_cache_config(size=2 * KB, num_nodes=n),
            app_overrides=overrides,
        ).stats
        improvement = 1 - sc_stats.exec_time / base_stats.exec_time
        total = base_stats.total_reads()
        remote = base_stats.remote_reads()
        improvements.append(improvement)
        remote_fracs.append(remote / total if total else 0.0)
        data[n] = {"improvement": improvement,
                   "remote_fraction": remote_fracs[-1],
                   "ge_n": ge_n}
    lines.append(format_series("exec improvement", list(sizes), improvements))
    lines.append(format_series("remote read fraction (base)", list(sizes),
                               remote_fracs))
    text = (
        f"A4: GE benefit vs machine size (weak scaling, n = {rows_per_proc}*N)\n"
        + "\n".join(lines)
    )
    return ExperimentResult("A4", "System size scaling", text, data)


def exp_a5(scale: str = "quick") -> ExperimentResult:
    """MSI (the paper's protocol) vs the MESI extension.

    MESI removes upgrade transactions for read-modify-write private data
    but costs a recall whenever a second reader arrives — for the paper's
    heavily read-shared kernels that trade-off can go either way, and the
    FFT/SOR private-heavy kernels should favour MESI.
    """
    rows = []
    data: Dict = {}
    for name in APP_ORDER:
        msi_base = run(name, scale, base_config())
        mesi_base = run(name, scale, base_config(protocol="mesi"))
        msi_sc = run(name, scale, switch_cache_config(size=2 * KB))
        mesi_sc = run(
            name, scale, switch_cache_config(size=2 * KB, protocol="mesi")
        )
        data[name] = {
            "base": mesi_base.exec_time / msi_base.exec_time,
            "sc": mesi_sc.exec_time / msi_sc.exec_time,
        }
        rows.append(
            (
                name,
                msi_base.exec_time,
                f"{data[name]['base']:.3f}",
                f"{data[name]['sc']:.3f}",
                mesi_base.stats.upgrades_completed,
                msi_base.stats.upgrades_completed,
            )
        )
    text = format_table(
        ("app", "MSI base cycles", "MESI/MSI (base)", "MESI/MSI (SC)",
         "upgrades (MESI)", "upgrades (MSI)"),
        rows,
        title="A5: MSI vs MESI (execution time ratio, lower favours MESI)",
    )
    return ExperimentResult("A5", "MSI vs MESI", text, data)


def exp_a6(scale: str = "quick") -> ExperimentResult:
    """Cluster organization: 16 processors as 16x1, 8x2, and 4x4 nodes.

    This is the paper's CC-NUMA context made explicit: with bus-based
    clusters a per-node network cache finally has multiple processors to
    serve, yet the switch caches — shared by *every* processor whose path
    crosses them — retain the advantage.  L2s are shrunk so capacity
    misses exist for the network cache to catch.
    """
    mm_n = 24 if scale == "quick" else 48
    shapes = ((16, 1), (8, 2), (4, 4))
    rows = []
    data: Dict = {}
    # small L2s so the streamed B matrix causes capacity re-fetches —
    # the miss class network caches exist to serve [16][29]
    small = dict(l1_size=512, l2_size=2 * KB)
    overrides = {"n": mm_n}
    for nodes, ppn in shapes:
        base = run(
            "MM", scale,
            base_config(num_nodes=nodes, procs_per_node=ppn, **small),
            app_overrides=overrides,
        ).stats
        nc = run(
            "MM", scale,
            base_config(num_nodes=nodes, procs_per_node=ppn,
                        netcache_size=32 * KB, **small),
            app_overrides=overrides,
        ).stats
        sc = run(
            "MM", scale,
            switch_cache_config(size=2 * KB, num_nodes=nodes,
                                procs_per_node=ppn, **small),
            app_overrides=overrides,
        ).stats
        data[(nodes, ppn)] = {
            "nc": nc.exec_time / base.exec_time,
            "sc": sc.exec_time / base.exec_time,
            "nc_hits": nc.read_counts["netcache"],
            "cluster_reads": base.read_counts["cluster"],
        }
        rows.append(
            (
                f"{nodes}x{ppn}",
                base.exec_time,
                f"{nc.exec_time / base.exec_time:.3f}",
                f"{sc.exec_time / base.exec_time:.3f}",
                nc.read_counts["netcache"],
                base.read_counts["cluster"],
            )
        )
    text = format_table(
        ("nodes x procs", "base cycles", "NC (norm)", "SC (norm)",
         "NC hits", "bus sibling reads"),
        rows,
        title="A6: cluster organization (MM, 16 processors total)",
    )
    return ExperimentResult("A6", "Cluster organization", text, data)


def exp_a7(scale: str = "quick") -> ExperimentResult:
    """Switch-cache replacement policy: LRU vs FIFO vs random.

    The paper's CAESAR uses LRU within a set; FIFO needs no
    hit-path update of replacement state (a simpler SRAM), and random is
    the cheapest of all.  With small caches and bursty producer-consumer
    reuse the policies should be close — which is itself a useful design
    data point.
    """
    rows = []
    data: Dict = {}
    for name in SHARING_APPS:
        base = run(name, scale, base_config())
        for policy in ("lru", "fifo", "random"):
            config = switch_cache_config(size=1 * KB)
            config = config.replaced(switch_cache_replacement=policy)
            record = run(name, scale, config)
            improvement = 1 - record.exec_time / base.exec_time
            data[(name, policy)] = improvement
            rows.append(
                (name, policy, f"{improvement:.1%}",
                 record.stats.read_counts["switch"])
            )
    text = format_table(
        ("app", "replacement", "exec improvement", "switch hits"),
        rows,
        title="A7: switch-cache replacement policy (1KB per switch)",
    )
    return ExperimentResult("A7", "Replacement policy", text, data)


def exp_a8(scale: str = "quick") -> ExperimentResult:
    """Network-model validation: message-level fabric vs flit reference.

    Runs identical microbenchmark traffic on the production
    message-granularity fabric and on the flit-accurate wormhole
    reference (finite VCs, credit flow control) and reports both
    latencies — the evidence behind DESIGN.md's wormhole substitution.
    """
    from ..network.fabric import Fabric
    from ..network.flitref import FlitNetwork
    from ..network.message import Message, MsgKind, flits_for
    from ..network.topology import BminTopology
    from ..sim.engine import Simulator

    def run_traffic(model_cls, traffic):
        sim = Simulator()
        network = model_cls(sim, BminTopology(16))
        for node in range(16):
            network.attach_node(node, lambda m: None)
        msgs = []
        for src, dst, kind in traffic:
            msg = Message(kind, src, dst, 0x40, flits_for(kind, 64), data=0)
            msgs.append(msg)
            network.inject(msg)
        sim.run()
        return msgs

    rows = []
    data: Dict = {}
    cases = [
        ("read 0->1", [(0, 1, MsgKind.READ)]),
        ("read 0->15", [(0, 15, MsgKind.READ)]),
        ("data 0->1", [(0, 1, MsgKind.DATA_S)]),
        ("data 0->15", [(0, 15, MsgKind.DATA_S)]),
        ("hotspot 15->1", [(s, 0, MsgKind.DATA_S) for s in range(1, 16)]),
    ]
    for label, traffic in cases:
        fast = run_traffic(Fabric, traffic)
        ref = run_traffic(FlitNetwork, traffic)
        fast_t = max(m.delivered_at - m.created_at for m in fast)
        ref_t = max(m.delivered_at - m.created_at for m in ref)
        data[label] = {"fabric": fast_t, "flit_ref": ref_t}
        rows.append((label, fast_t, ref_t, f"{fast_t / ref_t:.3f}"))
    # end-to-end: a full application run on a 4-node base machine
    from ..system.config import SystemConfig

    for label, sc_size in (("GE n=16 end-to-end", 0),
                            ("GE n=16 + 1KB switch caches", 1024)):
        exec_times = {}
        for model in ("message", "flit"):
            record = run("GE", scale, SystemConfig(
                num_nodes=4, l1_size=1024, l2_size=4096,
                switch_cache_size=sc_size, network_model=model,
            ), app_overrides={"n": 16})
            exec_times[model] = record.exec_time
        data[label] = {
            "fabric": exec_times["message"], "flit_ref": exec_times["flit"],
        }
        rows.append((
            label, exec_times["message"], exec_times["flit"],
            f"{exec_times['message'] / exec_times['flit']:.3f}",
        ))
    text = format_table(
        ("microbenchmark", "fabric (cyc)", "flit reference (cyc)", "ratio"),
        rows,
        title="A8: message-level fabric vs flit-level wormhole reference",
    )
    return ExperimentResult("A8", "Network model validation", text, data)
