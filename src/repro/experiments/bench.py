"""Engine perf-trajectory harness: ``repro-experiments bench``.

Runs a pinned set of canonical workloads — one synthetic kernel and one
paper application, each under the base and the switch-cache system — on
**both** event engines (the reference binary heap and the default
calendar queue), and records, per workload and engine:

* ``wall_s``        — best-of-``repeat`` wall-clock seconds,
* ``events_per_s``  — simulator events fired per wall-clock second,
* ``peak_pending``  — high-water event-queue depth,

plus the engine-independent ``cycles`` (simulated execution time) and
``events`` (events fired), which the harness asserts are **identical**
across engines: a bench run doubles as an end-to-end differential test.

Since schema 2 each workload also carries a ``kernels`` A/B section
measuring the **state kernels** on the default engine: the integer-coded
hot state (bitmask directories, struct-of-arrays cache sets, pooled
worms — DESIGN.md §10) against the ``REPRO_STATE=obj`` object reference
models.  Cycles and events must again be identical — the coded kernels
change how state is stored, never what the machine does.

Since schema 3 each workload additionally carries an ``express`` A/B
section: the fabric's express-transit event fusion (DESIGN.md §12) off
vs on, on the default engine + kernels.  Here **cycles** must be
identical — fusion is a scheduling transformation, never a timing one —
but ``events`` legitimately differ: fused hops never become events, which
is the entire point.  The paired ``express_speedup`` is therefore a
wall-clock ratio (off/on on the same host), not an events/s ratio.  The
engine and kernel sections run with express *off*, so their cross-engine
events-identity assert keeps full strength and their speedup ratios stay
comparable to pre-express baselines.

Since schema 4 the payload also carries a top-level ``ops`` section: a
paired front-end A/B over the full six-app workload set (FWA, GS, GE,
MM, SOR, FFT on the 4-node base system) measuring the compiled
operation streams (``REPRO_OPS=compiled`` — integer-coded op arrays
with stride superops, DESIGN.md §13) against the ``REPRO_OPS=gen``
generator reference.  The compiled front end is bit-identical by
construction, so **both** cycles and events must match across modes —
the strongest identity in the file — and the paired ``ops_speedup`` is
an events/s ratio on the same host.  Engine, kernel and express cells
all run with the compiled front end (the default), so their numbers
stay comparable to schema-3 baselines only through the ratio gates,
never the absolute column.

The result is written to ``BENCH_engine.json`` at the repo root, seeding
the perf trajectory that future optimisation PRs extend.

``--check`` mode (the CI perf-smoke job) compares a fresh run against the
committed baseline.  Absolute wall-clock numbers are machine-dependent,
so the check only uses portable quantities:

* ``cycles``/``events`` must match the baseline exactly (cross-commit
  determinism), and
* the calendar-vs-heap ``speedup``, the coded-vs-obj ``kernel_speedup``
  and the fusion ``express_speedup`` ratios — both sides of each ratio
  measured on the *same* host, so hardware cancels out — must not
  regress by more than the threshold (default 25%).

Runs are always fresh simulations (never served from the run cache) with
SCSan forced off, so the numbers measure the engine, not the harness.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..apps.opstream import OPS_ENV
from ..apps.synthetic import PingPong, SharedReaders
from ..cache.states import STATE_ENV
from ..network.fabric import EXPRESS_ENV
from ..sim.engine import ENGINE_ENV
from ..system.config import SystemConfig
from ..system.machine import Machine
from .common import APP_ORDER, make_app

SCHEMA_VERSION = 4
ENGINES = ("heap", "calendar")
#: state-kernel A/B order: reference first, so ``coded`` is the speedup
STATE_MODELS = ("obj", "coded")
#: express-transit A/B order: reference (fusion off) first
EXPRESS_MODES = ("off", "on")
#: op-stream A/B order: generator reference first
OPS_MODES = ("gen", "compiled")
#: the six-app front-end workload set: full scale on the 4-node base
#: system, where the op streams are long enough that the front end is
#: a visible share of the wall clock
OPS_SCALE = "full"
OPS_NODES = 4
DEFAULT_PATH = "BENCH_engine.json"
DEFAULT_REPEAT = 2
DEFAULT_THRESHOLD = 0.25

#: one pinned workload: (name, config factory, app factory)
Workload = Tuple[str, Callable[[], SystemConfig], Callable[[], Any]]


def _workloads() -> List[Workload]:
    # imported lazily so `repro-experiments list` stays instant
    from ..system.presets import base_config, switch_cache_config

    def synthetic() -> SharedReaders:
        return SharedReaders(nbytes=16 * 1024, rounds=4)

    return [
        ("shared-readers/base", lambda: base_config(16), synthetic),
        ("shared-readers/sc", lambda: switch_cache_config(16), synthetic),
        ("GE/base", lambda: base_config(16), lambda: make_app("GE", "quick")),
        ("GE/sc", lambda: switch_cache_config(16),
         lambda: make_app("GE", "quick")),
        # the paper's motivating regime — one outstanding remote miss at a
        # time, fabric otherwise quiet — is where express transit's
        # quiescent-window fusion does its work; the barrier-storm apps
        # above keep several worms in flight and rarely fuse
        ("ping-pong/sc", lambda: switch_cache_config(16),
         lambda: PingPong(rounds=120, blocks=4)),
    ]


def _run_once(
    config: SystemConfig,
    app_factory: Callable[[], Any],
    engine: str,
    state: str = "coded",
    express: str = "off",
    ops: str = "compiled",
) -> Dict[str, Any]:
    """One fresh, cache-free, sanitizer-free simulation on ``engine``
    with the ``state`` kernel model, ``express`` transit mode (fusion
    off by default, so engine/kernel A/Bs measure one axis) and ``ops``
    front end (compiled op streams by default)."""
    previous = os.environ.get(ENGINE_ENV)
    previous_state = os.environ.get(STATE_ENV)
    previous_express = os.environ.get(EXPRESS_ENV)
    previous_ops = os.environ.get(OPS_ENV)
    os.environ[ENGINE_ENV] = engine
    os.environ[STATE_ENV] = state
    os.environ[EXPRESS_ENV] = express
    os.environ[OPS_ENV] = ops
    try:
        machine = Machine(config, sanitize=False)
        app = app_factory()
        started = time.perf_counter()
        stats = machine.run(app)
        wall = time.perf_counter() - started
    finally:
        for env, saved in (
            (ENGINE_ENV, previous),
            (STATE_ENV, previous_state),
            (EXPRESS_ENV, previous_express),
            (OPS_ENV, previous_ops),
        ):
            if saved is None:
                os.environ.pop(env, None)
            else:
                os.environ[env] = saved
    return {
        "wall_s": wall,
        "cycles": stats.exec_time,
        "events": machine.sim.events_fired,
        "peak_pending": machine.sim.peak_pending,
    }


def _geomean(values: List[float]) -> float:
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values)) if values else 1.0


def run_bench(repeat: int = DEFAULT_REPEAT) -> Dict[str, Any]:
    """Run the pinned workload matrix; returns the BENCH payload."""
    workloads: Dict[str, Any] = {}
    speedups: List[float] = []
    kernel_speedups: List[float] = []
    express_speedups: List[float] = []
    for name, config_factory, app_factory in _workloads():
        config = config_factory()
        entry: Dict[str, Any] = {}
        reference: Optional[Dict[str, Any]] = None

        def measure(
            engine: str, state: str, express: str = "off"
        ) -> Dict[str, Any]:
            """Best-of-repeat on one (engine, state, express) cell.

            Cycles must match the workload's reference cell always;
            events too, except on the express axis, where fusion removes
            events by design (cycles-only identity there).
            """
            nonlocal reference
            runs = [
                _run_once(config, app_factory, engine, state, express)
                for _ in range(repeat)
            ]
            best = min(runs, key=lambda r: float(r["wall_s"]))
            for other in runs:
                if (other["cycles"], other["events"]) != (
                    best["cycles"], best["events"]
                ):
                    raise AssertionError(
                        f"{name}: non-deterministic repeat on "
                        f"{engine}/{state}/express={express}"
                    )
            if reference is None:
                reference = best
                entry["cycles"] = best["cycles"]
                entry["events"] = best["events"]
            elif best["cycles"] != reference["cycles"] or (
                express == "off" and best["events"] != reference["events"]
            ):
                raise AssertionError(
                    f"{name}: {engine}/{state}/express={express} disagrees "
                    f"— simulated {best['cycles']} cycles / "
                    f"{best['events']} events, expected "
                    f"{reference['cycles']} / {reference['events']}"
                )
            wall = float(best["wall_s"])
            return {
                "wall_s": round(wall, 4),
                "events": best["events"],
                "events_per_s": round(best["events"] / wall) if wall else 0,
                "peak_pending": best["peak_pending"],
            }

        for engine in ENGINES:
            cell = measure(engine, "coded")
            cell.pop("events", None)  # identical across engines: top-level
            entry[engine] = cell
        speedup = (
            entry["calendar"]["events_per_s"] / entry["heap"]["events_per_s"]
            if entry["heap"]["events_per_s"] else 0.0
        )
        entry["speedup"] = round(speedup, 3)
        speedups.append(speedup)
        # state-kernel A/B on the default engine: obj reference vs the
        # integer-coded kernels (same cycles/events enforced above)
        kernels = {
            state: measure("calendar", state) for state in STATE_MODELS
        }
        for kernel in kernels.values():
            kernel.pop("peak_pending", None)  # engine property, not state
            kernel.pop("events", None)
        entry["kernels"] = kernels
        kernel_speedup = (
            kernels["coded"]["events_per_s"] / kernels["obj"]["events_per_s"]
            if kernels["obj"]["events_per_s"] else 0.0
        )
        entry["kernel_speedup"] = round(kernel_speedup, 3)
        kernel_speedups.append(kernel_speedup)
        # express-transit A/B on the default engine + kernels: fusion
        # changes the event count (that is the optimisation), so the
        # paired speedup is a same-host wall-clock ratio, and each mode
        # records its own events so the fusion rate is visible
        express = {
            mode: measure("calendar", "coded", express=mode)
            for mode in EXPRESS_MODES
        }
        entry["express"] = express
        off_wall = float(express["off"]["wall_s"])
        on_wall = float(express["on"]["wall_s"])
        express_speedup = off_wall / on_wall if on_wall else 0.0
        entry["express_speedup"] = round(express_speedup, 3)
        express_speedups.append(express_speedup)
        workloads[name] = entry
    ops_workloads, ops_speedups = _run_ops_bench(repeat)
    return {
        "schema": SCHEMA_VERSION,
        "engines": list(ENGINES),
        "state_models": list(STATE_MODELS),
        "express_modes": list(EXPRESS_MODES),
        "ops_modes": list(OPS_MODES),
        "repeat": repeat,
        "workloads": workloads,
        "ops": {
            "scale": OPS_SCALE,
            "nodes": OPS_NODES,
            "workloads": ops_workloads,
        },
        "geomean_speedup": round(_geomean(speedups), 3),
        "geomean_kernel_speedup": round(_geomean(kernel_speedups), 3),
        "geomean_express_speedup": round(_geomean(express_speedups), 3),
        "geomean_ops_speedup": round(_geomean(ops_speedups), 3),
    }


def _run_ops_bench(
    repeat: int,
) -> Tuple[Dict[str, Any], List[float]]:
    """Front-end A/B over the six-app workload set.

    The compiled op streams are bit-identical to the generator path by
    construction, so each app's cycles *and* events must agree across
    the two modes — an A/B run doubles as an end-to-end differential.
    The paired ``ops_speedup`` is an events/s ratio on the same host.
    """
    from ..system.presets import base_config

    config = base_config(OPS_NODES)
    workloads: Dict[str, Any] = {}
    speedups: List[float] = []
    for app_name in APP_ORDER:
        entry: Dict[str, Any] = {}
        reference: Optional[Dict[str, Any]] = None
        for mode in OPS_MODES:
            runs = [
                _run_once(
                    config,
                    lambda: make_app(app_name, OPS_SCALE),
                    "calendar",
                    ops=mode,
                )
                for _ in range(repeat)
            ]
            best = min(runs, key=lambda r: float(r["wall_s"]))
            for other in runs:
                if (other["cycles"], other["events"]) != (
                    best["cycles"], best["events"]
                ):
                    raise AssertionError(
                        f"ops/{app_name}: non-deterministic repeat on "
                        f"REPRO_OPS={mode}"
                    )
            if reference is None:
                reference = best
                entry["cycles"] = best["cycles"]
                entry["events"] = best["events"]
            elif (best["cycles"], best["events"]) != (
                reference["cycles"], reference["events"]
            ):
                raise AssertionError(
                    f"ops/{app_name}: REPRO_OPS={mode} diverged from the "
                    f"generator reference — {best['cycles']} cycles / "
                    f"{best['events']} events, expected "
                    f"{reference['cycles']} / {reference['events']}"
                )
            wall = float(best["wall_s"])
            entry[mode] = {
                "wall_s": round(wall, 4),
                "events_per_s": round(best["events"] / wall) if wall else 0,
            }
        speedup = (
            entry["compiled"]["events_per_s"] / entry["gen"]["events_per_s"]
            if entry["gen"]["events_per_s"] else 0.0
        )
        entry["ops_speedup"] = round(speedup, 3)
        speedups.append(speedup)
        workloads[app_name] = entry
    return workloads, speedups


def check_against(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
) -> List[str]:
    """Portable regression check; returns a list of problems (empty = ok)."""
    problems: List[str] = []
    base_workloads = baseline.get("workloads", {})
    for name, entry in current["workloads"].items():
        base = base_workloads.get(name)
        if base is None:
            problems.append(f"{name}: missing from the committed baseline")
            continue
        if (entry["cycles"], entry["events"]) != (
            base["cycles"], base["events"]
        ):
            problems.append(
                f"{name}: timing drifted from the baseline — "
                f"{entry['cycles']} cycles / {entry['events']} events vs "
                f"baseline {base['cycles']} / {base['events']} "
                f"(update BENCH_engine.json if the model changed on purpose)"
            )
        floor = base["speedup"] * (1.0 - threshold)
        if entry["speedup"] < floor:
            problems.append(
                f"{name}: calendar-vs-heap speedup regressed — "
                f"{entry['speedup']:.2f}x vs baseline "
                f"{base['speedup']:.2f}x (floor {floor:.2f}x)"
            )
        # kernel ratio gate (schema-1 baselines predate the kernels A/B)
        base_kernel = base.get("kernel_speedup")
        if base_kernel is not None and "kernel_speedup" in entry:
            kernel_floor = base_kernel * (1.0 - threshold)
            if entry["kernel_speedup"] < kernel_floor:
                problems.append(
                    f"{name}: coded-vs-obj kernel speedup regressed — "
                    f"{entry['kernel_speedup']:.2f}x vs baseline "
                    f"{base_kernel:.2f}x (floor {kernel_floor:.2f}x)"
                )
        # express ratio gate (schema ≤2 baselines predate the express A/B)
        base_express = base.get("express_speedup")
        if base_express is not None and "express_speedup" in entry:
            express_floor = base_express * (1.0 - threshold)
            if entry["express_speedup"] < express_floor:
                problems.append(
                    f"{name}: express-transit speedup regressed — "
                    f"{entry['express_speedup']:.2f}x vs baseline "
                    f"{base_express:.2f}x (floor {express_floor:.2f}x)"
                )
    for name in base_workloads:
        if name not in current["workloads"]:
            problems.append(f"{name}: in the baseline but no longer benched")
    # ops front-end section (schema ≤3 baselines predate it): per-app
    # timing must match exactly — the compiled front end is bit-identical
    # by contract — and the six-app geomean ratio is gated; per-app
    # ratios ride along ungated because a single app's wall-clock pair
    # is too noisy for a portable floor
    base_ops = baseline.get("ops", {}).get("workloads", {})
    for name, entry in current.get("ops", {}).get("workloads", {}).items():
        base = base_ops.get(name)
        if base is None:
            continue
        if (entry["cycles"], entry["events"]) != (
            base["cycles"], base["events"]
        ):
            problems.append(
                f"ops/{name}: timing drifted from the baseline — "
                f"{entry['cycles']} cycles / {entry['events']} events vs "
                f"baseline {base['cycles']} / {base['events']} "
                f"(update BENCH_engine.json if the model changed on purpose)"
            )
    base_ops_geomean = baseline.get("geomean_ops_speedup")
    if base_ops_geomean is not None and "geomean_ops_speedup" in current:
        ops_floor = base_ops_geomean * (1.0 - threshold)
        if current["geomean_ops_speedup"] < ops_floor:
            problems.append(
                f"ops: compiled-vs-gen six-app geomean regressed — "
                f"{current['geomean_ops_speedup']:.2f}x vs baseline "
                f"{base_ops_geomean:.2f}x (floor {ops_floor:.2f}x)"
            )
    return problems


def format_report(payload: Dict[str, Any]) -> str:
    lines = [
        f"{'workload':20s} {'cycles':>10s} {'events':>10s} "
        f"{'heap ev/s':>10s} {'cal ev/s':>10s} {'speedup':>8s} "
        f"{'peak q':>7s}"
    ]
    for name, entry in payload["workloads"].items():
        lines.append(
            f"{name:20s} {entry['cycles']:>10d} {entry['events']:>10d} "
            f"{entry['heap']['events_per_s']:>10d} "
            f"{entry['calendar']['events_per_s']:>10d} "
            f"{entry['speedup']:>7.2f}x "
            f"{entry['calendar']['peak_pending']:>7d}"
        )
    lines.append(f"geomean speedup: {payload['geomean_speedup']:.2f}x")
    if any("kernels" in e for e in payload["workloads"].values()):
        lines.append("")
        lines.append(
            f"{'state kernels':20s} {'obj ev/s':>10s} {'coded ev/s':>10s} "
            f"{'speedup':>8s}"
        )
        for name, entry in payload["workloads"].items():
            kernels = entry.get("kernels")
            if kernels is None:
                continue
            lines.append(
                f"{name:20s} {kernels['obj']['events_per_s']:>10d} "
                f"{kernels['coded']['events_per_s']:>10d} "
                f"{entry['kernel_speedup']:>7.2f}x"
            )
        lines.append(
            f"geomean kernel speedup: "
            f"{payload['geomean_kernel_speedup']:.2f}x"
        )
    if any("express" in e for e in payload["workloads"].values()):
        lines.append("")
        lines.append(
            f"{'express transit':20s} {'off wall':>10s} {'on wall':>10s} "
            f"{'off ev':>10s} {'on ev':>10s} {'speedup':>8s}"
        )
        for name, entry in payload["workloads"].items():
            express = entry.get("express")
            if express is None:
                continue
            lines.append(
                f"{name:20s} {express['off']['wall_s']:>9.4f}s "
                f"{express['on']['wall_s']:>9.4f}s "
                f"{express['off']['events']:>10d} "
                f"{express['on']['events']:>10d} "
                f"{entry['express_speedup']:>7.2f}x"
            )
        lines.append(
            f"geomean express speedup: "
            f"{payload['geomean_express_speedup']:.2f}x"
        )
    ops = payload.get("ops")
    if ops:
        lines.append("")
        lines.append(
            f"{'op streams':20s} {'cycles':>10s} {'events':>10s} "
            f"{'gen ev/s':>10s} {'cmp ev/s':>10s} {'speedup':>8s}"
        )
        for name, entry in ops["workloads"].items():
            lines.append(
                f"{name:20s} {entry['cycles']:>10d} {entry['events']:>10d} "
                f"{entry['gen']['events_per_s']:>10d} "
                f"{entry['compiled']['events_per_s']:>10d} "
                f"{entry['ops_speedup']:>7.2f}x"
            )
        lines.append(
            f"geomean ops speedup: {payload['geomean_ops_speedup']:.2f}x"
        )
    return "\n".join(lines)


def bench_command(
    output: str = DEFAULT_PATH,
    baseline: str = DEFAULT_PATH,
    check: bool = False,
    repeat: int = DEFAULT_REPEAT,
    threshold: float = DEFAULT_THRESHOLD,
) -> int:
    """CLI driver for ``repro-experiments bench``."""
    payload = run_bench(repeat=repeat)
    print(format_report(payload))
    out_path = Path(output)
    if out_path.is_file():
        # the trajectory (hand-recorded perf history, e.g. the pre-PR
        # seed baseline) rides along across regenerations
        try:
            previous = json.loads(out_path.read_text())
        except ValueError:
            previous = {}
        if "trajectory" in previous:
            payload["trajectory"] = previous["trajectory"]
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
    if not check:
        return 0
    base_path = Path(baseline)
    if not base_path.is_file():
        print(f"no baseline at {base_path}; nothing to check against")
        return 1
    problems = check_against(
        payload, json.loads(base_path.read_text()), threshold
    )
    if problems:
        print("perf-smoke FAILED:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(
        f"perf-smoke ok (speedup within {threshold:.0%} of baseline, "
        f"timing identical)"
    )
    return 0
