"""Command-line entry point: ``repro-experiments``.

Examples::

    repro-experiments list
    repro-experiments run --exp E5
    repro-experiments run --all --scale full --jobs 8
    repro-experiments run --all --no-cache     # force fresh simulations
    repro-experiments run --exp E5 --profile   # wall-clock + cProfile top-N
    repro-experiments cache                    # on-disk cache inventory
    repro-experiments cache --prune            # drop stale/tmp cache files
    repro-experiments bench                    # refresh BENCH_engine.json
    repro-experiments bench --check            # CI perf-smoke comparison

Completed simulations are persisted in the on-disk run cache
(``results/.runcache/``) and reused across invocations; with ``--jobs``
greater than one, the runs the requested experiments need are simulated
in parallel before the (serial) report generation.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time
from typing import List, Optional

from . import parallel, runcache
from .registry import EXPERIMENTS, run_experiment


def _jsonify(value):
    """Make experiment `data` JSON-serializable (tuple keys -> strings)."""
    if isinstance(value, dict):
        return {
            "|".join(map(str, k)) if isinstance(k, tuple) else str(k):
                _jsonify(v)
            for k, v in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables/figures of the Switch Cache paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment ids")
    run_p = sub.add_parser("run", help="run one or all experiments")
    run_p.add_argument("--exp", action="append", help="experiment id (repeatable)")
    run_p.add_argument("--all", action="store_true", help="run every experiment")
    run_p.add_argument(
        "--scale", choices=("quick", "full"), default="quick",
        help="input scale (full = paper-scale, slower)",
    )
    run_p.add_argument(
        "--json", metavar="DIR", default=None,
        help="also write each experiment's raw data as DIR/<id>.json",
    )
    run_p.add_argument(
        "--jobs", type=int, default=os.cpu_count() or 1, metavar="N",
        help="simulate the needed runs over N worker processes first "
             "(default: CPU count; 1 = fully serial)",
    )
    run_p.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write the on-disk run cache",
    )
    run_p.add_argument(
        "--clear-cache", action="store_true",
        help="delete the on-disk run cache before running",
    )
    run_p.add_argument(
        "--sanitize", action="store_true",
        help="run every simulation with SCSan runtime invariant checks "
             "(sets REPRO_SANITIZE=1 so parallel workers inherit it)",
    )
    run_p.add_argument(
        "--profile", action="store_true",
        help="profile the (serial) experiment loop with cProfile and "
             "print the top functions by cumulative time",
    )
    bench_p = sub.add_parser(
        "bench",
        help="engine perf benchmark: pinned workloads on both event "
             "engines, written to BENCH_engine.json",
    )
    bench_p.add_argument(
        "--output", default=None, metavar="PATH",
        help="where to write the fresh results (default: the baseline "
             "path, i.e. BENCH_engine.json at the current directory)",
    )
    bench_p.add_argument(
        "--baseline", default="BENCH_engine.json", metavar="PATH",
        help="committed baseline to compare against with --check",
    )
    bench_p.add_argument(
        "--check", action="store_true",
        help="compare against the committed baseline (exit 1 on timing "
             "drift or >threshold speedup regression) instead of just "
             "refreshing it",
    )
    bench_p.add_argument(
        "--repeat", type=int, default=2, metavar="N",
        help="runs per (workload, engine); best wall-clock wins (default 2)",
    )
    bench_p.add_argument(
        "--threshold", type=float, default=0.25, metavar="F",
        help="allowed relative speedup regression for --check (default 0.25)",
    )
    cache_p = sub.add_parser(
        "cache", help="inspect or clean the on-disk run cache"
    )
    cache_p.add_argument(
        "--prune", action="store_true",
        help="remove stale entries (old format versions) and orphaned "
             "*.tmp files, keeping current-version entries",
    )
    cache_p.add_argument(
        "--clear", action="store_true",
        help="delete every cache entry and temp file",
    )
    return parser


def _cache_command(args) -> int:
    directory = runcache.cache_dir()
    if args.clear:
        removed = runcache.clear()
        print(f"run cache cleared ({removed} files) ({directory})")
        return 0
    if args.prune:
        removed = runcache.prune()
        print(f"run cache pruned ({removed} stale files) ({directory})")
        return 0
    current = stale = tmp = total_bytes = 0
    keep_suffix = f".v{runcache.CACHE_FORMAT_VERSION}.json"
    if directory.is_dir():
        for path in directory.iterdir():
            name = path.name
            try:
                total_bytes += path.stat().st_size
            except OSError:
                continue
            if name.endswith(".tmp"):
                tmp += 1
            elif name.endswith(keep_suffix):
                current += 1
            elif name.endswith(".json"):
                stale += 1
    print(f"run cache: {directory}")
    print(
        f"  {current} current entries (v{runcache.CACHE_FORMAT_VERSION}), "
        f"{stale} stale-version entries, {tmp} orphaned tmp files, "
        f"{total_bytes / 1024:.0f} KiB total"
    )
    if stale or tmp:
        print("  (run `repro-experiments cache --prune` to drop stale files)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for exp_id, (title, _runner) in EXPERIMENTS.items():
            print(f"{exp_id:4s} {title}")
        return 0
    if args.command == "cache":
        return _cache_command(args)
    if args.command == "bench":
        from .bench import bench_command

        return bench_command(
            output=args.output if args.output else args.baseline,
            baseline=args.baseline,
            check=args.check,
            repeat=args.repeat,
            threshold=args.threshold,
        )
    if args.clear_cache:
        removed = runcache.clear()
        print(f"run cache cleared ({removed} entries)")
    exp_ids = list(EXPERIMENTS) if args.all else (args.exp or [])
    if not exp_ids:
        if args.clear_cache:
            return 0
        print("nothing to run: pass --all or --exp <id>", file=sys.stderr)
        return 2
    unknown = [e for e in exp_ids if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}", file=sys.stderr)
        return 2
    runcache.set_enabled(not args.no_cache)
    if args.sanitize:
        # worker processes read the environment, so this one switch covers
        # both the serial path and the ProcessPoolExecutor prewarm
        os.environ["REPRO_SANITIZE"] = "1"
    json_dir = pathlib.Path(args.json) if args.json else None
    if json_dir is not None:
        json_dir.mkdir(parents=True, exist_ok=True)
    if args.jobs > 1:
        started = time.time()
        counters = parallel.prewarm(exp_ids, scale=args.scale,
                                    jobs=args.jobs)
        print(
            f"prewarm: {counters['planned']} distinct runs "
            f"({counters['memo']} memoized, {counters['disk']} from disk "
            f"cache, {counters['executed']} simulated on {args.jobs} "
            f"workers) [{time.time() - started:.1f}s]"
        )
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    loop_started = time.time()
    for exp_id in exp_ids:
        started = time.time()
        result = run_experiment(exp_id, scale=args.scale)
        elapsed = time.time() - started
        print(f"== {result.exp_id}: {result.title} [{elapsed:.1f}s] ==")
        print(result.text)
        print()
        if json_dir is not None:
            payload = {
                "id": result.exp_id,
                "title": result.title,
                "scale": args.scale,
                "data": _jsonify(result.data),
            }
            (json_dir / f"{result.exp_id}.json").write_text(
                json.dumps(payload, indent=2)
            )
    if profiler is not None:
        import io
        import pstats

        profiler.disable()
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.sort_stats("cumulative").print_stats(25)
        print(f"profile: experiment loop took "
              f"{time.time() - loop_started:.2f}s wall-clock")
        print(buffer.getvalue())
    if not args.no_cache:
        cache = runcache.stats()
        print(
            f"run cache: {cache['hits']} hits, {cache['misses']} misses, "
            f"{cache['stores']} stores ({runcache.cache_dir()})"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
