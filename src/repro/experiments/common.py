"""Shared machinery for the per-figure/table experiment runners.

Experiments come in two scales:

* ``quick`` — small inputs for CI and the pytest-benchmark harness
  (each simulation finishes in roughly a second);
* ``full``  — the paper-scale inputs used to produce EXPERIMENTS.md
  (larger-than-L2 working sets, which is where the remote-access
  phenomena the paper reports fully develop).

Runs are memoized per process: most experiments reuse the same
(base, network-cache, switch-cache) simulations, so a full harness pass
executes each distinct machine exactly once.  On top of the in-process
memo sit two more layers (see DESIGN.md):

* the **on-disk run cache** (:mod:`repro.experiments.runcache`) —
  completed runs persist across processes, keyed by the full config;
* the **parallel executor** (:mod:`repro.experiments.parallel`) —
  fans the distinct runs an experiment set needs out over a process
  pool and rehydrates this module's memo, so the runners themselves
  stay serial and unchanged.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from ..apps import PAPER_APPS
from ..stats.counters import MachineStats
from ..system.config import SystemConfig
from ..system.machine import Machine
from ..trace.metrics import MetricsRegistry
from . import runcache

APP_ORDER = ("FWA", "GS", "GE", "MM", "SOR", "FFT")

#: application input sizes per scale (the paper's Table-2 analogue)
APP_SCALES: Dict[str, Dict[str, Dict[str, int]]] = {
    "quick": {
        "FWA": {"n": 24},
        "GS": {"n_vectors": 16, "length": 24},
        "GE": {"n": 24},
        "MM": {"n": 24},
        "SOR": {"n": 32, "iterations": 2},
        "FFT": {"m": 12},
    },
    "full": {
        "FWA": {"n": 48},
        "GS": {"n_vectors": 32, "length": 48},
        "GE": {"n": 64},
        "MM": {"n": 48},
        "SOR": {"n": 128, "iterations": 3},
        "FFT": {"m": 12},
    },
}


def make_app(name: str, scale: str, overrides: Optional[Dict] = None):
    """Instantiate one of the six paper kernels at the given scale.

    ``overrides`` replaces individual input parameters (e.g. the
    weak-scaling ablation grows GE's matrix with the machine); it is
    part of the run's identity for both caching layers.
    """
    kwargs = dict(APP_SCALES[scale][name])
    if overrides:
        kwargs.update(overrides)
    return PAPER_APPS[name](**kwargs)


@dataclasses.dataclass
class RunRecord:
    """Everything an experiment needs from one finished simulation."""

    app: str
    scale: str
    config_label: str
    exec_time: int
    stats: MachineStats
    switch_totals: Dict[str, int]
    switch_hits_by_stage: Dict[int, int]
    mean_tag_queue: float
    mean_data_queue: float
    ni_queue: float
    coherence_violations: int
    #: latency histograms etc. collected during the run (None for
    #: records cached before the metrics layer existed)
    metrics: Optional[MetricsRegistry] = None

    # ------------------------------------------------------------------
    # serialization: process-pool transport and the on-disk run cache
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict:
        """JSON-serializable payload capturing this record exactly."""
        return {
            "app": self.app,
            "scale": self.scale,
            "config_label": self.config_label,
            "exec_time": self.exec_time,
            "stats": self.stats.to_payload(),
            "switch_totals": dict(self.switch_totals),
            "switch_hits_by_stage": sorted(self.switch_hits_by_stage.items()),
            "mean_tag_queue": self.mean_tag_queue,
            "mean_data_queue": self.mean_data_queue,
            "ni_queue": self.ni_queue,
            "coherence_violations": self.coherence_violations,
            "metrics": (
                self.metrics.to_payload() if self.metrics is not None else None
            ),
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "RunRecord":
        """Rebuild a record from :meth:`to_payload` output."""
        return cls(
            app=payload["app"],
            scale=payload["scale"],
            config_label=payload["config_label"],
            exec_time=payload["exec_time"],
            stats=MachineStats.from_payload(payload["stats"]),
            switch_totals=dict(payload["switch_totals"]),
            switch_hits_by_stage={
                int(k): v for k, v in payload["switch_hits_by_stage"]
            },
            mean_tag_queue=payload["mean_tag_queue"],
            mean_data_queue=payload["mean_data_queue"],
            ni_queue=payload["ni_queue"],
            coherence_violations=payload["coherence_violations"],
            metrics=(
                MetricsRegistry.from_payload(payload["metrics"])
                if payload.get("metrics") is not None else None
            ),
        )


_CACHE: Dict[Tuple, RunRecord] = {}


def config_key(config: SystemConfig) -> Tuple:
    """Hashable identity covering **every** ``SystemConfig`` field.

    Derived by walking ``dataclasses.fields`` so a newly added (or newly
    swept) parameter can never silently alias two different configs onto
    one cached run — the on-disk cache fingerprint walks the same fields
    (:func:`repro.experiments.runcache.config_fingerprint`).
    """
    values = []
    for field in dataclasses.fields(SystemConfig):
        value = getattr(config, field.name)
        if isinstance(value, (set, frozenset)):
            value = tuple(sorted(value))
        values.append(value)
    return tuple(values)


def run_key(
    app_name: str, scale: str, config: SystemConfig,
    app_overrides: Optional[Dict] = None,
) -> Tuple:
    """Memo-cache key of one distinct simulation run."""
    overrides = (
        tuple(sorted(app_overrides.items())) if app_overrides else None
    )
    return (app_name, scale, overrides, config_key(config))


def execute(
    app_name: str, scale: str, config: SystemConfig,
    app_overrides: Optional[Dict] = None,
) -> RunRecord:
    """Actually simulate one run (no cache layers).

    Pure function of its arguments: the engine is deterministic, so the
    parallel executor's workers call this and ship the payload back.
    """
    # histograms only: no sample_interval, so the registry adds zero
    # simulator events and the run stays byte-identical with/without it
    metrics = MetricsRegistry()
    machine = Machine(config, metrics=metrics)
    stats = machine.run(make_app(app_name, scale, app_overrides))
    tag_qs, data_qs = [], []
    for switch in machine.fabric.switches.values():
        engine = switch.cache_engine
        if engine is None:
            continue
        tag_qs.append(engine.sram.tag_port.mean_queueing_delay())
        for port in engine.sram.data_ports:
            data_qs.append(port.mean_queueing_delay())
    return RunRecord(
        app=app_name,
        scale=scale,
        config_label=config.label(),
        exec_time=stats.exec_time,
        stats=stats,
        switch_totals=machine.switch_cache_stats(),
        switch_hits_by_stage=dict(stats.switch_hits_by_stage),
        mean_tag_queue=sum(tag_qs) / len(tag_qs) if tag_qs else 0.0,
        mean_data_queue=sum(data_qs) / len(data_qs) if data_qs else 0.0,
        ni_queue=machine.fabric.injection_queue_delay(),
        coherence_violations=len(machine.check_coherence()),
        metrics=metrics,
    )


def run(
    app_name: str, scale: str, config: SystemConfig,
    app_overrides: Optional[Dict] = None,
) -> RunRecord:
    """Run (or fetch the cached run of) one app on one configuration.

    Lookup order: in-process memo, then the on-disk run cache (when
    enabled), then a live simulation (which populates both layers).
    """
    key = run_key(app_name, scale, config, app_overrides)
    record = _CACHE.get(key)
    if record is not None:
        return record
    payload = runcache.load(app_name, scale, config, app_overrides)
    if payload is not None:
        record = RunRecord.from_payload(payload)
    else:
        record = execute(app_name, scale, config, app_overrides)
        runcache.store(
            app_name, scale, config, record.to_payload(), app_overrides
        )
    _CACHE[key] = record
    return record


def memoize(key: Tuple, record: RunRecord) -> None:
    """Install a completed run in the in-process memo (parallel executor)."""
    _CACHE[key] = record


def memoized(key: Tuple) -> Optional[RunRecord]:
    """The memoized record for ``key``, or None."""
    return _CACHE.get(key)


def memoized_keys() -> Tuple:
    """Snapshot of the memo's keys (used by plan-coverage tests)."""
    return tuple(_CACHE)


def clear_cache() -> None:
    """Clear the in-process memo (the disk cache is unaffected)."""
    _CACHE.clear()


@dataclasses.dataclass
class ExperimentResult:
    """A rendered experiment: id, title, report text, raw series."""

    exp_id: str
    title: str
    text: str
    data: Dict

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"== {self.exp_id}: {self.title} ==\n{self.text}"
