"""Shared machinery for the per-figure/table experiment runners.

Experiments come in two scales:

* ``quick`` — small inputs for CI and the pytest-benchmark harness
  (each simulation finishes in roughly a second);
* ``full``  — the paper-scale inputs used to produce EXPERIMENTS.md
  (larger-than-L2 working sets, which is where the remote-access
  phenomena the paper reports fully develop).

Runs are memoized per process: most experiments reuse the same
(base, network-cache, switch-cache) simulations, so a full harness pass
executes each distinct machine exactly once.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from ..apps import PAPER_APPS
from ..stats.counters import MachineStats
from ..system.config import SystemConfig
from ..system.machine import Machine

APP_ORDER = ("FWA", "GS", "GE", "MM", "SOR", "FFT")

#: application input sizes per scale (the paper's Table-2 analogue)
APP_SCALES: Dict[str, Dict[str, Dict[str, int]]] = {
    "quick": {
        "FWA": {"n": 24},
        "GS": {"n_vectors": 16, "length": 24},
        "GE": {"n": 24},
        "MM": {"n": 24},
        "SOR": {"n": 32, "iterations": 2},
        "FFT": {"m": 12},
    },
    "full": {
        "FWA": {"n": 48},
        "GS": {"n_vectors": 32, "length": 48},
        "GE": {"n": 64},
        "MM": {"n": 48},
        "SOR": {"n": 128, "iterations": 3},
        "FFT": {"m": 12},
    },
}


def make_app(name: str, scale: str):
    """Instantiate one of the six paper kernels at the given scale."""
    return PAPER_APPS[name](**APP_SCALES[scale][name])


@dataclasses.dataclass
class RunRecord:
    """Everything an experiment needs from one finished simulation."""

    app: str
    scale: str
    config_label: str
    exec_time: int
    stats: MachineStats
    switch_totals: Dict[str, int]
    switch_hits_by_stage: Dict[int, int]
    mean_tag_queue: float
    mean_data_queue: float
    ni_queue: float
    coherence_violations: int


_CACHE: Dict[Tuple, RunRecord] = {}


def _config_key(config: SystemConfig) -> Tuple:
    return (
        config.num_nodes,
        config.switch_cache_size,
        config.switch_cache_assoc,
        config.switch_cache_banks,
        config.switch_cache_width_bits,
        config.switch_cache_bypass_threshold,
        config.switch_cache_deposit_threshold,
        tuple(sorted(config.switch_cache_stages))
        if config.switch_cache_stages is not None
        else None,
        config.netcache_size,
        config.protocol,
        config.num_nodes * config.procs_per_node,
        config.switch_cache_replacement,
        config.l2_size,
    )


def run(app_name: str, scale: str, config: SystemConfig) -> RunRecord:
    """Run (or fetch the memoized run of) one app on one configuration."""
    key = (app_name, scale, _config_key(config))
    record = _CACHE.get(key)
    if record is not None:
        return record
    machine = Machine(config)
    stats = machine.run(make_app(app_name, scale))
    tag_qs, data_qs = [], []
    for switch in machine.fabric.switches.values():
        engine = switch.cache_engine
        if engine is None:
            continue
        tag_qs.append(engine.sram.tag_port.mean_queueing_delay())
        for port in engine.sram.data_ports:
            data_qs.append(port.mean_queueing_delay())
    record = RunRecord(
        app=app_name,
        scale=scale,
        config_label=config.label(),
        exec_time=stats.exec_time,
        stats=stats,
        switch_totals=machine.switch_cache_stats(),
        switch_hits_by_stage=dict(stats.switch_hits_by_stage),
        mean_tag_queue=sum(tag_qs) / len(tag_qs) if tag_qs else 0.0,
        mean_data_queue=sum(data_qs) / len(data_qs) if data_qs else 0.0,
        ni_queue=machine.fabric.injection_queue_delay(),
        coherence_violations=len(machine.check_coherence()),
    )
    _CACHE[key] = record
    return record


def clear_cache() -> None:
    _CACHE.clear()


@dataclasses.dataclass
class ExperimentResult:
    """A rendered experiment: id, title, report text, raw series."""

    exp_id: str
    title: str
    text: str
    data: Dict

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"== {self.exp_id}: {self.title} ==\n{self.text}"
