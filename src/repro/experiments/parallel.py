"""Parallel executor: fan the harness's distinct runs over a process pool.

The experiment runners themselves are short serial scripts — all their
time goes into the deterministic machine simulations they request via
:func:`repro.experiments.common.run`.  Because every experiment's run
set is statically enumerable (fixed loops over apps, sizes, and
configs), this module keeps a declarative *plan* per experiment id:
the exact (app, scale, config, app-overrides) tuples that experiment
will ask for.  :func:`prewarm` unions the plans for a set of requested
experiments, dedupes against the in-process memo and the on-disk run
cache, executes the remainder on a :class:`ProcessPoolExecutor`, and
rehydrates the memo from the workers' payloads — after which the
unmodified serial runners find every run already cached.

Plans are best-effort by construction: a run missing from a plan is
*benign* (the runner simply simulates it serially later, exactly as
before this module existed), and a stale extra entry merely wastes one
simulation.  ``tests/test_parallel.py`` pins the plans of the cheap
experiments against the runs their runners actually perform.

Workers receive the picklable ``SystemConfig`` directly and return
``RunRecord.to_payload()`` dicts — the same canonical payload the disk
cache stores — so parallel and serial execution produce bit-identical
records (the payload round-trip is exact).
"""

from __future__ import annotations

import dataclasses
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..system.config import KB, SystemConfig
from ..system.presets import (
    base_config,
    caesar_plus_config,
    netcache_config,
    switch_cache_config,
)
from . import common, runcache
from .ablations import SHARING_APPS
from .common import APP_ORDER, RunRecord
from .runners import SC_SIZES


@dataclasses.dataclass
class RunSpec:
    """One distinct simulation an experiment will request."""

    app: str
    scale: str
    config: SystemConfig
    overrides: Optional[Dict] = None

    def key(self) -> Tuple:
        return common.run_key(self.app, self.scale, self.config,
                              self.overrides)


# ----------------------------------------------------------------------
# per-experiment plans (mirror runners.py / ablations.py loop nests)
# ----------------------------------------------------------------------
def _specs(scale: str, configs: Iterable[SystemConfig],
           apps: Tuple[str, ...] = APP_ORDER) -> List[RunSpec]:
    return [RunSpec(app, scale, config)
            for app in apps for config in configs]


def _plan_static(scale: str) -> List[RunSpec]:
    return []  # T1/T2 tabulate static parameters; no simulations


def _plan_base_apps(scale: str) -> List[RunSpec]:
    return _specs(scale, [base_config()])  # F3, F4, F5


def _plan_e1(scale: str) -> List[RunSpec]:
    return _specs(scale, [base_config(), switch_cache_config(size=2 * KB)])


def _plan_e2(scale: str) -> List[RunSpec]:
    configs = [base_config()]
    configs += [switch_cache_config(size=s) for s in SC_SIZES]
    return _specs(scale, configs)


def _plan_e3_e4(scale: str) -> List[RunSpec]:
    return _specs(scale, [base_config(), netcache_config(),
                          switch_cache_config(size=2 * KB)])


def _plan_e5(scale: str) -> List[RunSpec]:
    configs = [base_config(), netcache_config()]
    configs += [switch_cache_config(size=s) for s in SC_SIZES]
    return _specs(scale, configs)


def _plan_e6(scale: str) -> List[RunSpec]:
    configs = [base_config()]
    configs += [switch_cache_config(size=s)
                for s in (512, 1024, 2048, 4096, 8192)]
    return _specs(scale, configs)


def _plan_e7(scale: str) -> List[RunSpec]:
    return _specs(scale, [switch_cache_config(size=2 * KB, banks=1),
                          caesar_plus_config(size=2 * KB)])


def _plan_e8(scale: str) -> List[RunSpec]:
    return _specs(scale, [switch_cache_config(size=2 * KB, width_bits=w)
                          for w in (64, 128, 256)])


def _plan_e9(scale: str) -> List[RunSpec]:
    return _specs(scale, [switch_cache_config(size=2 * KB)])


def _plan_a1(scale: str) -> List[RunSpec]:
    configs = [base_config()]
    configs += [switch_cache_config(size=2 * KB, stages=stages)
                for stages in ({0}, {1}, {2}, {3}, None)]
    return _specs(scale, configs, apps=SHARING_APPS)


def _plan_a2(scale: str) -> List[RunSpec]:
    configs = [base_config()]
    for bypass, deposit in ((0, 0), (4, 16), (64, 256)):
        configs.append(switch_cache_config(size=2 * KB).replaced(
            switch_cache_bypass_threshold=bypass,
            switch_cache_deposit_threshold=deposit,
        ))
    return _specs(scale, configs, apps=SHARING_APPS)


def _plan_a3(scale: str) -> List[RunSpec]:
    configs = [base_config()]
    configs += [switch_cache_config(size=1 * KB, assoc=a) for a in (1, 2, 4)]
    return _specs(scale, configs, apps=SHARING_APPS)


def _plan_a4(scale: str) -> List[RunSpec]:
    rows_per_proc = 2 if scale == "quick" else 4
    specs = []
    for n in (4, 8, 16, 32):
        overrides = {"n": rows_per_proc * n}
        specs.append(RunSpec("GE", scale, base_config(num_nodes=n),
                             overrides))
        specs.append(RunSpec(
            "GE", scale, switch_cache_config(size=2 * KB, num_nodes=n),
            overrides,
        ))
    return specs


def _plan_a5(scale: str) -> List[RunSpec]:
    return _specs(scale, [
        base_config(),
        base_config(protocol="mesi"),
        switch_cache_config(size=2 * KB),
        switch_cache_config(size=2 * KB, protocol="mesi"),
    ])


def _plan_a6(scale: str) -> List[RunSpec]:
    mm_n = 24 if scale == "quick" else 48
    small = dict(l1_size=512, l2_size=2 * KB)
    specs = []
    for nodes, ppn in ((16, 1), (8, 2), (4, 4)):
        overrides = {"n": mm_n}
        specs.append(RunSpec("MM", scale, base_config(
            num_nodes=nodes, procs_per_node=ppn, **small), overrides))
        specs.append(RunSpec("MM", scale, base_config(
            num_nodes=nodes, procs_per_node=ppn,
            netcache_size=32 * KB, **small), overrides))
        specs.append(RunSpec("MM", scale, switch_cache_config(
            size=2 * KB, num_nodes=nodes, procs_per_node=ppn, **small),
            overrides))
    return specs


def _plan_a7(scale: str) -> List[RunSpec]:
    configs = [base_config()]
    for policy in ("lru", "fifo", "random"):
        configs.append(switch_cache_config(size=1 * KB).replaced(
            switch_cache_replacement=policy))
    return _specs(scale, configs, apps=SHARING_APPS)


def _plan_a8(scale: str) -> List[RunSpec]:
    # only A8's end-to-end validation runs are Machine simulations; its
    # microbenchmark traffic cases are inline and not cacheable
    specs = []
    for sc_size in (0, 1024):
        for model in ("message", "flit"):
            specs.append(RunSpec("GE", scale, SystemConfig(
                num_nodes=4, l1_size=1024, l2_size=4096,
                switch_cache_size=sc_size, network_model=model,
            ), {"n": 16}))
    return specs


PLANS: Dict[str, Callable[[str], List[RunSpec]]] = {
    "T1": _plan_static,
    "T2": _plan_static,
    "F3": _plan_base_apps,
    "F4": _plan_base_apps,
    "F5": _plan_base_apps,
    "E1": _plan_e1,
    "E2": _plan_e2,
    "E3": _plan_e3_e4,
    "E4": _plan_e3_e4,
    "E5": _plan_e5,
    "E6": _plan_e6,
    "E7": _plan_e7,
    "E8": _plan_e8,
    "E9": _plan_e9,
    "A1": _plan_a1,
    "A2": _plan_a2,
    "A3": _plan_a3,
    "A4": _plan_a4,
    "A5": _plan_a5,
    "A6": _plan_a6,
    "A7": _plan_a7,
    "A8": _plan_a8,
}


def plan(exp_ids: Iterable[str], scale: str = "quick") -> List[RunSpec]:
    """The deduplicated union of runs the given experiments will request."""
    specs: List[RunSpec] = []
    seen = set()
    for exp_id in exp_ids:
        planner = PLANS.get(exp_id)
        if planner is None:
            continue
        for spec in planner(scale):
            key = spec.key()
            if key not in seen:
                seen.add(key)
                specs.append(spec)
    return specs


def _worker(app: str, scale: str, config: SystemConfig,
            overrides: Optional[Dict]) -> Dict:
    """Pool worker: simulate one run, ship back its canonical payload."""
    return common.execute(app, scale, config, overrides).to_payload()


def prewarm(
    exp_ids: Iterable[str],
    scale: str = "quick",
    jobs: Optional[int] = None,
) -> Dict[str, int]:
    """Execute every run the experiments need, in parallel, into the memo.

    After this returns, the serial runners for ``exp_ids`` find all their
    simulations memoized.  Returns counters: ``planned`` (distinct runs),
    ``memo``/``disk`` (already warm), ``executed`` (freshly simulated).
    """
    return execute_specs(plan(exp_ids, scale), jobs=jobs)


def execute_specs(
    specs: List[RunSpec], jobs: Optional[int] = None
) -> Dict[str, int]:
    """Warm both cache layers for ``specs`` (see :func:`prewarm`)."""
    counters = {"planned": len(specs), "memo": 0, "disk": 0, "executed": 0}
    todo: List[Tuple[Tuple, RunSpec]] = []
    for spec in specs:
        key = spec.key()
        if common.memoized(key) is not None:
            counters["memo"] += 1
            continue
        payload = runcache.load(spec.app, spec.scale, spec.config,
                                spec.overrides)
        if payload is not None:
            common.memoize(key, RunRecord.from_payload(payload))
            counters["disk"] += 1
            continue
        todo.append((key, spec))
    if not todo:
        return counters
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs <= 1 or len(todo) == 1:
        # mirror the pool path exactly (execute + memoize + store) rather
        # than calling common.run, whose own runcache.load would count a
        # second miss for a run this function already probed above
        for key, spec in todo:
            record = common.execute(spec.app, spec.scale, spec.config,
                                    spec.overrides)
            common.memoize(key, record)
            runcache.store(spec.app, spec.scale, spec.config,
                           record.to_payload(), spec.overrides)
            counters["executed"] += 1
        return counters
    with ProcessPoolExecutor(max_workers=min(jobs, len(todo))) as pool:
        futures = {
            pool.submit(_worker, spec.app, spec.scale, spec.config,
                        spec.overrides): (key, spec)
            for key, spec in todo
        }
        for future in as_completed(futures):
            key, spec = futures[future]
            record = RunRecord.from_payload(future.result())
            # the parent owns both cache layers: rehydrate the memo and
            # persist to disk (workers only simulate)
            common.memoize(key, record)
            runcache.store(spec.app, spec.scale, spec.config,
                           record.to_payload(), spec.overrides)
            counters["executed"] += 1
    return counters
