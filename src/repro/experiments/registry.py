"""Registry mapping experiment ids to runners (DESIGN.md Sec. 4)."""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from .common import ExperimentResult
from . import ablations, runners

Runner = Callable[[str], ExperimentResult]

EXPERIMENTS: Dict[str, Tuple[str, Runner]] = {
    "T1": ("CAESAR access operations and delays", runners.exp_t1),
    "T2": ("Simulation parameters and application inputs", runners.exp_t2),
    "F3": ("Read sharing pattern", runners.exp_f3),
    "F4": ("Ideal global cache hit rate", runners.exp_f4),
    "F5": ("Base-system remote read latency breakdown", runners.exp_f5),
    "E1": ("Read service distribution", runners.exp_e1),
    "E2": ("Reduction in reads served at remote memory", runners.exp_e2),
    "E3": ("Mean remote read latency: base vs NC vs SC", runners.exp_e3),
    "E4": ("Read stall time normalized to base", runners.exp_e4),
    "E5": ("Normalized execution time", runners.exp_e5),
    "E6": ("Switch-cache size sensitivity", runners.exp_e6),
    "E7": ("CAESAR vs CAESAR+ (banked)", runners.exp_e7),
    "E8": ("Data-array output width", runners.exp_e8),
    "E9": ("Switch-cache hits by MIN stage", runners.exp_e9),
    # ablations beyond the paper's figures (DESIGN.md Sec. 4)
    "A1": ("Ablation: caching-stage placement", ablations.exp_a1),
    "A2": ("Ablation: robustness-policy thresholds", ablations.exp_a2),
    "A3": ("Ablation: switch-cache associativity", ablations.exp_a3),
    "A4": ("Ablation: system-size scaling", ablations.exp_a4),
    "A5": ("Ablation: MSI vs MESI protocol", ablations.exp_a5),
    "A6": ("Ablation: cluster organization (procs per node)", ablations.exp_a6),
    "A7": ("Ablation: switch-cache replacement policy", ablations.exp_a7),
    "A8": ("Validation: message-level vs flit-level network", ablations.exp_a8),
}


def run_experiment(exp_id: str, scale: str = "quick") -> ExperimentResult:
    title, runner = EXPERIMENTS[exp_id]
    return runner(scale)
