"""On-disk cache of completed simulation runs.

The experiment harness re-simulates the same (app, scale, config)
machines every time a figure is regenerated.  Each run is a pure
function of its inputs (the engine is deterministic), so completed
:class:`~repro.experiments.common.RunRecord` payloads are persisted
under ``results/.runcache/`` and reused across processes and across
days: regenerating one figure, or re-running the benchmark harness,
only simulates machines it has never seen.

Keying
------
A cache entry is addressed by ``(app, scale, config fingerprint,
CACHE_FORMAT_VERSION)``.  The fingerprint hashes **every**
``SystemConfig`` field (plus any per-run application-input overrides),
so two configs that differ in any parameter can never alias.  The
format version is baked into the file name; bump
:data:`CACHE_FORMAT_VERSION` whenever simulator *behaviour* changes
(not just the payload layout), which atomically invalidates every
stale entry — see CONTRIBUTING.md.

The cache is **disabled by default** so unit tests always exercise the
live simulator; the CLI (``repro-experiments``) and the benchmark
harness (``benchmarks/conftest.py``) enable it explicitly.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import tempfile
from typing import Dict, Optional

from ..system.config import SystemConfig

#: bump when a code change alters simulation results or payload layout;
#: every existing cache entry becomes unreachable (stale files are
#: removed by ``clear()`` or by hand)
CACHE_FORMAT_VERSION = 3  # v3: RunRecord payloads carry a metrics registry

_enabled = False

#: statistics for the current process (prewarm/CLI reporting)
hits = 0
misses = 0
stores = 0


def set_enabled(flag: bool) -> None:
    """Globally enable/disable the on-disk cache for this process."""
    global _enabled
    _enabled = bool(flag)


def is_enabled() -> bool:
    return _enabled


def cache_dir() -> pathlib.Path:
    """Cache directory: ``$REPRO_RUNCACHE_DIR`` or ``results/.runcache``.

    The default resolves against the repository checkout containing this
    file when run from a source tree, else against the current working
    directory (installed-package case).
    """
    override = os.environ.get("REPRO_RUNCACHE_DIR")
    if override:
        return pathlib.Path(override)
    here = pathlib.Path(__file__).resolve()
    repo_root = here.parents[3]  # src/repro/experiments/runcache.py -> repo
    if (repo_root / "src").is_dir():
        return repo_root / "results" / ".runcache"
    return pathlib.Path.cwd() / "results" / ".runcache"


def config_fingerprint(
    config: SystemConfig, app_overrides: Optional[Dict] = None
) -> str:
    """Hex digest over every config field plus app-input overrides."""
    blob = {
        field.name: _jsonable(getattr(config, field.name))
        for field in dataclasses.fields(SystemConfig)
    }
    if app_overrides:
        blob["__app_overrides__"] = {
            str(k): _jsonable(v) for k, v in sorted(app_overrides.items())
        }
    canonical = json.dumps(blob, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _jsonable(value):
    """Recursively convert ``value`` into JSON-encodable containers.

    Sets/frozensets become sorted lists and tuples become lists at
    *every* nesting level — a config field like ``(frozenset({1}),)``
    must fingerprint, not crash ``json.dumps``.
    """
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(item) for item in value)
    if isinstance(value, (tuple, list)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in sorted(value.items())}
    return value


def entry_path(
    app: str, scale: str, config: SystemConfig,
    app_overrides: Optional[Dict] = None,
) -> pathlib.Path:
    digest = config_fingerprint(config, app_overrides)
    name = f"{app}-{scale}-{digest[:20]}.v{CACHE_FORMAT_VERSION}.json"
    return cache_dir() / name


def load(
    app: str, scale: str, config: SystemConfig,
    app_overrides: Optional[Dict] = None,
) -> Optional[Dict]:
    """The cached RunRecord payload for this run, or None."""
    global hits, misses
    if not _enabled:
        return None
    path = entry_path(app, scale, config, app_overrides)
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        misses += 1
        return None
    if payload.get("cache_format") != CACHE_FORMAT_VERSION:
        misses += 1
        return None
    hits += 1
    return payload["record"]


def store(
    app: str, scale: str, config: SystemConfig,
    record_payload: Dict, app_overrides: Optional[Dict] = None,
) -> Optional[pathlib.Path]:
    """Persist a RunRecord payload; returns the entry path (None if off)."""
    global stores
    if not _enabled:
        return None
    path = entry_path(app, scale, config, app_overrides)
    path.parent.mkdir(parents=True, exist_ok=True)
    wrapped = {
        "cache_format": CACHE_FORMAT_VERSION,
        "app": app,
        "scale": scale,
        "config_label": config.label(),
        "record": record_payload,
    }
    # atomic publish: concurrent workers may store the same entry
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(wrapped, handle, separators=(",", ":"))
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    stores += 1
    return path


def clear() -> int:
    """Delete every cache entry (all versions) **and** leftover temp
    files from interrupted stores.  Returns files removed."""
    directory = cache_dir()
    removed = 0
    if not directory.is_dir():
        return removed
    for pattern in ("*.json", "*.tmp"):
        for path in directory.glob(pattern):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
    return removed


def prune() -> int:
    """Remove stale files only: old-format entries and orphaned temps.

    Keeps every current-version (``.v{CACHE_FORMAT_VERSION}.json``)
    entry; drops entries written by older/newer format versions (which
    :func:`load` can never return) and ``*.tmp`` droppings left by
    stores that died between ``mkstemp`` and ``os.replace``.  Returns
    the number of files removed.
    """
    directory = cache_dir()
    removed = 0
    if not directory.is_dir():
        return removed
    keep_suffix = f".v{CACHE_FORMAT_VERSION}.json"
    for path in directory.iterdir():
        name = path.name
        stale = name.endswith(".tmp") or (
            name.endswith(".json") and not name.endswith(keep_suffix)
        )
        if not stale:
            continue
        try:
            path.unlink()
            removed += 1
        except OSError:
            pass
    return removed


def stats() -> Dict[str, int]:
    """Per-process cache counters (for CLI/prewarm reporting)."""
    return {"hits": hits, "misses": misses, "stores": stores}
