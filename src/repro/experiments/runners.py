"""One runner per paper table/figure (see DESIGN.md experiment index).

Each runner returns an :class:`ExperimentResult` whose ``text`` prints
the same rows/series the paper reports and whose ``data`` carries the raw
numbers for programmatic checks (the test suite asserts the paper's
qualitative claims against these).
"""

from __future__ import annotations

from typing import Dict, List

from ..stats.report import format_series, format_table, percent
from ..system.config import KB, SystemConfig
from ..system.presets import (
    base_config,
    caesar_plus_config,
    netcache_config,
    switch_cache_config,
)
from .common import APP_ORDER, APP_SCALES, ExperimentResult, RunRecord, run

#: switch-cache sizes swept by the paper's evaluation (bytes per switch)
SC_SIZES = (512, 1024, 2048, 4096)


# ----------------------------------------------------------------------
# T1 — CAESAR access operations and delays (static)
# ----------------------------------------------------------------------
def exp_t1(scale: str = "quick") -> ExperimentResult:
    from ..core.switchcache import SwitchCacheGeometry

    rows = []
    for width in (64, 128, 256):
        geo = SwitchCacheGeometry(size=2048, block_size=64, output_width_bits=width)
        rows.append(
            ("regular read hit", f"{width}-bit", "tag + data",
             geo.tag_cycles + geo.data_cycles)
        )
        rows.append(
            ("regular read miss", f"{width}-bit", "tag", geo.tag_cycles)
        )
        rows.append(
            ("reply deposit", f"{width}-bit", "tag + data",
             geo.tag_cycles + geo.data_cycles)
        )
    geo = SwitchCacheGeometry(size=2048, block_size=64)
    rows.append(("snoop probe (miss)", "-", "snoop tag port", geo.tag_cycles))
    rows.append(("snoop purge (hit)", "-", "snoop tag port", 2 * geo.tag_cycles))
    text = format_table(
        ("operation", "data width", "resources", "cycles"), rows,
        title="CAESAR switch-cache access operations and delays",
    )
    return ExperimentResult("T1", "CAESAR access delays", text, {"rows": rows})


# ----------------------------------------------------------------------
# T2 — simulation parameters and application inputs (static)
# ----------------------------------------------------------------------
def exp_t2(scale: str = "full") -> ExperimentResult:
    cfg = SystemConfig()
    param_rows = [
        ("processors", cfg.num_nodes),
        ("L1 cache", f"{cfg.l1_size // KB}KB, {cfg.l1_assoc}-way, {cfg.l1_hit_cycles} cyc"),
        ("L2 cache", f"{cfg.l2_size // KB}KB, {cfg.l2_assoc}-way, {cfg.l2_hit_cycles} cyc"),
        ("cache block", f"{cfg.block_size}B"),
        ("write buffer", f"{cfg.write_buffer_entries} entries"),
        ("memory", f"{cfg.memory_access_cycles} cyc raw, "
                   f"{cfg.memory_access_cycles + 2 * cfg.memory_bus_cycles} cyc end-to-end"),
        ("network", "BMIN, 4x4 switches, wormhole, 2 VCs"),
        ("switch delay", f"{cfg.switch_delay} cyc"),
        ("link", f"16-bit, {cfg.cycles_per_flit} cyc/flit (8B flits)"),
        ("coherence", "MSI + full-map directory, release consistency"),
    ]
    app_rows = [
        (name, ", ".join(f"{k}={v}" for k, v in APP_SCALES[scale][name].items()))
        for name in APP_ORDER
    ]
    text = (
        format_table(("parameter", "value"), param_rows,
                     title="System parameters (paper Table 2)")
        + "\n\n"
        + format_table(("application", "input"), app_rows,
                       title=f"Application inputs (scale={scale})")
    )
    return ExperimentResult(
        "T2", "Simulation parameters", text,
        {"params": param_rows, "apps": app_rows},
    )


# ----------------------------------------------------------------------
# F3 — read sharing pattern
# ----------------------------------------------------------------------
def exp_f3(scale: str = "quick") -> ExperimentResult:
    data: Dict[str, Dict[int, float]] = {}
    lines: List[str] = []
    buckets = (1, 2, 4, 8, 16)
    for name in APP_ORDER:
        record = run(name, scale, base_config())
        histogram = record.stats.sharing_histogram(16)
        total = sum(histogram.values()) or 1
        # bucketize: 1, 2, 3-4, 5-8, 9-16 readers
        grouped = {1: 0, 2: 0, 4: 0, 8: 0, 16: 0}
        for degree, count in histogram.items():
            for b in buckets:
                if degree <= b:
                    grouped[b] += count
                    break
        data[name] = {b: grouped[b] / total for b in buckets}
        lines.append(
            format_series(
                f"{name} (mean degree {record.stats.mean_sharing_degree():.2f})",
                [f"<= {b}" for b in buckets],
                [data[name][b] for b in buckets],
            )
        )
    text = "Fraction of L2-miss reads to blocks read by k processors\n" + "\n".join(lines)
    return ExperimentResult("F3", "Read sharing pattern", text, data)


# ----------------------------------------------------------------------
# F4 — ideal global cache (Sec. 2.2 motivation)
# ----------------------------------------------------------------------
def exp_f4(scale: str = "quick") -> ExperimentResult:
    rows = []
    data = {}
    for name in APP_ORDER:
        record = run(name, scale, base_config())
        rate = record.stats.ideal_global_hit_rate()
        data[name] = rate
        rows.append((name, record.stats.shared_reads(), percent(rate)))
    text = format_table(
        ("app", "L2-miss reads", "ideal global-cache hit rate"), rows,
        title="Upper bound: reads an infinite shared network cache could serve",
    )
    return ExperimentResult("F4", "Ideal global cache", text, data)


# ----------------------------------------------------------------------
# F5 — base-system remote read latency breakdown (Sec. 2.1)
# ----------------------------------------------------------------------
def exp_f5(scale: str = "quick") -> ExperimentResult:
    rows = []
    data = {}
    for name in APP_ORDER:
        record = run(name, scale, base_config())
        means = record.stats.breakdown_means()
        data[name] = means
        rows.append(
            (
                name,
                f"{record.stats.mean_latency('remote_mem'):.0f}",
                f"{means['req_ni_q']:.1f}",
                f"{means['req_transit']:.1f}",
                f"{means['mem_queue']:.1f}",
                f"{means['mem_service']:.1f}",
                f"{means['reply_ni_q']:.1f}",
                f"{means['reply_transit']:.1f}",
            )
        )
    text = format_table(
        ("app", "remote read lat", "req NI q", "req transit", "mem queue",
         "mem service", "reply NI q", "reply transit"),
        rows,
        title="Remote read latency breakdown, base system (cycles)",
    )
    return ExperimentResult("F5", "Latency breakdown", text, data)


# ----------------------------------------------------------------------
# E1 — read service distribution: base vs switch cache
# ----------------------------------------------------------------------
def exp_e1(scale: str = "quick") -> ExperimentResult:
    rows = []
    data = {}
    for name in APP_ORDER:
        for config in (base_config(), switch_cache_config(size=2 * KB)):
            record = run(name, scale, config)
            dist = record.stats.service_distribution()
            data[(name, record.config_label)] = dist
            rows.append(
                (
                    name,
                    record.config_label,
                    percent(dist["l1"] + dist["wb"]),
                    percent(dist["l2"]),
                    percent(dist["local_mem"]),
                    percent(dist["switch"]),
                    percent(dist["remote_mem"] + dist["owner"]),
                )
            )
    text = format_table(
        ("app", "config", "L1/WB", "L2", "local mem", "switch cache", "remote mem"),
        rows,
        title="Where reads are served",
    )
    return ExperimentResult("E1", "Read service distribution", text, data)


# ----------------------------------------------------------------------
# E2 — reduction in reads served at remote memory (claim C1, <= 45 %)
# ----------------------------------------------------------------------
def exp_e2(scale: str = "quick") -> ExperimentResult:
    rows = []
    data: Dict[str, Dict[int, float]] = {}
    for name in APP_ORDER:
        base = run(name, scale, base_config())
        base_remote = base.stats.reads_at_remote_memory()
        reductions = {}
        for size in SC_SIZES:
            record = run(name, scale, switch_cache_config(size=size))
            remote = record.stats.reads_at_remote_memory()
            reductions[size] = (1 - remote / base_remote) if base_remote else 0.0
        data[name] = reductions
        rows.append(
            (name, base_remote)
            + tuple(percent(reductions[size]) for size in SC_SIZES)
        )
    text = format_table(
        ("app", "base remote reads") + tuple(f"SC {s}B" for s in SC_SIZES),
        rows,
        title="Reduction in reads served at remote memory",
    )
    return ExperimentResult("E2", "Remote read reduction", text, data)


# ----------------------------------------------------------------------
# E3 — average remote read latency: base vs NC vs SC
# ----------------------------------------------------------------------
def exp_e3(scale: str = "quick") -> ExperimentResult:
    configs = (
        base_config(),
        netcache_config(),
        switch_cache_config(size=2 * KB),
    )
    rows = []
    data = {}
    for name in APP_ORDER:
        row = [name]
        for config in configs:
            record = run(name, scale, config)
            latency = record.stats.mean_remote_read_latency()
            data[(name, record.config_label)] = latency
            row.append(f"{latency:.0f}")
        rows.append(tuple(row))
    text = format_table(
        ("app", "base", "network cache", "switch cache (2KB)"),
        rows,
        title="Mean remote read latency (cycles)",
    )
    return ExperimentResult("E3", "Remote read latency", text, data)


# ----------------------------------------------------------------------
# E4 — read stall time normalized to base (claim C3, <= 35 % reduction)
# ----------------------------------------------------------------------
def exp_e4(scale: str = "quick") -> ExperimentResult:
    configs = (
        base_config(),
        netcache_config(),
        switch_cache_config(size=2 * KB),
    )
    rows = []
    data = {}
    for name in APP_ORDER:
        base_stall = None
        row = [name]
        for config in configs:
            record = run(name, scale, config)
            stall = sum(
                node_stall
                for node_stall in [record.stats.total_read_stall()]
            )
            if base_stall is None:
                base_stall = stall or 1
            normalized = stall / base_stall
            data[(name, record.config_label)] = normalized
            row.append(f"{normalized:.3f}")
        rows.append(tuple(row))
    text = format_table(
        ("app", "base", "network cache", "switch cache (2KB)"),
        rows,
        title="Read stall time (normalized to base)",
    )
    return ExperimentResult("E4", "Read stall time", text, data)


# ----------------------------------------------------------------------
# E5 — normalized execution time (claim C2, <= 20 % improvement)
# ----------------------------------------------------------------------
def exp_e5(scale: str = "quick") -> ExperimentResult:
    rows = []
    data: Dict[str, Dict[str, float]] = {}
    for name in APP_ORDER:
        base = run(name, scale, base_config())
        entries: Dict[str, float] = {"base": 1.0}
        nc = run(name, scale, netcache_config())
        entries["NC"] = nc.exec_time / base.exec_time
        for size in SC_SIZES:
            record = run(name, scale, switch_cache_config(size=size))
            entries[f"SC-{size}"] = record.exec_time / base.exec_time
        data[name] = entries
        rows.append(
            (name, base.exec_time, f"{entries['NC']:.3f}")
            + tuple(f"{entries[f'SC-{s}']:.3f}" for s in SC_SIZES)
        )
    text = format_table(
        ("app", "base cycles", "NC") + tuple(f"SC {s}B" for s in SC_SIZES),
        rows,
        title="Execution time normalized to base",
    )
    return ExperimentResult("E5", "Normalized execution time", text, data)


# ----------------------------------------------------------------------
# E6 — switch-cache size sensitivity (claim C4: 512 B already helps)
# ----------------------------------------------------------------------
def exp_e6(scale: str = "quick") -> ExperimentResult:
    sizes = (512, 1024, 2048, 4096, 8192)
    lines = []
    data: Dict[str, Dict[int, float]] = {}
    for name in APP_ORDER:
        base = run(name, scale, base_config())
        improvements = {}
        for size in sizes:
            record = run(name, scale, switch_cache_config(size=size))
            improvements[size] = 1 - record.exec_time / base.exec_time
        data[name] = improvements
        lines.append(
            format_series(name, list(sizes), [improvements[s] for s in sizes])
        )
    text = (
        "Execution-time improvement vs switch-cache size (bytes/switch)\n"
        + "\n".join(lines)
    )
    return ExperimentResult("E6", "Cache size sensitivity", text, data)


# ----------------------------------------------------------------------
# E7 — CAESAR vs CAESAR+ (banked data arrays)
# ----------------------------------------------------------------------
def exp_e7(scale: str = "quick") -> ExperimentResult:
    rows = []
    data = {}
    for name in APP_ORDER:
        for config in (
            switch_cache_config(size=2 * KB, banks=1),
            caesar_plus_config(size=2 * KB),
        ):
            record = run(name, scale, config)
            label = "CAESAR+" if config.switch_cache_banks > 1 else "CAESAR"
            data[(name, label)] = {
                "exec": record.exec_time,
                "data_queue": record.mean_data_queue,
                "deposit_skips": record.switch_totals["deposit_skips"],
                "bypasses": record.switch_totals["bypasses"],
            }
            rows.append(
                (
                    name,
                    label,
                    record.exec_time,
                    f"{record.mean_data_queue:.2f}",
                    record.switch_totals["deposit_skips"],
                    record.switch_totals["bypasses"],
                )
            )
    text = format_table(
        ("app", "design", "exec cycles", "data-port queue", "deposit skips",
         "bypasses"),
        rows,
        title="CAESAR (1 bank) vs CAESAR+ (2 interleaved banks)",
    )
    return ExperimentResult("E7", "CAESAR vs CAESAR+", text, data)


# ----------------------------------------------------------------------
# E8 — data-array output width
# ----------------------------------------------------------------------
def exp_e8(scale: str = "quick") -> ExperimentResult:
    widths = (64, 128, 256)
    rows = []
    data = {}
    for name in APP_ORDER:
        for width in widths:
            record = run(
                name, scale, switch_cache_config(size=2 * KB, width_bits=width)
            )
            data[(name, width)] = {
                "exec": record.exec_time,
                "data_queue": record.mean_data_queue,
                "switch_reads": record.stats.read_counts["switch"],
            }
            rows.append(
                (
                    name,
                    f"{width}b",
                    record.exec_time,
                    f"{record.mean_data_queue:.2f}",
                    record.stats.read_counts["switch"],
                )
            )
    text = format_table(
        ("app", "width", "exec cycles", "data-port queue", "switch-served reads"),
        rows,
        title="Switch-cache data-array output width",
    )
    return ExperimentResult("E8", "Output width", text, data)


# ----------------------------------------------------------------------
# E9 — switch-cache hits by MIN stage
# ----------------------------------------------------------------------
def exp_e9(scale: str = "quick") -> ExperimentResult:
    lines = []
    data = {}
    for name in APP_ORDER:
        record = run(name, scale, switch_cache_config(size=2 * KB))
        by_stage = record.switch_hits_by_stage
        total = sum(by_stage.values()) or 1
        shares = {s: by_stage.get(s, 0) / total for s in range(4)}
        data[name] = shares
        lines.append(
            format_series(
                f"{name} ({sum(by_stage.values())} hits)",
                [f"stage {s}" for s in range(4)],
                [shares[s] for s in range(4)],
            )
        )
    text = "Share of switch-cache hits by MIN stage (0 = nearest processors)\n" + "\n".join(lines)
    return ExperimentResult("E9", "Hits by stage", text, data)
