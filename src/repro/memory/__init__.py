"""Memory modules, network interfaces, and the network-cache comparator."""

from .dram import MemoryModule
from .netcache import NetworkCache
from .nic import NetworkInterface

__all__ = ["MemoryModule", "NetworkCache", "NetworkInterface"]
