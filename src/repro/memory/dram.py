"""Memory-module timing.

The paper's memory has a 40-cycle raw access, but "it takes more than 50
cycles to submit the request to the memory subsystem and read the data
over the memory bus": we model that as a bus-submission delay, a queued
memory array, and a bus-return delay.  Queueing at a hot home memory (bulk
read arrivals) is one of the dominant remote-latency terms the paper
reports, so the array is a FIFO :class:`~repro.sim.resource.Timeline`.
"""

from __future__ import annotations

from typing import Tuple

from ..sim.engine import Simulator
from ..sim.resource import Timeline


class MemoryModule:
    """One node's local memory (array + bus)."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        access_cycles: int = 40,
        bus_cycles: int = 6,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.access_cycles = access_cycles
        self.bus_cycles = bus_cycles
        self.array = Timeline(sim, f"mem{node_id}")
        # statistics
        self.reads = 0
        self.writes = 0

    def read(self) -> Tuple[int, int]:
        """Submit a read now.  Returns (service_start, data_ready)."""
        self.reads += 1
        return self._access()

    def write(self) -> Tuple[int, int]:
        """Submit a write now.  Returns (service_start, done)."""
        self.writes += 1
        return self._access()

    def _access(self) -> Tuple[int, int]:
        earliest = self.sim.now + self.bus_cycles
        start = self.array.reserve(self.access_cycles, earliest=earliest)
        done = start + self.access_cycles + self.bus_cycles
        return start, done

    @property
    def uncontended_latency(self) -> int:
        """Latency of an access that meets an idle memory (>50 cycles)."""
        return self.access_cycles + 2 * self.bus_cycles

    def mean_queueing_delay(self) -> float:
        return self.array.mean_queueing_delay()
