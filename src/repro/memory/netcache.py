"""Network cache (remote data cache) — the paper's main comparator.

Current systems implement network caches in different ways: the HP
Exemplar partitions local memory [2], NUMA-Q dedicates a 32 MB DRAM [15],
DASH has a remote-access cache [14], and Moga & Dubois argue for small
SRAM network caches [16].  Here the network cache sits at a node's NI and
holds *clean shared remote* blocks: an L2 miss to a remote address probes
it before entering the network, and incoming DATA_S replies for remote
blocks fill it.  Invalidations addressed to the node purge it (the
directory tracks nodes, so coverage is exact).

With one processor per node — the paper's configuration — a network cache
can only serve a processor's *own* conflict/capacity re-fetches, which is
exactly why the paper finds switch caches (shared by all processors whose
paths cross a switch) more effective.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..cache.array import make_cache_array
from ..cache.states import LineState
from ..sim.engine import Simulator
from ..sim.resource import Timeline


class NetworkCache:
    """SRAM remote-data cache at one node's network interface."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        size: int = 128 * 1024,
        block_size: int = 64,
        assoc: int = 4,
        access_cycles: int = 12,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.access_cycles = access_cycles
        self.array = make_cache_array(size, block_size, assoc, name=f"nc{node_id}")
        self.port = Timeline(sim, f"nc{node_id}.port")
        # statistics
        self.hits = 0
        self.misses = 0
        self.fills = 0
        self.inv_purges = 0

    def lookup(self, addr: int) -> Tuple[Optional[int], int]:
        """Probe for a remote read.  Returns (data_or_None, done_time)."""
        start = self.port.reserve(self.access_cycles)
        done = start + self.access_cycles
        data = self.array.lookup_data(addr)
        if data is None:
            self.misses += 1
            return None, done
        self.hits += 1
        return data, done

    def fill(self, addr: int, data: int) -> None:
        """Capture a clean shared remote block from an incoming reply."""
        self.array.insert(addr, LineState.SHARED, data)
        self.fills += 1

    def invalidate(self, addr: int) -> None:
        if self.array.invalidate(addr) is not None:
            self.inv_purges += 1

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
