"""Network interface (NI) for one node.

The NI's send module prepares worms and injects them into the fabric
(where they queue for the injection link — the paper's NI queueing term);
its receive module dispatches delivered worms to the node's coherence
controllers.  Traffic between two controllers of the *same* node (an L2
miss to the local home memory) never enters the network: it crosses the
node's local bus with a fixed small delay instead.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import SimulationError
from ..network.fabric import Fabric
from ..network.message import Message
from ..sim.engine import Simulator

DispatchFn = Callable[[Message], None]


class NetworkInterface:
    """Send/receive module pair for one node."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        fabric: Optional[Fabric],
        local_delay: int = 2,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.fabric = fabric
        self.local_delay = local_delay
        self._dispatch: Optional[DispatchFn] = None
        # statistics
        self.sent = 0
        self.received = 0
        self.local_deliveries = 0

    def attach(self, dispatch: DispatchFn) -> None:
        """Register the node's receive-side dispatcher."""
        self._dispatch = dispatch
        if self.fabric is not None:
            self.fabric.attach_node(self.node_id, self._receive)

    def send(self, msg: Message, at: Optional[int] = None) -> None:
        """Send a message now (or at a future cycle ``at``)."""
        if msg.src != self.node_id:
            raise SimulationError(
                f"NI{self.node_id} asked to send a message from {msg.src}"
            )
        self.sent += 1
        if at is not None and at > self.sim.now:
            self.sim.call_at(at, self._send_now, msg)
        else:
            self._send_now(msg)

    def _send_now(self, msg: Message) -> None:
        if msg.dst == self.node_id:
            # intra-node: cross the local bus, never enter the fabric
            self.local_deliveries += 1
            msg.created_at = self.sim.now
            msg.injected_at = self.sim.now
            self.sim.call(self.local_delay, self._receive_local, msg)
        else:
            if self.fabric is None:
                raise SimulationError("remote message but no fabric configured")
            msg.created_at = self.sim.now
            self.fabric.inject(msg)

    def _receive_local(self, msg: Message) -> None:
        msg.delivered_at = self.sim.now
        self._receive(msg)

    def _receive(self, msg: Message) -> None:
        if self._dispatch is None:
            raise SimulationError(f"NI{self.node_id} has no dispatcher attached")
        self.received += 1
        self._dispatch(msg)
