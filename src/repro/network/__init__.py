"""Wormhole-routed bidirectional MIN substrate."""

from .fabric import Fabric, FabricStats
from .flitref import FlitNetwork
from .link import Link
from .message import FLIT_BYTES, Message, MsgKind, flits_for
from .switch import Switch
from .topology import BminTopology

__all__ = [
    "Fabric",
    "FabricStats",
    "FlitNetwork",
    "Link",
    "FLIT_BYTES",
    "Message",
    "MsgKind",
    "flits_for",
    "Switch",
    "BminTopology",
]
