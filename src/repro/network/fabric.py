"""The wormhole BMIN fabric: injection, per-hop forwarding, delivery.

Timing model (message-granularity wormhole, Section 5 of DESIGN.md):

* injection — the worm queues for its node's injection link (NI send
  module); the header enters the stage-0 switch one flit time after the
  grant.
* per hop — the header waits ``switch_delay`` cycles (arbitration +
  crossbar traversal), then queues FIFO for the output link; the link is
  occupied ``flits * cycles_per_flit`` cycles (serialization); the header
  reaches the next switch one flit time after the grant.
* delivery — the worm is handed to the destination NI when its tail has
  fully crossed the ejection link.

Switch-cache integration: as a worm's header arrives at a switch the
fabric invokes the embedded CAESAR engine —

* ``INV`` worms snoop (purge matching blocks),
* ``DATA_S`` worms deposit their block,
* ``READ`` worms may be intercepted: the engine supplies the data, the
  fabric fabricates a ``DATA_S`` reply that retraces the request's path,
  and the request itself shrinks to a 1-flit ``DIR_UPDATE`` that continues
  to the home node so the full-map directory stays exact.

Express transit (DESIGN.md §12)
-------------------------------
With the paper's in-order blocking processors the fabric is quiescent
most of the time: often exactly one worm is in flight, yet the scheduled
per-hop chain pops, dispatches, and re-pushes one event per BMIN stage
for no observer.  ``_arrive`` therefore fuses hops: after processing hop
*k* it compares the next header-arrival cycle against the event queue's
O(1) ``head_bound`` lookahead (a maintained attribute, read without a
call) — if no queued event can fire strictly before the header reaches
the next switch, that hop is processed inline (same grant arithmetic,
same engine hooks, same stats, with the worm's logical clock threaded
as an explicit ``now``) instead of being scheduled.  When the quiescent
window also covers the tail's arrival at the destination, even the
final delivery runs inline: the clock warps to the delivery cycle
(nothing can fire in between, so this is observationally identical to
popping the would-be delivery event).  The bound is exact, not
heuristic: a queued event at or before the next hop's (or delivery's)
time forces a bailout to the classic one-event-per-hop path, so fused
and unfused runs are bit-identical.  ``REPRO_EXPRESS=off`` disables
fusion machine-wide (the differential escape hatch, like
``REPRO_ENGINE`` and ``REPRO_STATE``).
"""

from __future__ import annotations

import os
from collections import defaultdict
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from ..errors import ConfigError, NetworkError
from ..sim.engine import Simulator
from .link import Link
from .message import Message, MessagePool, MsgKind
from .switch import Switch
from .topology import BminTopology, SwitchId

if TYPE_CHECKING:
    from ..trace.tracer import Tracer

DeliverFn = Callable[[Message], None]

#: one resolved route hop: (switch, out-link toward the next hop / the node)
Hop = Tuple[Switch, Link]

#: request kinds that open a flow arrow toward their eventual reply
_FLOW_REQUESTS = frozenset(
    {MsgKind.READ, MsgKind.READX, MsgKind.UPGRADE}
)
#: reply kinds that close a transaction's flow arrow
_FLOW_REPLIES = frozenset(
    {MsgKind.DATA_S, MsgKind.DATA_X, MsgKind.DATA_E, MsgKind.UPGR_ACK}
)

#: hoisted members for the per-hop engine dispatch in ``_arrive``
_INV = MsgKind.INV            # snoops_switch_caches
_DATA_S = MsgKind.DATA_S      # switch_cacheable
_READ = MsgKind.READ          # interceptable

#: environment variable selecting the transit mode ("on" | "off")
EXPRESS_ENV = "REPRO_EXPRESS"

#: valid values for REPRO_EXPRESS
EXPRESS_MODES = ("on", "off")


def express_enabled() -> bool:
    """Whether quiescent-window event fusion is on (default: yes)."""
    mode = os.environ.get(EXPRESS_ENV, "on")
    if mode not in EXPRESS_MODES:
        raise ConfigError(
            f"unknown {EXPRESS_ENV}={mode!r}; expected one of {EXPRESS_MODES}"
        )
    return mode == "on"


class FabricStats:
    """Aggregate network statistics."""

    __slots__ = (
        "msgs_injected", "msgs_delivered", "flits_injected", "switch_hits",
        "switch_replies", "dir_updates", "hits_by_stage",
    )

    def __init__(self) -> None:
        self.msgs_injected = 0
        self.msgs_delivered = 0
        self.flits_injected = 0
        self.switch_hits = 0
        self.switch_replies = 0
        self.dir_updates = 0
        # defaultdict: the hot recording path is a bare increment
        self.hits_by_stage: Dict[int, int] = defaultdict(int)

    def record_switch_hit(self, stage: int) -> None:
        self.switch_hits += 1
        self.switch_replies += 1
        self.dir_updates += 1
        self.hits_by_stage[stage] += 1


class Fabric:
    """A BMIN of :class:`Switch` elements plus node attachment points."""

    __slots__ = (
        "sim", "topo", "switch_delay", "cycles_per_flit", "stats",
        "switches", "_inject_links", "_handlers", "_tracer", "_route_objs",
        "_route_lists", "_reply_routes", "pool", "_express", "_equeue",
        "_record_route",
    )

    def __init__(
        self,
        sim: Simulator,
        topology: BminTopology,
        switch_delay: int = 4,
        cycles_per_flit: int = 4,
        pool: Optional[MessagePool] = None,
    ) -> None:
        self.sim = sim
        # captured once: Machine installs the tracer on the simulator
        # before any component is built, and never swaps it mid-run
        self._tracer = sim.tracer
        # express transit: fuse quiescent-window hops inline (§12).  The
        # queue object never changes after Simulator construction, so it
        # is captured once and its head_bound read as a plain attribute
        # on the hot path.  A horizon's beyond-the-edge event drops need
        # per-hop event granularity, and the horizon is likewise fixed
        # at construction, so it folds into the flag here.
        self._express = express_enabled() and sim.horizon is None
        self._equeue = sim._queue
        # the per-hop route trace costs one list append per hop on the
        # hottest path; it only feeds the tracer's hop attribution and
        # test introspection, so it is recorded only when tracing (or,
        # via SanitizedFabric, sanitizing) is enabled.  The switch-served
        # reply retrace derives the traversed prefix from the resolved
        # route + hop index instead.
        self._record_route = sim.tracer is not None
        self.topo = topology
        self.switch_delay = switch_delay
        self.cycles_per_flit = cycles_per_flit
        # the machine shares one pool across fabric + controllers so the
        # whole machine draws one message-id stream; standalone fabrics
        # (unit tests, examples) get a private pool
        self.pool = pool if pool is not None else MessagePool()
        self.stats = FabricStats()
        self.switches: Dict[SwitchId, Switch] = {}
        self._inject_links: Dict[int, Link] = {}
        # indexed by node id: a flat list beats a dict probe on the
        # delivery path (one per worm); None = no NI attached yet
        self._handlers: List[Optional[DeliverFn]] = (
            [None] * topology.num_nodes
        )
        self._route_objs: Dict[Tuple[int, int], Tuple[Hop, ...]] = {}
        self._route_lists: Dict[Tuple[int, int], List[SwitchId]] = {}
        # switch-served replies retrace the request's traversed prefix;
        # routes are deterministic per (src, dst), so (src, dst, hop)
        # names the prefix exactly and the reversed route plus its
        # resolution are cached like the forward tables above
        self._reply_routes: Dict[
            Tuple[int, int, int],
            Tuple[List[SwitchId], Tuple[Hop, ...]],
        ] = {}
        self._build()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        for sid in self.topo.switches():
            self.switches[sid] = Switch(
                self.sim, sid, self.switch_delay, self.cycles_per_flit
            )
        # inter-switch links (both directions)
        for sid, switch in self.switches.items():
            for up in self.topo.up_neighbors(sid):
                switch.add_output(up)
                self.switches[up].add_output(sid)
        # node attachment: ejection link lives on the stage-0 switch,
        # injection link is owned by the fabric per node
        for node in range(self.topo.num_nodes):
            sw = self.switches[self.topo.node_switch(node)]
            sw.add_output(node)
            self._inject_links[node] = Link(
                self.sim, f"ni{node}->sw", cycles_per_flit=self.cycles_per_flit
            )
        # resolve every (src, dst) route once into (switch, out-link) hop
        # tuples, so the per-worm hot path never consults the topology or
        # the switches' output dicts again
        for src in range(self.topo.num_nodes):
            for dst in range(self.topo.num_nodes):
                if src != dst:
                    route = self.topo.path(src, dst)
                    self._route_lists[(src, dst)] = route
                    self._route_objs[(src, dst)] = self._resolve(route, dst)

    def _resolve(
        self, route: List[SwitchId], dst: int
    ) -> Tuple[Hop, ...]:
        """Turn a switch-id route into ``((switch, out_link), ...)`` hops."""
        switches = self.switches
        last = len(route) - 1
        return tuple(
            (switches[sid],
             switches[sid].output_to(dst if i == last else route[i + 1]))
            for i, sid in enumerate(route)
        )

    def attach_node(self, node: int, handler: DeliverFn) -> None:
        """Register the delivery callback for a node's NI receive module."""
        self._handlers[node] = handler

    def install_cache_engines(self, factory: Callable[[SwitchId], object]) -> None:
        """Embed a cache engine in every switch (``factory`` may return None)."""
        for sid, switch in self.switches.items():
            switch.cache_engine = factory(sid)

    # ------------------------------------------------------------------
    # injection
    # ------------------------------------------------------------------
    def inject(self, msg: Message) -> None:
        """Send ``msg`` from its source node's NI into the network."""
        if msg.src == msg.dst:
            raise NetworkError("local messages must not enter the fabric")
        sim = self.sim
        if msg.created_at < 0:
            msg.created_at = sim.now
        # the cached route list is shared across worms (read-only by
        # convention); resolving per-inject was a measurable allocation
        msg.route = self._route_lists[(msg.src, msg.dst)]
        msg.hops = self._route_objs[(msg.src, msg.dst)]
        link = self._inject_links[msg.src]
        grant, _tail = link.reserve(msg.flits, earliest=sim.now)
        msg.injected_at = grant
        self.stats.msgs_injected += 1
        self.stats.flits_injected += msg.flits
        header_at_switch = grant + self.cycles_per_flit
        sim.call_at(header_at_switch, self._arrive, msg, 0)

    # ------------------------------------------------------------------
    # per-hop processing
    # ------------------------------------------------------------------
    def _arrive(self, msg: Message, hop: int) -> None:
        # hot path: one call per worm per *quiescent window* (§12); route
        # pre-resolved.  Every switch and link shares the fabric-wide
        # switch_delay and cycles_per_flit (see _build), so those load
        # from self — one bound attribute each — instead of per-switch/
        # per-link fields.  The loop body is the former single-hop path
        # verbatim, with the worm's logical clock carried in ``now``:
        # one iteration per fused hop, exiting by scheduling either the
        # next _arrive (bailout: a queued event could interleave) or the
        # final delivery.
        sim = self.sim
        now = sim.now
        hops = msg.hops
        nhops = len(hops)
        switch_delay = self.switch_delay
        cycles_per_flit = self.cycles_per_flit
        tracer = self._tracer
        record_route = self._record_route
        # express lookahead: a lower bound on the earliest queued event
        # (FAR_FUTURE when the queue is empty).  Constant across the
        # loop — nothing is popped or pushed while fusing.  With express
        # off the bound is 0, which every strict comparison below fails,
        # so the classic one-event-per-hop path falls out with no extra
        # branches.
        bound = self._equeue.head_bound if self._express else 0
        # constant across the loop: a worm's kind and size only change in
        # _serve_from_switch, which exits the loop (the DIR_UPDATE
        # continuation re-enters the fabric through _forward)
        kind = msg.kind
        flits = msg.flits
        duration = flits * cycles_per_flit
        while True:
            switch, link = hops[hop]
            if record_route:
                msg.trace.append(switch.id)
            if tracer is not None:
                tracer.instant(
                    switch.trace_track, "hop", now,
                    {"msg": msg.id, "kind": kind.value, "addr": msg.addr},
                )
            engine = switch.cache_engine
            if engine is not None:
                # identity checks against the hoisted members, not the
                # MsgKind convenience properties: once per worm per switch
                if kind is _INV:
                    engine.snoop(msg, now)
                elif kind is _DATA_S:
                    engine.try_deposit(msg, now)
                elif kind is _READ:
                    served = engine.try_intercept(msg, now)
                    if served is not None:
                        data, ready_at = served
                        self._serve_from_switch(
                            msg, switch, hop, data, ready_at, now
                        )
                        return
            # _forward inlined for the header-just-arrived case (the
            # grant arithmetic must stay in lockstep with Link.reserve):
            # this body runs once per worm per hop and the call levels
            # measurably show up.  Worms that enter the fabric here were
            # all registered at inject, so SanitizedFabric's _forward
            # ledger hook — needed only for fabricated switch replies —
            # is not required on this path.
            timeline = link.timeline
            request_at = now + switch_delay
            grant = timeline._free_at
            if grant < request_at:
                grant = request_at
            timeline._free_at = grant + duration
            timeline.busy_cycles += duration
            timeline.reservations += 1
            timeline.queued_cycles += grant - request_at
            link.msgs += 1
            link.flits += flits
            switch.msgs_routed += 1
            switch.flits_routed += flits
            hop += 1
            if hop == nhops:
                tail_done = grant + duration
                # delivery fusion: if no queued event can fire strictly
                # before the tail crosses the ejection link, warp the
                # clock to the delivery cycle and deliver inline — with
                # the window empty this is observationally identical to
                # popping the would-be delivery event (its time would be
                # tail_done, and nothing outranks it)
                if tail_done < bound:
                    sim.now = tail_done
                    self._deliver(msg)
                    return
                sim.call_at(tail_done, self._deliver, msg)
                return
            header_next = grant + cycles_per_flit
            # express transit: fuse the next hop inline iff no queued
            # event can fire at or before the header's arrival there (a
            # same-cycle event would outrank the hop's would-be event on
            # seq, so the comparison is strict)
            if header_next < bound:
                now = header_next
                continue
            sim.call_at(header_next, self._arrive, msg, hop)
            return

    def _forward(self, msg: Message, hop: int, header_at: int) -> None:
        """Grant the hop's output link and move the worm one stage on.

        Only reached for worms entering the network mid-fabric (the
        switch-served DIR_UPDATE continuation); the per-hop fast path in
        :meth:`_arrive` inlines this same sequence.  SanitizedFabric
        wraps this method to register fabricated worms.
        """
        hops = msg.hops
        switch, link = hops[hop]
        flits = msg.flits
        grant, tail_done = link.reserve(flits, header_at + switch.switch_delay)
        switch.msgs_routed += 1
        switch.flits_routed += flits
        next_hop = hop + 1
        call_at = self.sim.call_at
        if next_hop == len(hops):
            call_at(tail_done, self._deliver, msg)
        else:
            call_at(
                grant + switch.cycles_per_flit, self._arrive, msg, next_hop
            )

    def _deliver(self, msg: Message) -> None:
        msg.delivered_at = self.sim.now
        self.stats.msgs_delivered += 1
        tracer = self._tracer
        if tracer is not None:
            self._trace_delivery(msg, tracer)
        handler = self._handlers[msg.dst]
        if handler is None:
            raise NetworkError(f"no NI handler attached for node {msg.dst}")
        handler(msg)
        # worm recycling: after the handler returns, a message nothing
        # retained (acks, invalidations, writebacks) goes back to the
        # pool; the refcount guard in release vetoes anything still held
        # by a transaction, a home slot, or the sanitizer
        self.pool.release(msg)

    def _trace_delivery(self, msg: Message, tracer: Tracer) -> None:
        """Record the delivered worm's leg span and its flow linkage."""
        kind = msg.kind
        track = f"ni{msg.src}"
        args = {
            "msg": msg.id, "addr": msg.addr, "src": msg.src, "dst": msg.dst,
            "flits": msg.flits,
        }
        txn = msg.transaction
        if txn is not None:
            args["txn"] = txn.id
        start = msg.created_at if msg.created_at >= 0 else msg.injected_at
        tracer.async_span(
            track, kind.value, "msg", msg.id, start, msg.delivered_at, args
        )
        if txn is not None:
            # flow arrows bind the request leg to its reply leg, across
            # whatever track the reply ends up on (home or a switch)
            if kind in _FLOW_REQUESTS:
                tracer.flow_start(track, "txn", txn.id, start)
            elif kind in _FLOW_REPLIES:
                tracer.flow_end(track, "txn", txn.id, msg.delivered_at)

    # ------------------------------------------------------------------
    # switch-cache service
    # ------------------------------------------------------------------
    def _serve_from_switch(
        self,
        msg: Message,
        switch: Switch,
        hop: int,
        data: int,
        ready_at: int,
        now: int,
    ) -> None:
        """A READ hit in ``switch``'s cache: reply + directory update.

        ``now`` is the worm's logical header-arrival cycle — equal to
        ``sim.now`` on the classic path, but earlier than the executing
        event's time when the express loop (§12) intercepts mid-fusion.
        """
        stage = switch.stage
        self.stats.record_switch_hit(stage)
        tracer = self._tracer
        if tracer is not None:
            tracer.instant(
                switch.trace_track, "sc_hit", now,
                {"addr": msg.addr, "requester": msg.src, "stage": stage},
            )
            # an intercepted request never reaches _deliver, so its leg
            # span and flow arrow are recorded here: the leg truthfully
            # ends at the serving switch, not at the home
            txn = msg.transaction
            track = f"ni{msg.src}"
            start = msg.created_at if msg.created_at >= 0 else msg.injected_at
            args = {
                "msg": msg.id, "addr": msg.addr, "src": msg.src,
                "dst": msg.dst, "flits": msg.flits, "served_by": "switch",
            }
            if txn is not None:
                args["txn"] = txn.id
            tracer.async_span(
                track, msg.kind.value, "msg", msg.id, start, now, args,
            )
            if txn is not None and msg.kind in _FLOW_REQUESTS:
                tracer.flow_start(track, "txn", txn.id, start)
        reply = self.pool.make(
            MsgKind.DATA_S,
            src=msg.dst,  # protocol-wise the reply stands in for the home's
            dst=msg.src,
            addr=msg.addr,
            flits=1 + _data_flits(msg),
            data=data,
            payload={
                "served_by": "switch",
                "served_stage": stage,
                "served_switch": switch.id,
                "proc": msg.payload.get("proc"),
            },
            transaction=msg.transaction,
        )
        reply.created_at = now
        reply.injected_at = ready_at
        # retrace the request's traversed prefix back to the requester:
        # routes are deterministic per (src, dst), so (src, dst, hop)
        # names the prefix exactly — derived from the resolved route, not
        # from the per-hop msg.trace, which is only recorded when tracing
        # (cached: the route list is shared across worms, read-only by
        # convention, exactly like the forward tables)
        key = (msg.src, msg.dst, hop)
        cached = self._reply_routes.get(key)
        if cached is None:
            route = msg.route[hop::-1]
            cached = (route, self._resolve(route, msg.src))
            self._reply_routes[key] = cached
        reply.route, reply.hops = cached
        if self._record_route:
            reply.trace.append(switch.id)
        self._forward(reply, 0, header_at=ready_at)
        # the request continues to the home as a 1-flit directory update;
        # it carries the version the switch served so the home can detect
        # staleness even after an intervening writer has written back
        msg.kind = MsgKind.DIR_UPDATE
        msg.flits = 1
        msg.payload["requester"] = msg.src
        msg.payload["sc_version"] = data
        self._forward(msg, hop, header_at=now)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def switch_cache_blocks(self) -> List[Tuple[SwitchId, int, int]]:
        """All (switch, block_addr, version) resident in switch caches."""
        found = []
        for sid, switch in self.switches.items():
            engine = switch.cache_engine
            if engine is None:
                continue
            for addr, line in engine.array.resident_blocks():
                found.append((sid, addr, line.data))
        return found

    def utilization_by_stage(self) -> Dict[int, float]:
        """Mean output-link utilization per MIN stage (0..stages-1)."""
        sums: Dict[int, float] = {}
        counts: Dict[int, int] = {}
        for sid, switch in self.switches.items():
            stage = sid[0]
            for link in switch.outputs().values():
                sums[stage] = sums.get(stage, 0.0) + link.utilization()
                counts[stage] = counts.get(stage, 0) + 1
        return {
            stage: sums[stage] / counts[stage]
            for stage in sorted(sums)
        }

    def hottest_links(self, top: int = 5):
        """The ``top`` busiest links as (switch, toward, msgs, mean queue)."""
        rows = []
        for sid, switch in self.switches.items():
            for neighbor, link in switch.outputs().items():
                if link.msgs:
                    rows.append(
                        (sid, neighbor, link.msgs, link.mean_queueing_delay())
                    )
        rows.sort(key=lambda r: (-r[3], -r[2]))
        return rows[:top]

    def injection_queue_delay(self) -> float:
        """Mean NI injection queueing delay across all nodes (cycles)."""
        delays = [
            link.mean_queueing_delay() for link in self._inject_links.values()
        ]
        return sum(delays) / len(delays) if delays else 0.0


def _data_flits(msg: Message) -> int:
    """Payload flits for the block size implied by the request's transaction."""
    txn = msg.transaction
    block_size = getattr(txn, "block_size", 64) if txn is not None else 64
    return block_size // 8
