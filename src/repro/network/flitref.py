"""Flit-level wormhole reference network (validation model).

The production fabric (:mod:`repro.network.fabric`) moves whole messages
with per-hop pipelined timing — fast enough for execution-driven runs,
but it approximates wormhole flow control (DESIGN.md substitution
table).  This module is the *reference* it is validated against: a true
flit-level wormhole network with

* per-input-port virtual channels of finite depth,
* credit-based flow control (a flit advances only when the downstream
  VC has a free slot),
* wormhole semantics — a worm holds its VC and its switch path while
  blocked, so backpressure propagates upstream,
* per-output-link serialization of one flit per ``cycles_per_flit``.

It exposes the same ``inject``/handler interface as ``Fabric`` and can
drive full machine runs on switch-cache-free configurations
(``SystemConfig(network_model="flit")``).  ``tests/test_flit_reference.py``
and experiment A8 check that the production model tracks this reference
on microbenchmarks (within one cycle) and on end-to-end application runs
(GE within 0.5 %) — the evidence behind the "who-wins conclusions are
unaffected" claim in DESIGN.md.

The implementation pumps once per cycle while flits are in flight,
roughly an order of magnitude slower than the message-level fabric; use
it for validation, not production sweeps.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..errors import NetworkError
from ..sim.engine import Simulator
from .fabric import FabricStats
from .message import Message, MessagePool, MsgKind
from .topology import BminTopology

DeliverFn = Callable[[Message], None]

#: port identifier: ("sw", stage, row) or ("node", n)
Port = Tuple


def _vertex(x) -> Port:
    if isinstance(x, tuple) and len(x) == 2:
        return ("sw",) + x
    return ("node", x)


class _Worm:
    """Bookkeeping for one in-flight message."""

    __slots__ = ("msg", "hops", "flits_left", "ready_at", "hooked_at")

    def __init__(self, msg: Message, hops: List[Port]) -> None:
        self.msg = msg
        self.hops = hops  # vertices from source to destination
        self.flits_left = msg.flits
        self.ready_at = 0
        self.hooked_at = None  # last vertex whose engine hooks ran


class _SwitchSlot:
    """Holder giving the flit network the same per-switch engine slot
    interface as :class:`repro.network.switch.Switch`."""

    __slots__ = ("id", "stage", "cache_engine")

    def __init__(self, sid) -> None:
        self.id = sid
        self.stage = sid[0]
        self.cache_engine = None


class _Channel:
    """One directed link with per-VC buffers at its receiving end."""

    __slots__ = ("src", "dst", "vcs", "vc_depth", "busy_until", "arrivals")

    def __init__(self, src: Port, dst: Port, vc_count: int, vc_depth: int) -> None:
        self.src = src
        self.dst = dst
        # each VC buffer holds (worm, is_header, is_tail, enqueue_time)
        self.vcs: List[Deque] = [deque() for _ in range(vc_count)]
        self.vc_depth = vc_depth
        self.busy_until = 0
        self.arrivals = 0

    def vc_free_slots(self, vc: int) -> int:
        return self.vc_depth - len(self.vcs[vc])


class FlitNetwork:
    """Flit-accurate wormhole BMIN (validation reference)."""

    def __init__(
        self,
        sim: Simulator,
        topology: BminTopology,
        vc_count: int = 2,
        vc_depth: int = 4,
        cycles_per_flit: int = 4,
        switch_delay: int = 4,
        pool: Optional[MessagePool] = None,
    ) -> None:
        self.sim = sim
        self.topo = topology
        # id source for switch-fabricated worms; the reference model never
        # recycles (its _Worm wrappers outlive delivery), it only needs the
        # machine's id stream
        self.pool = pool if pool is not None else MessagePool()
        self.vc_count = vc_count
        self.vc_depth = vc_depth
        self.cycles_per_flit = cycles_per_flit
        self.switch_delay = switch_delay
        self._handlers: Dict[int, DeliverFn] = {}
        self.stats = FabricStats()
        # lightweight per-switch holders so cache engines can be embedded
        # exactly as in the message-level fabric
        self.switches: Dict = {
            sid: _SwitchSlot(sid) for sid in topology.switches()
        }
        self._inject_wait_sum = 0
        # channels keyed by (src_vertex, dst_vertex)
        self.channels: Dict[Tuple[Port, Port], _Channel] = {}
        # per-worm state: current (channel, vc) its head occupies, or the
        # injection queue; worms advance hop by hop
        self._worm_vc: Dict[int, Tuple[_Channel, int]] = {}
        self._inject_queues: Dict[int, Deque[_Worm]] = {}
        self._pump_scheduled = False
        self.delivered = 0
        self._build()

    # ------------------------------------------------------------------
    def switch_cache_blocks(self):
        """All (switch, block_addr, version) resident in switch caches."""
        found = []
        for sid, slot in self.switches.items():
            engine = slot.cache_engine
            if engine is None:
                continue
            for addr, line in engine.array.resident_blocks():
                found.append((sid, addr, line.data))
        return found

    def injection_queue_delay(self) -> float:
        if self.stats.msgs_injected == 0:
            return 0.0
        return self._inject_wait_sum / self.stats.msgs_injected

    def install_cache_engines(self, factory) -> None:
        """Embed a CAESAR engine in every switch (as in Fabric)."""
        for sid, slot in self.switches.items():
            slot.cache_engine = factory(sid)

    def _build(self) -> None:
        for sid in self.topo.switches():
            for up in self.topo.up_neighbors(sid):
                self._add_channel(_vertex(sid), _vertex(up))
                self._add_channel(_vertex(up), _vertex(sid))
        for node in range(self.topo.num_nodes):
            sw = _vertex(self.topo.node_switch(node))
            self._add_channel(("node", node), sw)
            self._add_channel(sw, ("node", node))
            self._inject_queues[("node", node)] = deque()
        for sid in self.topo.switches():
            # switch-originated worms (switch-cache replies, dir updates)
            self._inject_queues[("sw",) + sid] = deque()

    def _add_channel(self, src: Port, dst: Port) -> None:
        self.channels[(src, dst)] = _Channel(
            src, dst, self.vc_count, self.vc_depth
        )

    def attach_node(self, node: int, handler: DeliverFn) -> None:
        self._handlers[node] = handler

    # ------------------------------------------------------------------
    def inject(self, msg: Message) -> None:
        if msg.src == msg.dst:
            raise NetworkError("local messages must not enter the network")
        if msg.created_at < 0:
            msg.created_at = self.sim.now
        path = self.topo.path(msg.src, msg.dst)
        hops: List[Port] = (
            [("node", msg.src)]
            + [_vertex(s) for s in path]
            + [("node", msg.dst)]
        )
        worm = _Worm(msg, hops)
        self.stats.msgs_injected += 1
        self.stats.flits_injected += msg.flits
        self._inject_queues[("node", msg.src)].append(worm)
        self._schedule_pump()

    # ------------------------------------------------------------------
    # the pump: one pass per cycle-ish advancing every movable flit
    # ------------------------------------------------------------------
    def _schedule_pump(self) -> None:
        if not self._pump_scheduled:
            self._pump_scheduled = True
            self.sim.schedule(1, self._pump)

    def _pump(self) -> None:
        self._pump_scheduled = False
        moved = self._advance_all()
        if moved or self._work_pending():
            self._schedule_pump()

    def _work_pending(self) -> bool:
        if any(q for q in self._inject_queues.values()):
            return True
        return any(
            vc for ch in self.channels.values() for vc in ch.vcs
        )

    def _advance_all(self) -> bool:
        now = self.sim.now
        moved = False
        # 1) movements out of switch input VCs toward next channels
        for channel in self.channels.values():
            dst = channel.dst
            if dst[0] != "sw":
                continue  # ejection handled below
            for vc_index, vc in enumerate(channel.vcs):
                if not vc:
                    continue
                worm, is_header, is_tail, ready_at = vc[0]
                if ready_at + self.switch_delay > now:
                    continue
                if is_header and self._engine_hooks(worm, dst, vc, now):
                    moved = True
                    continue
                next_channel, next_vc = self._next_leg(worm, dst)
                if next_channel is None:
                    continue
                if next_channel.busy_until > now:
                    moved = True  # still draining; keep pumping
                    continue
                if next_channel.vc_free_slots(next_vc) <= 0:
                    continue  # backpressure: the worm holds this VC
                vc.popleft()
                self._transmit(worm, next_channel, next_vc, is_header, is_tail)
                moved = True
        # 2) ejection: flits arriving at node vertices
        for channel in self.channels.values():
            if channel.dst[0] != "node":
                continue
            node = channel.dst[1]
            for vc in channel.vcs:
                while vc:
                    worm, _h, is_tail, ready_at = vc[0]
                    if ready_at > now:
                        break
                    vc.popleft()
                    moved = True
                    if is_tail:
                        self._deliver(worm, node)
        # 3) injections: NIs and switch-originated worms feed their
        # first channel
        for vertex, queue in self._inject_queues.items():
            if not queue:
                continue
            worm = queue[0]
            if worm.ready_at > now:
                moved = True
                continue
            channel = self.channels[(vertex, worm.hops[1])]
            if channel.busy_until > now:
                moved = True
                continue
            vc_index = worm.msg.id % self.vc_count
            if channel.vc_free_slots(vc_index) <= 0:
                continue
            is_header = worm.flits_left == worm.msg.flits
            if is_header and worm.msg.injected_at < 0:
                worm.msg.injected_at = now
                self._inject_wait_sum += now - worm.msg.created_at
            is_tail = worm.flits_left == 1
            self._transmit(worm, channel, vc_index, is_header, is_tail)
            worm.flits_left -= 1
            if is_tail:
                queue.popleft()
            moved = True
        return moved

    def _engine_hooks(self, worm: _Worm, at: Port, vc, now: int) -> bool:
        """Run CAESAR hooks for a header flit at switch vertex ``at``.

        Returns True when the worm was consumed (switch-cache hit).
        """
        if worm.hooked_at == at:
            return False  # hooks already ran at this switch
        worm.hooked_at = at
        slot = self.switches.get(at[1:])
        engine = slot.cache_engine if slot is not None else None
        if engine is None:
            return False
        msg = worm.msg
        kind = msg.kind
        # the pump drives the clock one cycle at a time, so the header's
        # logical arrival is exactly ``now``; pass it explicitly, as the
        # message-granularity fabric's express loop does
        if kind.snoops_switch_caches:
            engine.snoop(msg, now)
            return False
        if kind.switch_cacheable:
            engine.try_deposit(msg, now)
            return False
        if kind.interceptable:
            served = engine.try_intercept(msg, now)
            if served is None:
                return False
            data, ready_at = served
            # consume the 1-flit request at this switch
            vc.popleft()
            self.stats.record_switch_hit(at[1])
            index = worm.hops.index(at)
            # reply retraces the traversed prefix back to the source
            reply = self.pool.make(
                MsgKind.DATA_S,
                src=msg.dst,
                dst=msg.src,
                addr=msg.addr,
                flits=1 + self._block_flits(msg),
                data=data,
                payload={
                    "served_by": "switch",
                    "served_stage": at[1],
                    "served_switch": at[1:],
                    "proc": msg.payload.get("proc"),
                },
                transaction=msg.transaction,
            )
            reply.created_at = now
            reply_hops = list(reversed(worm.hops[:index + 1]))
            self._inject_at(at, reply, reply_hops, not_before=ready_at)
            # the request continues to the home as a 1-flit dir update
            update = self.pool.make(
                MsgKind.DIR_UPDATE,
                src=msg.src,
                dst=msg.dst,
                addr=msg.addr,
                flits=1,
                payload={"requester": msg.src,
                         "sc_version": data,
                         "proc": msg.payload.get("proc")},
                transaction=msg.transaction,
            )
            update.created_at = now
            update_hops = worm.hops[index:]
            self._inject_at(at, update, update_hops)
            return True
        return False

    def _block_flits(self, msg: Message) -> int:
        txn = msg.transaction
        block_size = getattr(txn, "block_size", 64) if txn is not None else 64
        return block_size // 8

    def _inject_at(self, vertex: Port, msg: Message, hops, not_before=None):
        """Queue a switch-originated worm for transmission from ``vertex``."""
        worm = _Worm(msg, hops)
        if not_before is not None:
            worm.ready_at = not_before
        self.stats.msgs_injected += 1
        self.stats.flits_injected += msg.flits
        self._inject_queues[vertex].append(worm)
        self._schedule_pump()

    def _next_leg(self, worm: _Worm, at: Port):
        """The channel/VC a worm's flits use leaving vertex ``at``."""
        index = worm.hops.index(at)
        nxt = worm.hops[index + 1]
        channel = self.channels[(at, nxt)]
        return channel, worm.msg.id % self.vc_count

    def _transmit(self, worm, channel, vc_index, is_header, is_tail) -> None:
        now = self.sim.now
        channel.busy_until = now + self.cycles_per_flit
        channel.arrivals += 1
        arrival = now + self.cycles_per_flit
        channel.vcs[vc_index].append((worm, is_header, is_tail, arrival))
        self._schedule_pump()

    def _deliver(self, worm: _Worm, node: int) -> None:
        worm.msg.delivered_at = self.sim.now
        self.delivered += 1
        self.stats.msgs_delivered += 1
        handler = self._handlers.get(node)
        if handler is None:
            raise NetworkError(f"no handler attached for node {node}")
        handler(worm.msg)
