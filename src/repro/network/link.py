"""Physical link model.

A link is a 16-bit-wide wire pair clocked at the switch frequency; one
8-byte flit takes ``cycles_per_flit`` (= 64/16 = 4) cycles to cross
(Cavallino [6]).  Each *direction* of a bidirectional link is a separate
:class:`Link`, because the BMIN's forward (requests) and backward (replies)
traffic never contend with each other for wires.

A worm of L flits occupies the link for ``L * cycles_per_flit`` cycles;
grants are in request order, which reproduces the FIFO/age arbitration of
the paper's switches at message granularity.
"""

from __future__ import annotations

from typing import Tuple

from ..sim.engine import Simulator
from ..sim.resource import Timeline


class Link:
    """One directed channel between two network elements."""

    __slots__ = ("timeline", "name", "cycles_per_flit", "msgs", "flits")

    def __init__(self, sim: Simulator, name: str, cycles_per_flit: int = 4) -> None:
        self.timeline = Timeline(sim, name)
        self.name = name
        self.cycles_per_flit = cycles_per_flit
        self.msgs = 0
        self.flits = 0

    def reserve(self, flits: int, earliest: int) -> Tuple[int, int]:
        """Reserve the link for a worm of ``flits`` flits.

        Returns ``(grant, tail_done)``: the cycle the header starts crossing
        and the cycle the tail has fully crossed.

        The grant arithmetic of :meth:`Timeline.reserve` is inlined on the
        link's own (never shared) timeline: this runs once per worm per
        hop, and the extra call level measurably shows up there.
        """
        duration = flits * self.cycles_per_flit
        timeline = self.timeline
        now = timeline.sim.now
        request_at = earliest if earliest > now else now
        grant = timeline._free_at
        if grant < request_at:
            grant = request_at
        timeline._free_at = grant + duration
        timeline.busy_cycles += duration
        timeline.reservations += 1
        timeline.queued_cycles += grant - request_at
        self.msgs += 1
        self.flits += flits
        return grant, grant + duration

    def utilization(self) -> float:
        return self.timeline.utilization()

    def mean_queueing_delay(self) -> float:
        return self.timeline.mean_queueing_delay()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} msgs={self.msgs}>"
