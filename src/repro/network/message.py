"""Wire-level message model for the wormhole BMIN.

Messages are wormhole *worms*: a header flit carrying routing and
transaction information followed by payload flits.  Flits are 8 bytes and
links are 16 bits wide, so one flit takes 4 link cycles (Spider [10] /
Cavallino [6] parameters).  The header format follows the paper's Figure 9:
destination, source, message type, and block address travel in the header,
which is all the CAESAR cache engine needs to snoop or intercept a worm as
it enters a switch.

The simulator moves whole messages between components but preserves
flit-level *timing*: per-hop serialization is ``flits * cycles_per_flit``.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Dict, List, Optional, Tuple


class MsgKind(enum.Enum):
    """Transaction/packet types carried in the header's type field."""

    # processor -> home requests (forward direction)
    READ = "read"              # GETS: read a shareable copy
    READX = "readx"            # GETX: read with ownership (write miss)
    UPGRADE = "upgrade"        # S -> M ownership request (no data needed)
    # home -> processor replies (backward direction)
    DATA_S = "data_s"          # data reply, shared/clean (switch-cacheable)
    DATA_X = "data_x"          # data reply, exclusive (never switch-cached)
    DATA_E = "data_e"          # MESI: clean-exclusive reply (never switch-cached)
    UPGR_ACK = "upgr_ack"      # upgrade acknowledgment
    # coherence actions
    INV = "inv"                # invalidation (snoops switch caches en route)
    INV_ACK = "inv_ack"        # sharer -> home invalidation ack
    RECALL = "recall"          # home -> owner: downgrade M->S and return data
    RECALL_X = "recall_x"      # home -> owner: invalidate and return data
    RECALL_REPLY = "recall_reply"  # owner -> home: recalled data
    WRITEBACK = "writeback"    # owner -> home: evicted dirty block
    WB_ACK = "wb_ack"          # home -> owner
    # the switch-cache bookkeeping message: a READ served by a switch cache
    # continues to the home node as this 1-flit directory update
    DIR_UPDATE = "dir_update"

    @property
    def carries_data(self) -> bool:
        return self in _DATA_KINDS

    @property
    def switch_cacheable(self) -> bool:
        """Only clean shared data is deposited into switch caches."""
        return self is MsgKind.DATA_S

    @property
    def interceptable(self) -> bool:
        """Requests a switch cache may serve directly."""
        return self is MsgKind.READ

    @property
    def snoops_switch_caches(self) -> bool:
        """Messages that purge matching switch-cache blocks as they pass.

        Invalidations cover all sharer paths.  Ownership transfers
        (RECALL_X en route to an owner) and writebacks do not create new
        stale copies but RECALL (M->S downgrade) does not purge.  The
        conservative set here matches the paper: invalidation traffic
        snoops; everything else passes untouched.
        """
        return self is MsgKind.INV


_DATA_KINDS = frozenset(
    {
        MsgKind.DATA_S,
        MsgKind.DATA_X,
        MsgKind.DATA_E,
        MsgKind.RECALL_REPLY,
        MsgKind.WRITEBACK,
    }
)

_msg_ids = itertools.count()

#: 8-byte flits as in Spider [10] and Cavallino [6].
FLIT_BYTES = 8


def flits_for(kind: MsgKind, block_size: int) -> int:
    """Worm length in flits: 1 header flit (+ data flits for data replies)."""
    if kind.carries_data:
        return 1 + block_size // FLIT_BYTES
    return 1


class Message:
    """One worm in flight.

    ``trace`` accumulates the (stage, row) of every switch the header has
    traversed, which gives the switch-served replies their retrace route
    and the statistics their per-stage attribution.
    """

    __slots__ = (
        "id",
        "kind",
        "src",
        "dst",
        "addr",
        "flits",
        "data",
        "payload",
        "created_at",
        "injected_at",
        "delivered_at",
        "trace",
        "route",
        "hops",
        "transaction",
    )

    def __init__(
        self,
        kind: MsgKind,
        src: int,
        dst: int,
        addr: int,
        flits: int,
        data: Optional[int] = None,
        payload: Optional[Dict[str, Any]] = None,
        transaction: Optional[object] = None,
    ) -> None:
        self.id = next(_msg_ids)
        self.kind = kind
        self.src = src
        self.dst = dst
        self.addr = addr
        self.flits = flits
        self.data = data
        self.payload = payload if payload is not None else {}
        self.created_at: int = -1
        self.injected_at: int = -1
        self.delivered_at: int = -1
        self.trace: List[Tuple[int, int]] = []
        self.route: Optional[List[Tuple[int, int]]] = None
        # the route resolved to ((switch, out-link), ...) hop objects by
        # the fabric at injection, so per-hop forwarding is pure indexing
        self.hops: Optional[Tuple[Any, ...]] = None
        self.transaction = transaction

    def header_fields(self) -> Dict[str, int]:
        """The fields encoded in the 8-byte header flit (paper Fig. 9)."""
        return {
            "dst": self.dst,
            "src": self.src,
            "type": list(MsgKind).index(self.kind),
            "addr": self.addr,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Msg#{self.id} {self.kind.value} {self.src}->{self.dst} "
            f"addr={self.addr:#x} flits={self.flits}>"
        )
