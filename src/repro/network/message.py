"""Wire-level message model for the wormhole BMIN.

Messages are wormhole *worms*: a header flit carrying routing and
transaction information followed by payload flits.  Flits are 8 bytes and
links are 16 bits wide, so one flit takes 4 link cycles (Spider [10] /
Cavallino [6] parameters).  The header format follows the paper's Figure 9:
destination, source, message type, and block address travel in the header,
which is all the CAESAR cache engine needs to snoop or intercept a worm as
it enters a switch.

The simulator moves whole messages between components but preserves
flit-level *timing*: per-hop serialization is ``flits * cycles_per_flit``.

Integer-coded kinds and the worm pool (DESIGN.md §10)
-----------------------------------------------------
Every :class:`MsgKind` member carries a small-int ``code`` (its header
type field), and the kind predicates — ``carries_data``,
``switch_cacheable``, ``interceptable``, ``snoops_switch_caches`` — are
precomputed index-by-code tuples, so hot sites pay one tuple subscript
instead of an enum property call.

:class:`MessagePool` owns message identity and reuse for one fabric:

* ids come from a per-pool counter, so two machines in one process
  (differential tests, the model checker) get independent, reproducible
  id streams;
* delivered worms are recycled through a refcount-guarded free list that
  mirrors the PR 4 event pool (``sim/engine.py``): a worm returns to the
  pool only when the delivery plumbing holds the last references, so any
  message retained by a transaction, a home-controller slot, or the
  sanitizer's ledger simply escapes reuse.

Bare ``Message(...)`` construction (tests, micro-benchmarks, the flit
reference model's callers) still works and draws ids from a module-level
fallback counter.
"""

from __future__ import annotations

import enum
import itertools
from sys import getrefcount as _getrefcount
from typing import Any, Dict, List, Optional, Tuple


class MsgKind(enum.Enum):
    """Transaction/packet types carried in the header's type field."""

    code: int  # small-int header type (assigned below, in member order)

    # processor -> home requests (forward direction)
    READ = "read"              # GETS: read a shareable copy
    READX = "readx"            # GETX: read with ownership (write miss)
    UPGRADE = "upgrade"        # S -> M ownership request (no data needed)
    # home -> processor replies (backward direction)
    DATA_S = "data_s"          # data reply, shared/clean (switch-cacheable)
    DATA_X = "data_x"          # data reply, exclusive (never switch-cached)
    DATA_E = "data_e"          # MESI: clean-exclusive reply (never switch-cached)
    UPGR_ACK = "upgr_ack"      # upgrade acknowledgment
    # coherence actions
    INV = "inv"                # invalidation (snoops switch caches en route)
    INV_ACK = "inv_ack"        # sharer -> home invalidation ack
    RECALL = "recall"          # home -> owner: downgrade M->S and return data
    RECALL_X = "recall_x"      # home -> owner: invalidate and return data
    RECALL_REPLY = "recall_reply"  # owner -> home: recalled data
    WRITEBACK = "writeback"    # owner -> home: evicted dirty block
    # writebacks are currently fire-and-forget; WB_ACK is reserved for an
    # acknowledged-writeback variant  # repro: allow[F-DEAD]
    WB_ACK = "wb_ack"          # home -> owner
    # the switch-cache bookkeeping message: a READ served by a switch cache
    # continues to the home node as this 1-flit directory update
    DIR_UPDATE = "dir_update"

    @property
    def carries_data(self) -> bool:
        return CARRIES_DATA[self.code]

    @property
    def switch_cacheable(self) -> bool:
        """Only clean shared data is deposited into switch caches."""
        return SWITCH_CACHEABLE[self.code]

    @property
    def interceptable(self) -> bool:
        """Requests a switch cache may serve directly."""
        return INTERCEPTABLE[self.code]

    @property
    def snoops_switch_caches(self) -> bool:
        """Messages that purge matching switch-cache blocks as they pass.

        Invalidations cover all sharer paths.  Ownership transfers
        (RECALL_X en route to an owner) and writebacks do not create new
        stale copies but RECALL (M->S downgrade) does not purge.  The
        conservative set here matches the paper: invalidation traffic
        snoops; everything else passes untouched.
        """
        return SNOOPS_SWITCH_CACHES[self.code]


for _code, _kind in enumerate(MsgKind):
    _kind.code = _code

_DATA_KINDS = frozenset(
    {
        MsgKind.DATA_S,
        MsgKind.DATA_X,
        MsgKind.DATA_E,
        MsgKind.RECALL_REPLY,
        MsgKind.WRITEBACK,
    }
)

#: index-by-code predicate tables (the hot-path form of the properties)
CARRIES_DATA: Tuple[bool, ...] = tuple(k in _DATA_KINDS for k in MsgKind)
SWITCH_CACHEABLE: Tuple[bool, ...] = tuple(k is MsgKind.DATA_S for k in MsgKind)
INTERCEPTABLE: Tuple[bool, ...] = tuple(k is MsgKind.READ for k in MsgKind)
SNOOPS_SWITCH_CACHES: Tuple[bool, ...] = tuple(k is MsgKind.INV for k in MsgKind)

#: fallback id stream for messages built outside any pool
_msg_ids = itertools.count()

#: 8-byte flits as in Spider [10] and Cavallino [6].
FLIT_BYTES = 8


def flits_for(kind: MsgKind, block_size: int) -> int:
    """Worm length in flits: 1 header flit (+ data flits for data replies)."""
    if CARRIES_DATA[kind.code]:
        return 1 + block_size // FLIT_BYTES
    return 1


class Message:
    """One worm in flight.

    ``trace`` accumulates the (stage, row) of every switch the header has
    traversed, which gives the switch-served replies their retrace route
    and the statistics their per-stage attribution.
    """

    __slots__ = (
        "id",
        "kind",
        "src",
        "dst",
        "addr",
        "flits",
        "data",
        "payload",
        "created_at",
        "injected_at",
        "delivered_at",
        "trace",
        "route",
        "hops",
        "transaction",
    )

    def __init__(
        self,
        kind: MsgKind,
        src: int,
        dst: int,
        addr: int,
        flits: int,
        data: Optional[int] = None,
        payload: Optional[Dict[str, Any]] = None,
        transaction: Optional[object] = None,
        msg_id: int = -1,
    ) -> None:
        self.id = next(_msg_ids) if msg_id < 0 else msg_id
        self.kind = kind
        self.src = src
        self.dst = dst
        self.addr = addr
        self.flits = flits
        self.data = data
        self.payload = payload if payload is not None else {}
        self.created_at: int = -1
        self.injected_at: int = -1
        self.delivered_at: int = -1
        self.trace: List[Tuple[int, int]] = []
        self.route: Optional[List[Tuple[int, int]]] = None
        # the route resolved to ((switch, out-link), ...) hop objects by
        # the fabric at injection, so per-hop forwarding is pure indexing
        self.hops: Optional[Tuple[Any, ...]] = None
        self.transaction = transaction

    def header_fields(self) -> Dict[str, int]:
        """The fields encoded in the 8-byte header flit (paper Fig. 9)."""
        return {
            "dst": self.dst,
            "src": self.src,
            "type": self.kind.code,
            "addr": self.addr,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Msg#{self.id} {self.kind.value} {self.src}->{self.dst} "
            f"addr={self.addr:#x} flits={self.flits}>"
        )


#: free-list bound — enough for the in-flight ack/inv churn of a large
#: machine without pinning memory (same sizing rationale as the event pool)
_FREE_MAX = 512

#: refcount of a worm whose only holders are the delivery plumbing when
#: ``release`` inspects it: the scheduler's args tuple + the fabric's
#: ``_deliver`` local + ``release``'s parameter + getrefcount's argument.
#: Anything else still pointing at the message (a Transaction's
#: ``req_msg``/``reply_msg``, a HomeTxn slot, the sanitizer ledger, a
#: SanitizedFabric stack frame) raises the count and vetoes reuse.
_RELEASE_REFS = 4


class MessagePool:
    """Per-fabric message identity + a refcount-guarded worm free list.

    One pool serves one machine: every protocol message drawn from it gets
    the next id in that machine's private stream, and worms the fabric has
    fully delivered are reset and reused instead of reallocated.
    """

    __slots__ = ("block_size", "_free", "_next_id", "_data_flits")

    def __init__(self, block_size: int = 64, start_id: int = 0) -> None:
        self.block_size = block_size
        self._data_flits = 1 + block_size // FLIT_BYTES
        self._free: List[Message] = []
        self._next_id = start_id

    def make(
        self,
        kind: MsgKind,
        src: int,
        dst: int,
        addr: int,
        data: Optional[int] = None,
        payload: Optional[Dict[str, Any]] = None,
        transaction: Optional[object] = None,
        flits: int = -1,
    ) -> Message:
        """A fresh-looking worm: recycled when possible, else allocated."""
        if flits < 0:
            flits = self._data_flits if CARRIES_DATA[kind.code] else 1
        msg_id = self._next_id
        self._next_id = msg_id + 1
        free = self._free
        if free:
            msg = free.pop()
            msg.id = msg_id
            msg.kind = kind
            msg.src = src
            msg.dst = dst
            msg.addr = addr
            msg.flits = flits
            msg.data = data
            if payload is None:
                msg.payload.clear()  # reuse the dict
            else:
                msg.payload = payload
            msg.created_at = -1
            msg.injected_at = -1
            msg.delivered_at = -1
            msg.trace.clear()  # reuse the list
            msg.route = None
            msg.hops = None
            msg.transaction = transaction
            return msg
        return Message(
            kind, src, dst, addr, flits, data, payload, transaction,
            msg_id=msg_id,
        )

    def release(self, msg: Message) -> None:
        """Return a delivered worm to the free list if nothing holds it."""
        if len(self._free) < _FREE_MAX and _getrefcount(msg) == _RELEASE_REFS:
            # break reference cycles / drop payloads before pooling
            msg.transaction = None
            msg.data = None
            msg.hops = None
            self._free.append(msg)
