"""Crossbar switch model (paper Figure 10).

The base switch is a 4x4 bidirectional crossbar: two left-side links
(toward the nodes) and two right-side links (toward higher stages), each
bidirectional.  Internally it arbitrates among 8 virtual-channel candidates
with the Spider age technique [10]; at message granularity this is FIFO
grant order on each output link, which :class:`~repro.sim.resource.Timeline`
provides.  Crossing the switch — arbitration plus traversal to the link
transmitter — costs ``switch_delay`` cycles (4 in the paper).

A switch optionally embeds a cache engine (CAESAR, see
:mod:`repro.core.caesar`); the fabric invokes the engine's hooks as worms
arrive, so this module stays a pure crossbar.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, TYPE_CHECKING

from ..errors import NetworkError
from ..sim.engine import Simulator
from .link import Link

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..core.caesar import CaesarEngine


class Switch:
    """One BMIN switching element with per-output-link grant timelines."""

    __slots__ = (
        "sim", "id", "stage", "switch_delay", "cycles_per_flit", "_out",
        "cache_engine", "msgs_routed", "flits_routed", "trace_track",
    )

    def __init__(
        self,
        sim: Simulator,
        switch_id,
        switch_delay: int = 4,
        cycles_per_flit: int = 4,
    ) -> None:
        self.sim = sim
        self.id = switch_id
        self.stage = switch_id[0]
        self.switch_delay = switch_delay
        self.cycles_per_flit = cycles_per_flit
        # outgoing links keyed by neighbor: a SwitchId tuple or an int node id
        self._out: Dict[Hashable, Link] = {}
        self.cache_engine: Optional["CaesarEngine"] = None
        # statistics
        self.msgs_routed = 0
        self.flits_routed = 0
        # precomputed tracer track name (avoids per-hop formatting)
        self.trace_track = f"switch{self.stage}.{switch_id[1]}"

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def add_output(self, neighbor: Hashable) -> Link:
        """Create the outgoing link toward ``neighbor`` (switch id or node)."""
        if neighbor in self._out:
            raise NetworkError(f"duplicate output {self.id} -> {neighbor}")
        link = Link(
            self.sim,
            name=f"sw{self.id}->{neighbor}",
            cycles_per_flit=self.cycles_per_flit,
        )
        self._out[neighbor] = link
        return link

    def output_to(self, neighbor: Hashable) -> Link:
        link = self._out.get(neighbor)
        if link is None:
            raise NetworkError(f"switch {self.id} has no output to {neighbor}")
        return link

    def has_output(self, neighbor: Hashable) -> bool:
        return neighbor in self._out

    # ------------------------------------------------------------------
    # forwarding
    # ------------------------------------------------------------------
    def forward(self, flits: int, neighbor: Hashable, header_at: int):
        """Arbitrate and transmit a worm toward ``neighbor``.

        ``header_at`` is when the worm's header is available at this switch.
        Returns ``(grant, header_next, tail_done)``: grant time on the output
        link, header arrival time at the neighbor, and the time the tail has
        fully crossed the link.
        """
        return self.forward_on(self.output_to(neighbor), flits, header_at)

    def forward_on(self, link: Link, flits: int, header_at: int):
        """:meth:`forward` with the output link already resolved.

        The fabric resolves each worm's route into (switch, link) hop
        objects once at injection, so the per-hop output-dict lookup
        disappears from the hot path.
        """
        grant, tail_done = link.reserve(flits, earliest=header_at + self.switch_delay)
        self.msgs_routed += 1
        self.flits_routed += flits
        return grant, grant + self.cycles_per_flit, tail_done

    def outputs(self) -> Dict[Hashable, Link]:
        return dict(self._out)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Switch {self.id} outs={list(self._out)}>"
