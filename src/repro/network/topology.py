"""Bidirectional MIN (BMIN) topology and turnaround routing.

The interconnect is the paper's Figure 7a: an N-node BMIN built from
2k x 2k crossbar switches, N/k switches per stage, log_k N stages.  For the
default system (N=16, k=2) that is 8 four-by-four switches in each of 4
stages — 32 switches total.

Wiring is the standard indirect binary-cube (butterfly) pattern: switch
``(s, w)`` has up links to ``(s+1, w)`` (straight) and ``(s+1, w ^ (1<<s))``
(cross).  Node ``n`` attaches to stage-0 switch ``n >> 1`` on port ``n & 1``.

Routing is *turnaround*: ascend to the first stage at which the source and
destination rows coincide modulo the remaining bits, then descend,
correcting one row bit per stage.  Two properties the switch-cache protocol
depends on are enforced here and checked by tests:

* **Uniqueness** — the path between two nodes is deterministic.
* **Reversal symmetry** — ``path(a, b) == reversed(path(b, a))``, achieved
  by computing the canonical path for the (min, max) endpoint pair and
  walking it in the required direction.  This guarantees that a data reply
  retraces its request, that copies deposited by replies lie on the unique
  home-to-sharer path, and therefore that invalidations (which follow the
  same path) snoop every switch that can hold a copy — the paper's
  tree-cover argument.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import ConfigError

SwitchId = Tuple[int, int]  # (stage, row)

#: all-pairs route tables shared by every topology instance of a given
#: size.  Routing is static per topology, and an experiment harness builds
#: hundreds of same-sized machines, so the table is computed once per
#: ``num_nodes`` for the lifetime of the process.  The cached lists are
#: shared — callers must treat returned paths as read-only (they already
#: did: the per-instance cache handed out shared lists too).
_ROUTE_TABLES: Dict[int, Dict[Tuple[int, int], List[SwitchId]]] = {}


class BminTopology:
    """Geometry and routing of a k=2 butterfly BMIN for ``num_nodes`` nodes."""

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 2 or num_nodes & (num_nodes - 1):
            raise ConfigError(f"num_nodes must be a power of two >= 2, got {num_nodes}")
        self.num_nodes = num_nodes
        self.k = 2
        self.stages = max(1, num_nodes.bit_length() - 1)  # log2(N)
        self.rows = num_nodes // 2  # switches per stage
        table = _ROUTE_TABLES.get(num_nodes)
        if table is None:
            table = self._build_route_table()
            _ROUTE_TABLES[num_nodes] = table
        self._path_cache = table

    def _build_route_table(self) -> Dict[Tuple[int, int], List[SwitchId]]:
        """Precompute every pair's route (canonical path + its reversal)."""
        table: Dict[Tuple[int, int], List[SwitchId]] = {}
        for a in range(self.num_nodes):
            table[(a, a)] = []
            for b in range(a + 1, self.num_nodes):
                canon = self._canonical_path(a, b)
                table[(a, b)] = canon
                table[(b, a)] = list(reversed(canon))
        return table

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def switches(self) -> List[SwitchId]:
        return [(s, w) for s in range(self.stages) for w in range(self.rows)]

    def node_switch(self, node: int) -> SwitchId:
        """Stage-0 switch a node attaches to."""
        self._check_node(node)
        return (0, node >> 1)

    def node_port(self, node: int) -> int:
        """Left-side port index (0 or 1) of the node on its stage-0 switch."""
        self._check_node(node)
        return node & 1

    def up_neighbors(self, switch: SwitchId) -> List[SwitchId]:
        stage, row = switch
        if stage >= self.stages - 1:
            return []
        return [(stage + 1, row), (stage + 1, row ^ (1 << stage))]

    def down_neighbors(self, switch: SwitchId) -> List[SwitchId]:
        stage, row = switch
        if stage == 0:
            return []
        return [(stage - 1, row), (stage - 1, row ^ (1 << (stage - 1)))]

    def are_connected(self, a: SwitchId, b: SwitchId) -> bool:
        return b in self.up_neighbors(a) or b in self.down_neighbors(a)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def turn_stage(self, a: int, b: int) -> int:
        """Stage at which the path between nodes a and b turns around."""
        self._check_node(a)
        self._check_node(b)
        wa, wb = a >> 1, b >> 1
        if wa == wb:
            return 0
        return (wa ^ wb).bit_length()

    def path(self, a: int, b: int) -> List[SwitchId]:
        """The unique switch path from node ``a`` to node ``b``.

        Returns the ordered list of (stage, row) switches the header
        traverses.  ``path(a, a)`` is empty (local access, no network).
        """
        route = self._path_cache.get((a, b))
        if route is None:
            # every valid pair is precomputed; a miss is a bad node id
            self._check_node(a)
            self._check_node(b)
        return route

    def _canonical_path(self, a: int, b: int) -> List[SwitchId]:
        """Canonical path for a < b: straight ascent from a, morph descent to b."""
        wa, wb = a >> 1, b >> 1
        if wa == wb:
            return [(0, wa)]
        t = (wa ^ wb).bit_length()
        ascent = [(s, wa) for s in range(t + 1)]
        descent = []
        row = wa
        for s in range(t - 1, -1, -1):
            bit = wb & (1 << s)
            row = (row & ~(1 << s)) | bit
            descent.append((s, row))
        return ascent + descent

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ConfigError(f"node {node} out of range [0, {self.num_nodes})")

    def to_networkx(self):
        """The switch/node graph as an undirected networkx graph.

        Switch vertices are ``("sw", stage, row)``; node vertices are
        ``("node", n)``.  Useful for cross-validation (shortest paths)
        and visualization.
        """
        import networkx as nx

        graph = nx.Graph()
        for sid in self.switches():
            graph.add_node(("sw",) + sid)
        for sid in self.switches():
            for up in self.up_neighbors(sid):
                graph.add_edge(("sw",) + sid, ("sw",) + up)
        for node in range(self.num_nodes):
            graph.add_edge(("node", node), ("sw",) + self.node_switch(node))
        return graph

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BminTopology N={self.num_nodes} stages={self.stages} "
            f"rows={self.rows}>"
        )
