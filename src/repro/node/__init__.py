"""Processor-side node assembly."""

from .node import Node
from .processor import Processor
from .sync import BarrierManager, LockManager

__all__ = ["Node", "Processor", "BarrierManager", "LockManager"]
