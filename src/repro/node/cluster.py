"""Intra-node clustering: processor stacks and the cluster bus.

The paper's CC-NUMA context is "small bus-based processor-memory clusters
connected by a scalable interconnect" [2][12][14][15].  With
``SystemConfig.procs_per_node > 1`` each node hosts several processor
stacks (processor + L1/L2 + write buffer + MSHRs) that share the node's
bus, network interface, network cache, and home memory.

Coherence is hierarchical, as in DASH [14]:

* the **directory tracks nodes** — an invalidation addressed to a node
  purges every stack's caches (and the network cache) in that node;
* the **cluster bus snoops siblings** before a miss leaves the node: a
  sibling's owned copy is transferred (or downgraded) across the bus, a
  sibling's shared copy supplies data, and only true node misses become
  directory transactions.

Per-block operations from different stacks of one node are serialized
through a FIFO (the bus's transaction order), which removes intra-node
races by construction; distinct blocks overlap, sharing only the bus's
occupancy timeline for timing.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..cache.hierarchy import CacheHierarchy
from ..cache.states import CODE_EXCLUSIVE, LineState
from ..cache.writebuffer import WriteBuffer
from ..coherence.messages import Transaction
from ..errors import ProtocolError
from ..sim.engine import Simulator
from ..sim.resource import Timeline
from .processor import Processor


class ProcStack:
    """One processor's private stack inside a node.

    Exposes the execution context interface the :class:`Processor` model
    expects (``hierarchy``, ``write_buffer``, ``stats``, ``barriers``,
    ``kick_drain``, ``issue-`` hooks, ...); ``node_id`` here is the
    *global processor id* used for statistics and synchronization, while
    network addressing uses the owning node.
    """

    def __init__(self, sim: Simulator, node, proc_id: int, config) -> None:
        self.sim = sim
        self.node = node
        self.node_id = proc_id  # global processor id (Processor-facing name)
        self.proc_id = proc_id
        self.config = config
        block = config.block_size
        self.hierarchy = CacheHierarchy(
            config.l1_size, config.l2_size, block,
            l1_assoc=config.l1_assoc, l2_assoc=config.l2_assoc,
            node_id=proc_id,
        )
        self.write_buffer = WriteBuffer(config.write_buffer_entries, block)
        self.processor = Processor(
            sim, self,
            l1_cycles=config.l1_hit_cycles,
            l2_cycles=config.l2_hit_cycles,
            quantum=config.quantum,
            trace_values=config.trace_values,
        )
        self._wb_waiters: List[Callable[[], None]] = []
        self._draining = False
        self._drain_started = 0
        self.write_trace: List[Tuple[str, int, int, int]] = []

    # ------------------------------------------------------------------
    # context interface used by Processor
    # ------------------------------------------------------------------
    @property
    def stats(self):
        return self.node.stats

    @property
    def barriers(self):
        return self.node.barriers

    @property
    def locks(self):
        return self.node.locks

    @property
    def l2ctrl(self):
        # Processor issues reads via the cluster bus; this shim keeps the
        # historical `node.l2ctrl.issue_read` call site working
        return self

    def sync_addr(self, kind: str, sync_id: int) -> int:
        return self.node.sync_addr(kind, sync_id)

    def on_processor_done(self) -> None:
        self.node.on_stack_done(self)

    # ------------------------------------------------------------------
    # miss issue (through the cluster bus)
    # ------------------------------------------------------------------
    def issue_read(self, addr: int, callback) -> None:
        self.node.bus.submit("read", self, addr, callback)

    def issue_write(self, addr: int, callback) -> None:
        self.node.bus.submit("write", self, addr, callback)

    # ------------------------------------------------------------------
    # write-buffer drain engine (one per stack)
    # ------------------------------------------------------------------
    def kick_drain(self) -> None:
        if self._draining:
            return
        block = self.write_buffer.begin_drain()
        if block is None:
            return
        self._draining = True
        self._drain_started = self.sim.now
        probe = self.hierarchy.write_probe(block)
        if probe.action == "hit":
            self._apply_store(block)
            self.sim.schedule(self.config.l2_write_cycles, self._drain_done)
        else:
            self.issue_write(block, self._drain_owned)

    def _drain_owned(self, txn) -> None:
        self._apply_store(
            txn.addr if isinstance(txn, Transaction) else txn
        )
        if isinstance(txn, Transaction):
            self.stats.record_write_txn(self.proc_id, txn)
        self._drain_done()

    def _apply_store(self, block: int) -> None:
        data = self.hierarchy.l2.probe_data(block)
        if data is None:
            raise ProtocolError(
                f"proc {self.proc_id}: store drain lost ownership of {block:#x}",
                node=self.proc_id, addr=block,
            )
        new_version = data + 1
        self.hierarchy.perform_write(block, new_version)
        if self.config.trace_values:
            self.write_trace.append(("w", block, new_version, self.sim.now))

    def _drain_done(self) -> None:
        self.write_buffer.finish_drain()
        self._draining = False
        tracer = self.sim.tracer
        if tracer is not None:
            started = self._drain_started
            tracer.complete(
                f"proc{self.proc_id}", "wb_drain", started,
                self.sim.now - started,
            )
        waiters, self._wb_waiters = self._wb_waiters, []
        for waiter in waiters:
            waiter()
        self.kick_drain()

    def wait_wb_change(self, waiter: Callable[[], None]) -> None:
        self._wb_waiters.append(waiter)
        self.kick_drain()


class _BusOp:
    __slots__ = ("kind", "stack", "block", "callback", "enqueued")

    def __init__(self, kind, stack, block, callback, enqueued) -> None:
        self.kind = kind
        self.stack = stack
        self.block = block
        self.callback = callback
        self.enqueued = enqueued


class ClusterBus:
    """Per-node snoopy bus: sibling service or hand-off to the directory.

    Operations to the same block are serialized; a network transaction in
    flight holds its block's queue until the reply lands.
    """

    def __init__(self, sim: Simulator, node, bus_cycles: int) -> None:
        self.sim = sim
        self.node = node
        self.bus_cycles = bus_cycles
        self.wire = Timeline(sim, f"bus{node.node_id}")
        self._queues: Dict[int, Deque[_BusOp]] = {}
        self._active: Dict[int, _BusOp] = {}
        # statistics
        self.sibling_reads = 0
        self.sibling_transfers = 0
        self.ops = 0

    # ------------------------------------------------------------------
    def submit(self, kind: str, stack: ProcStack, addr: int, callback) -> None:
        block = (addr // self.node.config.block_size) * self.node.config.block_size
        op = _BusOp(kind, stack, block, callback, self.sim.now)
        self.ops += 1
        if block in self._active:
            self._queues.setdefault(block, deque()).append(op)
        else:
            self._start(op)

    def _start(self, op: _BusOp) -> None:
        self._active[op.block] = op
        start = self.wire.reserve(self.bus_cycles)
        self.sim.call_at(start + self.bus_cycles, self._execute, op)

    def _complete(self, op: _BusOp, result=None) -> None:
        del self._active[op.block]
        # promote the next queued op *before* running the callback: the
        # callback may resume a processor that synchronously submits a new
        # op to this block, which must queue behind the promoted one (and
        # must not slip into the just-vacated active slot, where the
        # promotion would clobber it and break per-block serialization)
        queue = self._queues.get(op.block)
        if queue:
            nxt = queue.popleft()
            if not queue:
                del self._queues[op.block]
            self._start(nxt)
        if op.callback is not None:
            op.callback(result)

    # ------------------------------------------------------------------
    def _siblings(self, stack: ProcStack):
        return [s for s in self.node.stacks if s is not stack]

    def _execute(self, op: _BusOp) -> None:
        if op.kind == "read":
            self._execute_read(op)
        else:
            self._execute_write(op)

    def _execute_read(self, op: _BusOp) -> None:
        stack, block = op.stack, op.block
        # the stack may have been filled while this op was queued
        if stack.hierarchy.l2.probe_state(block):
            txn = self._local_txn("read", op, served_by="l2")
            self._complete(op, txn)
            return
        # snoop siblings (cache-to-cache within the cluster)
        for sibling in self._siblings(stack):
            sib_line = sibling.hierarchy.l2.probe(block)
            if sib_line is None:
                continue
            if sib_line.state.owned():
                # migratory transfer: the owned copy *moves* to the reader
                # so exactly one stack keeps holding the node's owned copy
                # (the directory's MODIFIED entry stays answerable)
                _state, data = sibling.hierarchy.invalidate(block)
                victim = stack.hierarchy.fill(block, LineState.MODIFIED, data,
                                              fill_l1=True)
            else:
                data = sib_line.data
                victim = stack.hierarchy.fill(block, LineState.SHARED, data,
                                              fill_l1=True)
            self.node.spill(victim)
            self.sibling_reads += 1
            txn = self._local_txn("read", op, served_by="cluster", data=data)
            self._complete(op, txn)
            return
        # shared network cache
        netcache = self.node.netcache
        if netcache is not None and self.node.home_of(block) != self.node.node_id:
            data, done = netcache.lookup(block)
            if data is not None:
                self.sim.call_at(done, self._netcache_read_done, op, data)
                return
            # miss: probe latency before the request departs
            self.sim.call_at(done, self._network_read, op)
            return
        self._network_read(op)

    def _netcache_read_done(self, op: _BusOp, data: int) -> None:
        victim = op.stack.hierarchy.fill(op.block, LineState.SHARED, data,
                                         fill_l1=True)
        self.node.spill(victim)
        txn = self._local_txn("read", op, served_by="netcache", data=data)
        self._complete(op, txn)

    def _network_read(self, op: _BusOp) -> None:
        self.node.netctrl(op.stack).issue_read(
            op.block, lambda txn: self._complete(op, txn)
        )

    def _execute_write(self, op: _BusOp) -> None:
        stack, block = op.stack, op.block
        code = stack.hierarchy.l2.probe_state(block)
        if code >= CODE_EXCLUSIVE:
            txn = self._local_txn("write", op, served_by="l2")
            self._complete(op, txn)
            return
        # an owned sibling copy transfers ownership across the bus
        for sibling in self._siblings(stack):
            sib_line = sibling.hierarchy.l2.probe(block)
            if sib_line is not None and sib_line.state.owned():
                _state, data = sibling.hierarchy.invalidate(block)
                victim = stack.hierarchy.fill(block, LineState.MODIFIED, data)
                self.node.spill(victim)
                self.sibling_transfers += 1
                txn = self._local_txn("write", op, served_by="cluster",
                                      data=data)
                self._complete(op, txn)
                return
        # otherwise the directory must be involved (upgrade or read-excl);
        # grab a sibling's shared data first so an upgrade suffices
        if not code:
            for sibling in self._siblings(stack):
                sib_line = sibling.hierarchy.l2.probe(block)
                if sib_line is not None:
                    victim = stack.hierarchy.fill(
                        block, LineState.SHARED, sib_line.data
                    )
                    self.node.spill(victim)
                    break

        def owned(txn: Transaction) -> None:
            # ownership granted globally: purge sibling shared copies
            for sibling in self._siblings(stack):
                sibling.hierarchy.invalidate(block)
            self._complete(op, txn)

        self.node.netctrl(stack).issue_write(block, owned)

    # ------------------------------------------------------------------
    def _local_txn(self, kind: str, op: _BusOp, served_by: str,
                   data: Optional[int] = None) -> Transaction:
        """A transaction record for an intra-node (bus-served) operation."""
        txn = Transaction(
            "read" if kind == "read" else "write",
            op.block, op.stack.proc_id, self.node.node_id,
            self.node.config.block_size, op.enqueued,
        )
        txn.completed_at = self.sim.now
        txn.served_by = served_by
        if data is None:
            line = op.stack.hierarchy.l2.probe(op.block)
            txn.data = line.data if line is not None else None
        else:
            txn.data = data
        return txn
