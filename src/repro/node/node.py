"""Node assembly: processor stacks + cluster bus + NI + home memory.

Each CC-NUMA node hosts ``procs_per_node`` processor stacks (see
:mod:`repro.node.cluster`) sharing the node's cluster bus, network
interface, optional network cache, and memory-side stack (the node's
slice of shared memory, its full-map directory, and the home
controller).  The directory tracks **nodes**; intra-node coherence is the
cluster bus's job.

With the default ``procs_per_node = 1`` this degenerates to the paper's
configuration: one stack, a bus with no siblings to snoop.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..cache.states import CODE_EXCLUSIVE, LineState
from ..coherence.directory import Directory
from ..coherence.home import HomeController
from ..coherence.l2ctrl import NodeController
from ..errors import ProtocolError
from ..memory.dram import MemoryModule
from ..memory.netcache import NetworkCache
from ..memory.nic import NetworkInterface
from ..network.fabric import Fabric
from ..network.message import Message, MessagePool, MsgKind
from ..sim.engine import Simulator
from .cluster import ClusterBus, ProcStack
from .sync import BarrierManager, LockManager

_HOME_KINDS = frozenset(
    {
        MsgKind.READ,
        MsgKind.READX,
        MsgKind.UPGRADE,
        MsgKind.DIR_UPDATE,
        MsgKind.WRITEBACK,
        MsgKind.RECALL_REPLY,
        MsgKind.INV_ACK,
    }
)


class Node:
    """One processor-memory node (possibly a bus-based cluster)."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        config,  # SystemConfig
        fabric: Optional[Fabric],
        home_of: Callable[[int], int],
        barriers: BarrierManager,
        locks: LockManager,
        stats,  # MachineStats
        sync_addr: Callable[[str, int], int],
        on_done: Callable[[int], None],
        pool: Optional[MessagePool] = None,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.config = config
        self.stats = stats
        # the machine's shared worm pool (one id stream per machine);
        # standalone nodes in unit tests get a private one
        self._pool = pool if pool is not None else MessagePool(config.block_size)
        self.barriers = barriers
        self.locks = locks
        self.home_of = home_of
        self._sync_addr = sync_addr
        self._on_done = on_done
        block = config.block_size
        ppn = config.procs_per_node
        first_proc = node_id * ppn
        self.ni = NetworkInterface(sim, node_id, fabric, config.local_bus_cycles)
        self.netcache: Optional[NetworkCache] = None
        if config.netcache_size:
            self.netcache = NetworkCache(
                sim, node_id,
                size=config.netcache_size, block_size=block,
                assoc=config.netcache_assoc,
                access_cycles=config.netcache_access_cycles,
            )
        self.stacks: List[ProcStack] = [
            ProcStack(sim, self, first_proc + k, config) for k in range(ppn)
        ]
        self.bus = ClusterBus(sim, self, config.local_bus_cycles)
        # one network-side controller (MSHRs) per stack; the bus owns the
        # network-cache probe, so the controllers skip it on issue but
        # still fill/purge the shared array on replies/invalidations
        self._netctrls: List[NodeController] = [
            NodeController(
                sim, node_id, stack.hierarchy, self.ni, home_of, block,
                netcache=self.netcache, proc_id=stack.proc_id,
                probe_netcache=False, pool=self._pool,
            )
            for stack in self.stacks
        ]
        self.directory = Directory(node_id, block)
        self.memory = MemoryModule(
            sim, node_id,
            access_cycles=config.memory_access_cycles,
            bus_cycles=config.memory_bus_cycles,
        )
        self.home_ctrl = HomeController(
            sim, node_id, self.directory, self.memory,
            send=lambda msg, at: self.ni.send(msg, at=at),
            block_size=block,
            protocol=config.protocol,
            pool=self._pool,
        )
        self.ni.attach(self._dispatch)
        # statistics
        self.invs_received = 0

    # ------------------------------------------------------------------
    # single-processor compatibility accessors
    # ------------------------------------------------------------------
    @property
    def processor(self):
        return self.stacks[0].processor

    @property
    def hierarchy(self):
        return self.stacks[0].hierarchy

    @property
    def write_buffer(self):
        return self.stacks[0].write_buffer

    @property
    def write_trace(self):
        return self.stacks[0].write_trace

    @property
    def l2ctrl(self) -> NodeController:
        return self._netctrls[0]

    def netctrl(self, stack: ProcStack) -> NodeController:
        return self._netctrls[stack.proc_id - self.stacks[0].proc_id]

    # ------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, msg: Message) -> None:
        kind = msg.kind
        if kind in _HOME_KINDS:
            if msg.dst != self.node_id:
                raise ProtocolError(
                    f"misrouted {msg!r}", node=self.node_id, addr=msg.addr
                )
            self.home_ctrl.receive(msg)
        elif kind is MsgKind.INV:
            self._on_inv(msg)
        elif kind in (MsgKind.RECALL, MsgKind.RECALL_X):
            self._on_recall(msg)
        else:
            # data replies and upgrade acks go to the requesting stack
            proc = msg.payload.get("proc")
            if proc is None:
                ctrl = self._netctrls[0]
            else:
                ctrl = self._netctrls[proc - self.stacks[0].proc_id]
            ctrl.receive(msg)

    # ------------------------------------------------------------------
    # node-level coherence actions (the directory addresses nodes)
    # ------------------------------------------------------------------
    def _on_inv(self, msg: Message) -> None:
        self.invs_received += 1
        block = (msg.addr // self.config.block_size) * self.config.block_size
        if self.netcache is not None:
            self.netcache.invalidate(block)
        if not msg.payload.get("purge_only"):
            for stack, ctrl in zip(self.stacks, self._netctrls):
                stack.hierarchy.invalidate(block)
                ctrl.mark_pending_inval(block)
                ctrl.invs_received += 1
        if not msg.payload.get("no_ack"):
            ack = self._pool.make(MsgKind.INV_ACK, self.node_id, msg.src, block)
            self.ni.send(ack)

    def _on_recall(self, msg: Message) -> None:
        block = (msg.addr // self.config.block_size) * self.config.block_size
        reply = None
        for stack in self.stacks:
            if stack.hierarchy.state_code(block) >= CODE_EXCLUSIVE:
                if msg.kind is MsgKind.RECALL:
                    data = stack.hierarchy.downgrade(block)
                else:
                    _state, data = stack.hierarchy.invalidate(block)
                reply = self._pool.make(
                    MsgKind.RECALL_REPLY, self.node_id, msg.src, block,
                    data=data,
                )
                break
        if msg.kind is MsgKind.RECALL_X:
            # write-ownership moves off-node: purge every local copy
            if self.netcache is not None:
                self.netcache.invalidate(block)
            for stack in self.stacks:
                stack.hierarchy.invalidate(block)
        if reply is None:
            reply = self._pool.make(
                MsgKind.RECALL_REPLY, self.node_id, msg.src, block,
                payload={"no_data": True},
            )
        self.ni.send(reply)

    def spill(self, victim) -> None:
        """Send a displaced owned victim home (used by the cluster bus)."""
        self._netctrls[0]._spill(victim)

    # ------------------------------------------------------------------
    # glue
    # ------------------------------------------------------------------
    def sync_addr(self, kind: str, sync_id: int) -> int:
        return self._sync_addr(kind, sync_id)

    def on_stack_done(self, stack: ProcStack) -> None:
        self._on_done(stack.proc_id)
