"""In-order processor front-end with fast-forward execution.

The processor executes an application's operation stream:

``('r', addr)`` / ``('w', addr)`` — shared-memory loads and stores;
``('work', n)`` — n cycles of local computation (models the non-memory
instructions RSIM would execute);
``('barrier', k)`` / ``('lock', k)`` / ``('unlock', k)`` — synchronization.

**Fast-forward on hits.**  Cache hits and local work advance a *local
clock* without touching the event queue; the processor re-enters the
queue only on a miss, a synchronization point, a full write buffer, or
after running ``quantum`` cycles ahead of global time (which bounds the
causality skew of applying remote invalidations at event time — see
DESIGN.md).  This is what makes an execution-driven multiprocessor
simulation tractable in Python.

**Release consistency.**  Stores retire into the write buffer in one
cycle and the processor continues; loads that match a pending buffered
store are forwarded.  Barrier arrival and lock release first wait for
the write buffer to drain (the release fence), then perform a real
read-modify-write coherence transaction on the synchronization variable.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from ..cache.states import LineState
from ..coherence.messages import Transaction
from ..errors import SimulationError
from ..sim.engine import Simulator

Op = Tuple


class Processor:
    """One in-order processor executing an operation stream."""

    def __init__(
        self,
        sim: Simulator,
        node,  # Node (late-bound to avoid an import cycle)
        l1_cycles: int = 1,
        l2_cycles: int = 10,
        store_cycles: int = 1,
        quantum: int = 500,
        trace_values: bool = False,
    ) -> None:
        self.sim = sim
        self.node = node
        self.l1_cycles = l1_cycles
        self.l2_cycles = l2_cycles
        self.store_cycles = store_cycles
        self.quantum = quantum
        self.trace_values = trace_values
        self.time = 0  # local clock (>= sim.now except never behind on entry)
        self.done = False
        self.finish_time: Optional[int] = None
        self._ops: Optional[Iterator[Op]] = None
        self._pending_op: Optional[Op] = None
        self._stall_started: Optional[int] = None
        self._sync_label = "sync"  # span name for the current sync stall
        self.value_trace: List[Tuple[str, int, int, int]] = []
        # statistics
        self.ops_executed = 0
        self.read_stall_cycles = 0
        self.sync_stall_cycles = 0
        self.wb_stall_cycles = 0

    # ------------------------------------------------------------------
    # control
    # ------------------------------------------------------------------
    def start(self, ops: Iterable[Op]) -> None:
        self._ops = iter(ops)
        self.sim.schedule(0, self._resume)

    def _resume(self) -> None:
        """(Re-)enter the execution loop at global time."""
        self.time = max(self.time, self.sim.now)
        self._run()

    def _run(self) -> None:
        # The simulator's hottest loop: every cache hit and local-work op
        # executes here without touching the event queue.  Attribute
        # lookups are hoisted into locals, and the local clock / op
        # counter live in locals, written back before any exit (the
        # helpers called on exit paths read ``self.time``).  ``sim.now``
        # is constant for the whole loop — no events fire inside it.
        node = self.node
        stats = node.stats
        sim = self.sim
        now = sim.now
        quantum = self.quantum
        l1_cycles = self.l1_cycles
        l2_cycles = self.l2_cycles
        store_cycles = self.store_cycles
        trace_values = self.trace_values
        write_buffer = node.write_buffer
        wb_entries = write_buffer._entries
        wb_mask = write_buffer._neg_mask  # 0 = block size not a power of 2
        wb_block = write_buffer.block_size
        wb_push = write_buffer.push
        kick_drain = node.kick_drain
        # the two-level read probe is inlined below (instead of calling
        # CacheHierarchy.read) so the per-load ReadResult allocation and
        # call overhead disappear; the probe sequence — L1 lookup, L2
        # lookup, L1 refill on an L2 hit — is identical.  Hit statistics
        # accumulate in locals (hit_wb/hit_l1/hit_l2) and flush in one
        # bulk call at every loop exit.
        hierarchy = node.hierarchy
        l1 = hierarchy.l1
        l1_lookup_data = l1.lookup_data
        l2_lookup_data = hierarchy.l2.lookup_data
        l1_insert = l1.insert
        # coded-model L1 probe, inlined below (kept in lockstep with
        # CacheArray.lookup_data — same stats, same LRU updates): the
        # slot dict and column lists are stable for the array's
        # lifetime.  The obj escape hatch has no columns and keeps the
        # method call.
        l1_slot = getattr(l1, "_slot", None)
        if l1_slot is not None:
            l1_slot_get = l1_slot.get
            l1_states = l1._states
            l1_data = l1._data
            l1_lrus = l1._lrus
            l1_shift = l1._block_shift
            l1_is_lru = l1._lru
        else:
            l1_slot_get = None
        shared = LineState.SHARED
        node_id = node.node_id
        add_read_hits = stats.add_read_hits
        ops_iter = self._ops
        time = self.time
        ops_executed = self.ops_executed
        hit_wb = hit_l1 = hit_l2 = 0
        # a pending op exists only on re-entry after a full write buffer;
        # resolving it here keeps the per-op fetch a bare next()
        op = self._pending_op
        if op is not None:
            self._pending_op = None
        else:
            op = next(ops_iter, None)
        while True:
            if op is None:
                self.time = time
                self.ops_executed = ops_executed
                add_read_hits(node_id, hit_wb, hit_l1, hit_l2)
                self._begin_finish()
                return
            code = op[0]
            if code == "r":
                addr = op[1]
                # inlined WriteBuffer.contains (pending stores forward)
                block = addr & wb_mask if wb_mask else addr // wb_block * wb_block
                if block in wb_entries or block == write_buffer._draining:
                    time += l1_cycles
                    ops_executed += 1
                    hit_wb += 1
                else:
                    if l1_slot_get is not None:
                        i = l1_slot_get(addr >> l1_shift)
                        if i is None or not l1_states[i]:
                            l1.misses += 1
                            data = None
                        else:
                            if l1_is_lru:
                                l1._tick = tick = l1._tick + 1
                                l1_lrus[i] = tick
                            l1.hits += 1
                            data = l1_data[i]
                    else:
                        data = l1_lookup_data(addr)
                    if data is not None:
                        time += l1_cycles
                        ops_executed += 1
                        hit_l1 += 1
                        if trace_values:
                            self.value_trace.append(("r", addr, data, time))
                    else:
                        data = l2_lookup_data(addr)
                        if data is None:
                            self.time = time
                            self.ops_executed = ops_executed
                            add_read_hits(node_id, hit_wb, hit_l1, hit_l2)
                            self._start_read_miss(addr)
                            return
                        # L1 is no-write-allocate/write-through: refill clean
                        l1_insert(addr, shared, data)
                        time += l2_cycles
                        ops_executed += 1
                        hit_l2 += 1
                        if trace_values:
                            self.value_trace.append(("r", addr, data, time))
            elif code == "w":
                if wb_push(op[1]):
                    time += store_cycles
                    ops_executed += 1
                    # kick_drain()'s first check, hoisted: while a drain
                    # is in flight the call would return immediately
                    if not node._draining:
                        kick_drain()
                else:
                    # buffer full: wait for a drain to complete, then retry
                    self.time = time
                    self.ops_executed = ops_executed
                    add_read_hits(node_id, hit_wb, hit_l1, hit_l2)
                    self._pending_op = op
                    self._stall_started = time
                    node.wait_wb_change(self._retry_after_wb)
                    return
            elif code == "work":
                time += op[1]
                ops_executed += 1
            else:
                self.time = time
                self.ops_executed = ops_executed
                add_read_hits(node_id, hit_wb, hit_l1, hit_l2)
                if code == "barrier":
                    self._start_sync(op, is_barrier=True)
                    return
                if code == "lock":
                    self._start_sync(op, is_barrier=False)
                    return
                if code == "unlock":
                    self._start_unlock(op)
                    return
                raise SimulationError(f"unknown op {op!r}")
            # the retired op advanced the local clock; yield once it has
            # run a quantum ahead of global time.  Every entry into this
            # loop satisfies time - now < quantum (each exit path above
            # resumes at or after the saved local time), so checking
            # after each op matches checking before the next one.
            if time - now >= quantum:
                self.time = time
                self.ops_executed = ops_executed
                add_read_hits(node_id, hit_wb, hit_l1, hit_l2)
                sim.at(time, self._resume)
                return
            op = next(ops_iter, None)

    # ------------------------------------------------------------------
    # read misses
    # ------------------------------------------------------------------
    def _start_read_miss(self, addr: int) -> None:
        self._stall_started = self.time
        issue_at = self.time + self.l2_cycles  # miss detection through L1+L2
        if issue_at > self.sim.now:
            self.sim.call_at(issue_at, self._issue_read, addr)
        else:
            self._issue_read(addr)

    def _issue_read(self, addr: int) -> None:
        self.node.l2ctrl.issue_read(addr, self._read_done)

    def _read_done(self, txn: Transaction) -> None:
        stall = self.sim.now - self._stall_started
        self.read_stall_cycles += stall
        self._stall_started = None
        self.ops_executed += 1
        self.node.stats.record_read_txn(self.node.node_id, txn, stall)
        if self.trace_values:
            self.value_trace.append(("r", txn.addr, txn.data, self.sim.now))
        self._resume()

    def _retry_after_wb(self) -> None:
        if self._stall_started is not None:
            stall = max(0, self.sim.now - self._stall_started)
            self.wb_stall_cycles += stall
            tracer = self.sim.tracer
            if tracer is not None and stall > 0:
                tracer.complete(
                    f"proc{self.node.node_id}", "wb_full",
                    self.sim.now - stall, stall,
                )
            self._stall_started = None
        self._resume()

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------
    def _start_sync(self, op: Op, is_barrier: bool) -> None:
        """Barrier arrival / lock acquire: fence, RMW, then wait."""
        self._stall_started = self.time
        self._sync_label = "barrier" if is_barrier else "lock"
        self._fence_then(lambda: self._sync_rmw(op, is_barrier))

    def _fence_then(self, action: Callable[[], None]) -> None:
        """Wait (at local time) for the write buffer to drain, then act."""
        node = self.node

        def check() -> None:
            if node.write_buffer.is_empty():
                action()
            else:
                node.wait_wb_change(check)

        if self.time > self.sim.now:
            self.sim.at(self.time, check)
        else:
            check()

    def _sync_rmw(self, op: Op, is_barrier: bool) -> None:
        kind, sync_id = op[0], op[1]
        addr = self.node.sync_addr(kind if kind != "lock" else "lock", sync_id)
        self._rmw(addr, lambda: self._sync_arrived(op, is_barrier))

    def _rmw(self, addr: int, then: Callable[[], None]) -> None:
        """Read-modify-write the synchronization variable coherently."""
        node = self.node
        hierarchy = node.hierarchy
        probe = hierarchy.write_probe(addr)
        if probe.action == "hit":
            hierarchy.perform_write(addr, hierarchy.l2.probe_data(addr) + 1)
            self.sim.schedule(2, then)
        else:
            def owned(txn: Transaction) -> None:
                hierarchy.perform_write(addr, hierarchy.l2.probe_data(addr) + 1)
                then()

            node.l2ctrl.issue_write(addr, owned)

    def _sync_arrived(self, op: Op, is_barrier: bool) -> None:
        node = self.node
        if is_barrier:
            node.barriers.arrive(op[1], node.node_id, self._sync_done)
        else:
            node.locks.acquire(op[1], node.node_id, self._sync_done)

    def _sync_done(self) -> None:
        if self._stall_started is not None:
            stall = max(0, self.sim.now - self._stall_started)
            self.sync_stall_cycles += stall
            tracer = self.sim.tracer
            if tracer is not None and stall > 0:
                tracer.complete(
                    f"proc{self.node.node_id}", self._sync_label,
                    self.sim.now - stall, stall,
                )
            self._stall_started = None
        self._resume()

    def _start_unlock(self, op: Op) -> None:
        self._stall_started = self.time
        self._sync_label = "unlock"

        def release() -> None:
            addr = self.node.sync_addr("lock", op[1])
            self._rmw(addr, lambda: self._finish_unlock(op[1]))

        self._fence_then(release)

    def _finish_unlock(self, lock_id: int) -> None:
        self.node.locks.release(lock_id, self.node.node_id)
        self._sync_done()

    # ------------------------------------------------------------------
    # termination
    # ------------------------------------------------------------------
    def _begin_finish(self) -> None:
        def finished() -> None:
            if not self.done:
                self.done = True
                self.finish_time = max(self.time, self.sim.now)
                self.node.on_processor_done()

        self._fence_then(finished)
