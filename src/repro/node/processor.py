"""In-order processor front-end with fast-forward execution.

The processor executes an application's operation stream:

``('r', addr)`` / ``('w', addr)`` — shared-memory loads and stores;
``('work', n)`` — n cycles of local computation (models the non-memory
instructions RSIM would execute);
``('barrier', k)`` / ``('lock', k)`` / ``('unlock', k)`` — synchronization.

**Fast-forward on hits.**  Cache hits and local work advance a *local
clock* without touching the event queue; the processor re-enters the
queue only on a miss, a synchronization point, a full write buffer, or
after running ``quantum`` cycles ahead of global time (which bounds the
causality skew of applying remote invalidations at event time — see
DESIGN.md).  This is what makes an execution-driven multiprocessor
simulation tractable in Python.

**Release consistency.**  Stores retire into the write buffer in one
cycle and the processor continues; loads that match a pending buffered
store are forwarded.  Barrier arrival and lock release first wait for
the write buffer to drain (the release fence), then perform a real
read-modify-write coherence transaction on the synchronization variable.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from ..apps.opstream import (
    OP_BARRIER,
    OP_LOCK,
    OP_LOOP,
    OP_R,
    OP_R_RUN,
    OP_UNLOCK,
    OP_W,
    OP_W_RUN,
    OP_WORK,
)
from ..cache.states import LineState
from ..coherence.messages import Transaction
from ..errors import SimulationError
from ..sim.engine import Simulator

Op = Tuple


class Processor:
    """One in-order processor executing an operation stream."""

    def __init__(
        self,
        sim: Simulator,
        node,  # Node (late-bound to avoid an import cycle)
        l1_cycles: int = 1,
        l2_cycles: int = 10,
        store_cycles: int = 1,
        quantum: int = 500,
        trace_values: bool = False,
    ) -> None:
        self.sim = sim
        self.node = node
        self.l1_cycles = l1_cycles
        self.l2_cycles = l2_cycles
        self.store_cycles = store_cycles
        self.quantum = quantum
        self.trace_values = trace_values
        self.time = 0  # local clock (>= sim.now except never behind on entry)
        self.done = False
        self.finish_time: Optional[int] = None
        self._ops: Optional[Iterator[Op]] = None
        self._pending_op: Optional[Op] = None
        # compiled front end (REPRO_OPS=compiled, DESIGN.md §13): chunk
        # cursor plus the progress of a partially executed superop, so a
        # miss, a full write buffer or a quantum yield can suspend a
        # run/loop mid-flight and resume it element-exact
        self._compiled = False
        self._chunks: Optional[Iterator[List[int]]] = None
        self._code: List[int] = []
        self._ip = 0
        self._run_op = 0        # OP_R_RUN or OP_W_RUN while _run_left > 0
        self._run_addr = 0
        self._run_stride = 0
        self._run_left = 0
        self._loop_body: List[int] = []  # (kind, base|cycles, stride) triples
        self._loop_iters = 0    # iterations remaining, current included
        self._loop_slot = 0     # offset of the next slot triple to execute
        self._loop_cost = -1    # cached batch flags; -1 = stale
        self._loop_nw = 0
        self._loop_batchable = False
        # scratch for the strip-mined loop batches (avoids per-batch lists)
        self._batch_cls: List[int] = []
        self._batch_alias: List[int] = []
        self._batch_wblocks: List[int] = []
        self._stall_started: Optional[int] = None
        self._sync_label = "sync"  # span name for the current sync stall
        self.value_trace: List[Tuple[str, int, int, int]] = []
        # statistics
        self.ops_executed = 0
        self.read_stall_cycles = 0
        self.sync_stall_cycles = 0
        self.wb_stall_cycles = 0

    # ------------------------------------------------------------------
    # control
    # ------------------------------------------------------------------
    def start(self, ops: Iterable[Op]) -> None:
        self._ops = iter(ops)
        self.sim.schedule(0, self._resume)

    def start_compiled(self, chunks: Iterable[List[int]]) -> None:
        """Begin executing an integer-coded chunk stream (DESIGN.md §13)."""
        self._chunks = iter(chunks)
        self._compiled = True
        self.sim.schedule(0, self._resume)

    def _resume(self) -> None:
        """(Re-)enter the execution loop at global time."""
        self.time = max(self.time, self.sim.now)
        if self._compiled:
            self._run_compiled()
        else:
            self._run()

    def _run(self) -> None:
        # The simulator's hottest loop: every cache hit and local-work op
        # executes here without touching the event queue.  Attribute
        # lookups are hoisted into locals, and the local clock / op
        # counter live in locals, written back before any exit (the
        # helpers called on exit paths read ``self.time``).  ``sim.now``
        # is constant for the whole loop — no events fire inside it.
        node = self.node
        stats = node.stats
        sim = self.sim
        now = sim.now
        quantum = self.quantum
        l1_cycles = self.l1_cycles
        l2_cycles = self.l2_cycles
        store_cycles = self.store_cycles
        trace_values = self.trace_values
        write_buffer = node.write_buffer
        wb_entries = write_buffer._entries
        wb_mask = write_buffer._neg_mask  # 0 = block size not a power of 2
        wb_block = write_buffer.block_size
        wb_push = write_buffer.push
        kick_drain = node.kick_drain
        # the two-level read probe is inlined below (instead of calling
        # CacheHierarchy.read) so the per-load ReadResult allocation and
        # call overhead disappear; the probe sequence — L1 lookup, L2
        # lookup, L1 refill on an L2 hit — is identical.  Hit statistics
        # accumulate in locals (hit_wb/hit_l1/hit_l2) and flush in one
        # bulk call at every loop exit.
        hierarchy = node.hierarchy
        l1 = hierarchy.l1
        l1_lookup_data = l1.lookup_data
        l2_lookup_data = hierarchy.l2.lookup_data
        l1_insert = l1.insert
        # coded-model L1 probe, inlined below (kept in lockstep with
        # CacheArray.lookup_data — same stats, same LRU updates): the
        # slot dict and column lists are stable for the array's
        # lifetime.  The obj escape hatch has no columns and keeps the
        # method call.
        l1_slot = getattr(l1, "_slot", None)
        if l1_slot is not None:
            l1_slot_get = l1_slot.get
            l1_states = l1._states
            l1_data = l1._data
            l1_lrus = l1._lrus
            l1_shift = l1._block_shift
            l1_is_lru = l1._lru
        else:
            l1_slot_get = None
        shared = LineState.SHARED
        node_id = node.node_id
        add_read_hits = stats.add_read_hits
        ops_iter = self._ops
        time = self.time
        ops_executed = self.ops_executed
        hit_wb = hit_l1 = hit_l2 = 0
        # a pending op exists only on re-entry after a full write buffer;
        # resolving it here keeps the per-op fetch a bare next()
        op = self._pending_op
        if op is not None:
            self._pending_op = None
        else:
            op = next(ops_iter, None)
        while True:
            if op is None:
                self.time = time
                self.ops_executed = ops_executed
                add_read_hits(node_id, hit_wb, hit_l1, hit_l2)
                self._begin_finish()
                return
            code = op[0]
            if code == "r":
                addr = op[1]
                # inlined WriteBuffer.contains (pending stores forward)
                block = addr & wb_mask if wb_mask else addr // wb_block * wb_block
                if block in wb_entries or block == write_buffer._draining:
                    time += l1_cycles
                    ops_executed += 1
                    hit_wb += 1
                else:
                    if l1_slot_get is not None:
                        i = l1_slot_get(addr >> l1_shift)
                        if i is None or not l1_states[i]:
                            l1.misses += 1
                            data = None
                        else:
                            if l1_is_lru:
                                l1._tick = tick = l1._tick + 1
                                l1_lrus[i] = tick
                            l1.hits += 1
                            data = l1_data[i]
                    else:
                        data = l1_lookup_data(addr)
                    if data is not None:
                        time += l1_cycles
                        ops_executed += 1
                        hit_l1 += 1
                        if trace_values:
                            self.value_trace.append(("r", addr, data, time))
                    else:
                        data = l2_lookup_data(addr)
                        if data is None:
                            self.time = time
                            self.ops_executed = ops_executed
                            add_read_hits(node_id, hit_wb, hit_l1, hit_l2)
                            self._start_read_miss(addr)
                            return
                        # L1 is no-write-allocate/write-through: refill clean
                        l1_insert(addr, shared, data)
                        time += l2_cycles
                        ops_executed += 1
                        hit_l2 += 1
                        if trace_values:
                            self.value_trace.append(("r", addr, data, time))
            elif code == "w":
                if wb_push(op[1]):
                    time += store_cycles
                    ops_executed += 1
                    # kick_drain()'s first check, hoisted: while a drain
                    # is in flight the call would return immediately
                    if not node._draining:
                        kick_drain()
                else:
                    # buffer full: wait for a drain to complete, then retry
                    self.time = time
                    self.ops_executed = ops_executed
                    add_read_hits(node_id, hit_wb, hit_l1, hit_l2)
                    self._pending_op = op
                    self._stall_started = time
                    node.wait_wb_change(self._retry_after_wb)
                    return
            elif code == "work":
                time += op[1]
                ops_executed += 1
            else:
                self.time = time
                self.ops_executed = ops_executed
                add_read_hits(node_id, hit_wb, hit_l1, hit_l2)
                if code == "barrier":
                    self._start_sync(op, is_barrier=True)
                    return
                if code == "lock":
                    self._start_sync(op, is_barrier=False)
                    return
                if code == "unlock":
                    self._start_unlock(op)
                    return
                raise SimulationError(f"unknown op {op!r}")
            # the retired op advanced the local clock; yield once it has
            # run a quantum ahead of global time.  Every entry into this
            # loop satisfies time - now < quantum (each exit path above
            # resumes at or after the saved local time), so checking
            # after each op matches checking before the next one.
            if time - now >= quantum:
                self.time = time
                self.ops_executed = ops_executed
                add_read_hits(node_id, hit_wb, hit_l1, hit_l2)
                sim.at(time, self._resume)
                return
            op = next(ops_iter, None)

    def _suspend_compiled(
        self,
        time: int,
        ops_executed: int,
        ip: int,
        run_op: int,
        run_addr: int,
        run_stride: int,
        run_left: int,
        loop_iters: int,
        loop_slot: int,
        loop_cost: int,
        loop_nw: int,
        loop_batchable: bool,
        hit_wb: int,
        hit_l1: int,
        hit_l2: int,
    ) -> None:
        """Write the compiled loop's locals back before any exit."""
        self.time = time
        self.ops_executed = ops_executed
        self._ip = ip
        self._run_op = run_op
        self._run_addr = run_addr
        self._run_stride = run_stride
        self._run_left = run_left
        self._loop_iters = loop_iters
        self._loop_slot = loop_slot
        self._loop_cost = loop_cost
        self._loop_nw = loop_nw
        self._loop_batchable = loop_batchable
        node = self.node
        node.stats.add_read_hits(node.node_id, hit_wb, hit_l1, hit_l2)

    def _run_compiled(self) -> None:
        # Compiled twin of _run, kept in lockstep op for op: it consumes
        # integer-coded chunks (apps/opstream.py) instead of a generator
        # and expands run/loop superops arithmetically.  The hoists, the
        # per-op costs, the quantum arithmetic and every exit path match
        # the generator loop exactly — the differential suites pin the
        # two modes bit-identical — but a hit run retires a whole cache
        # block per probe instead of re-entering the dispatch per
        # element.  Superop progress lives in locals and is written back
        # by _suspend_compiled whenever the loop exits.
        node = self.node
        sim = self.sim
        now = sim.now
        quantum = self.quantum
        l1_cycles = self.l1_cycles
        l2_cycles = self.l2_cycles
        store_cycles = self.store_cycles
        trace_values = self.trace_values
        write_buffer = node.write_buffer
        wb_entries = write_buffer._entries
        wb_mask = write_buffer._neg_mask  # 0 = block size not a power of 2
        wb_block = write_buffer.block_size
        wb_push = write_buffer.push
        kick_drain = node.kick_drain
        hierarchy = node.hierarchy
        l1 = hierarchy.l1
        l1_lookup_data = l1.lookup_data
        l2_lookup_data = hierarchy.l2.lookup_data
        l1_insert = l1.insert
        l1_slot = getattr(l1, "_slot", None)
        if l1_slot is not None:
            l1_slot_get = l1_slot.get
            l1_states = l1._states
            l1_data = l1._data
            l1_lrus = l1._lrus
            l1_shift = l1._block_shift
            l1_is_lru = l1._lru
        else:
            l1_slot_get = None
        # bulk span: elements of one batch must share both their write
        # buffer block and their L1 block, so span by the smaller
        if l1_slot_get is not None and (1 << l1_shift) < wb_block:
            span = 1 << l1_shift
        else:
            span = wb_block
        shared = LineState.SHARED
        wb_capacity = write_buffer.capacity
        batching = l1_slot_get is not None and not trace_values
        hit_wb = hit_l1 = hit_l2 = 0
        time = self.time
        ops_executed = self.ops_executed
        code = self._code
        end = len(code)
        ip = self._ip
        run_op = self._run_op
        run_addr = self._run_addr
        run_stride = self._run_stride
        run_left = self._run_left
        body = self._loop_body
        nbody = len(body)
        loop_iters = self._loop_iters
        loop_slot = self._loop_slot
        # lazily computed per loop: -1 marks the cached batchability
        # flags stale (set on every fresh OP_LOOP decode); the cached
        # values survive suspends via _suspend_compiled
        loop_cost = self._loop_cost
        loop_nw = self._loop_nw
        loop_batchable = self._loop_batchable
        while True:
            # ---- pending stride run -----------------------------------
            while run_left:
                if run_op == OP_WORK:
                    # repeated equal-cost work ops: charge as many as
                    # fit before the quantum boundary in one step
                    c = run_addr  # cycles per op
                    k = run_left
                    if c:
                        m = (quantum - (time - now) + c - 1) // c
                        if k > m:
                            k = m
                    time += k * c
                    ops_executed += k
                    run_left -= k
                    if time - now >= quantum:
                        self._suspend_compiled(
                            time, ops_executed, ip, run_op, run_addr,
                            run_stride, run_left, loop_iters, loop_slot, loop_cost, loop_nw, loop_batchable,
                            hit_wb, hit_l1, hit_l2)
                        sim.at(time, self._resume)
                        return
                    continue
                addr = run_addr
                stride = run_stride
                if run_op == OP_W_RUN:
                    # stores retire through the write buffer one per
                    # cycle; push/merge/drain-kick exactly as _run
                    if wb_push(addr):
                        time += store_cycles
                        ops_executed += 1
                        run_left -= 1
                        run_addr = addr + stride
                        if not node._draining:
                            kick_drain()
                        # the rest of this block's stores are pure merges
                        # once the entry is settled: after the first push
                        # the drain engine is busy, so no kick can pop
                        # the entry mid-block and every push coalesces.
                        # Retire them in one step, quantum-capped like
                        # the read-run bulk.
                        if run_left and stride > 0:
                            block = (addr & wb_mask if wb_mask
                                     else addr // wb_block * wb_block)
                            addr = run_addr
                            if (block in wb_entries
                                    and block != write_buffer._draining
                                    and addr - block < wb_block):
                                k = (block + wb_block - addr
                                     + stride - 1) // stride
                                if k > run_left:
                                    k = run_left
                                if store_cycles:
                                    m = (quantum - (time - now)
                                         + store_cycles - 1) // store_cycles
                                    if k > m:
                                        k = m
                                if k > 0:
                                    wb_entries[block] += k
                                    write_buffer.stores_retired += k
                                    write_buffer.stores_merged += k
                                    time += k * store_cycles
                                    ops_executed += k
                                    run_left -= k
                                    run_addr = addr + stride * k
                        if time - now >= quantum:
                            self._suspend_compiled(
                                time, ops_executed, ip, run_op, run_addr,
                                run_stride, run_left, loop_iters, loop_slot, loop_cost, loop_nw, loop_batchable,
                                hit_wb, hit_l1, hit_l2)
                            sim.at(time, self._resume)
                            return
                        continue
                    self._suspend_compiled(
                        time, ops_executed, ip, run_op, run_addr,
                        run_stride, run_left, loop_iters, loop_slot, loop_cost, loop_nw, loop_batchable,
                        hit_wb, hit_l1, hit_l2)
                    self._stall_started = time
                    node.wait_wb_change(self._retry_after_wb)
                    return
                # read run: bulk-retire the hits of one cache block per
                # probe.  k = elements from addr that stay in the block,
                # capped at the run length and at the quantum boundary
                # (retiring the op that crosses it yields, exactly as
                # the generator path checks after every op).
                block = addr & wb_mask if wb_mask else addr // wb_block * wb_block
                if stride > 0:
                    k = (addr // span * span + span - addr + stride - 1) // stride
                    if k > run_left:
                        k = run_left
                else:
                    k = 1
                if l1_cycles:
                    m = (quantum - (time - now) + l1_cycles - 1) // l1_cycles
                    if k > m:
                        k = m
                if block in wb_entries or block == write_buffer._draining:
                    # forwarded from pending stores (no value trace, as
                    # in _run); the whole block span forwards alike
                    time += k * l1_cycles
                    ops_executed += k
                    hit_wb += k
                    run_left -= k
                    run_addr = addr + stride * k
                elif l1_slot_get is not None:
                    i = l1_slot_get(addr >> l1_shift)
                    if i is not None and l1_states[i]:
                        if l1_is_lru:
                            # one bump per element, final tick wins
                            l1._tick = tick = l1._tick + k
                            l1_lrus[i] = tick
                        l1.hits += k
                        hit_l1 += k
                        run_left -= k
                        run_addr = addr + stride * k
                        if trace_values:
                            data = l1_data[i]
                            trace = self.value_trace
                            for _ in range(k):
                                time += l1_cycles
                                trace.append(("r", addr, data, time))
                                addr += stride
                        else:
                            time += k * l1_cycles
                        ops_executed += k
                    else:
                        l1.misses += 1
                        data = l2_lookup_data(addr)
                        if data is None:
                            run_left -= 1
                            run_addr = addr + stride
                            self._suspend_compiled(
                                time, ops_executed, ip, run_op, run_addr,
                                run_stride, run_left, loop_iters, loop_slot, loop_cost, loop_nw, loop_batchable,
                                hit_wb, hit_l1, hit_l2)
                            self._start_read_miss(addr)
                            return
                        # L1 refill; the rest of the block hits L1 next
                        l1_insert(addr, shared, data)
                        time += l2_cycles
                        ops_executed += 1
                        hit_l2 += 1
                        run_left -= 1
                        run_addr = addr + stride
                        if trace_values:
                            self.value_trace.append(("r", addr, data, time))
                else:
                    # obj-model escape hatch: element-exact method calls
                    data = l1_lookup_data(addr)
                    if data is not None:
                        time += l1_cycles
                        ops_executed += 1
                        hit_l1 += 1
                        run_left -= 1
                        run_addr = addr + stride
                        if trace_values:
                            self.value_trace.append(("r", addr, data, time))
                    else:
                        data = l2_lookup_data(addr)
                        if data is None:
                            run_left -= 1
                            run_addr = addr + stride
                            self._suspend_compiled(
                                time, ops_executed, ip, run_op, run_addr,
                                run_stride, run_left, loop_iters, loop_slot, loop_cost, loop_nw, loop_batchable,
                                hit_wb, hit_l1, hit_l2)
                            self._start_read_miss(addr)
                            return
                        l1_insert(addr, shared, data)
                        time += l2_cycles
                        ops_executed += 1
                        hit_l2 += 1
                        run_left -= 1
                        run_addr = addr + stride
                        if trace_values:
                            self.value_trace.append(("r", addr, data, time))
                if time - now >= quantum:
                    self._suspend_compiled(
                        time, ops_executed, ip, run_op, run_addr,
                        run_stride, run_left, loop_iters, loop_slot, loop_cost, loop_nw, loop_batchable,
                        hit_wb, hit_l1, hit_l2)
                    sim.at(time, self._resume)
                    return
            # ---- pending fixed-slot loop ------------------------------
            while loop_iters:
                # Strip-mined hit fast path: when the next b iterations
                # provably complete without an exit — every read slot
                # forwards from the write buffer or hits L1, and the
                # stores cannot fill the buffer — retire them slot-bulk.
                # b is capped so each slot stays inside one cache block
                # and the batch ends strictly before the quantum, which
                # keeps counters, LRU order, the (single) drain kick and
                # yield points identical to the per-element schedule; a
                # read block aliasing a written block bails out because
                # its wb-forward state would flip mid-batch.
                if batching and loop_slot == 0:
                    if loop_cost < 0:
                        # classify the loop once per OP_LOOP (and per
                        # resume): per-iteration cost, store-slot count,
                        # and whether batching can ever pay — a slot
                        # striding a whole block per iteration caps every
                        # batch at one element, so skip the attempts
                        loop_cost = 0
                        loop_nw = 0
                        loop_batchable = True
                        s = 0
                        while s < nbody:
                            kind = body[s]
                            if kind == 2:
                                loop_cost += body[s + 1]
                            else:
                                stride = body[s + 2]
                                # batches only pay when a block covers
                                # many elements; coarse strides fragment
                                # every batch at a block boundary, so
                                # leave those loops per-element
                                if stride < 0 or stride * 8 > span:
                                    loop_batchable = False
                                if kind == 0:
                                    loop_cost += l1_cycles
                                else:
                                    loop_cost += store_cycles
                                    loop_nw += 1
                            s += 3
                    # occupancy bound is strict (<): a store to the block
                    # being drained needs a free slot even when it merges
                    # into an existing fresh entry, so the buffer must
                    # not reach capacity mid-batch
                    if (loop_batchable and loop_iters >= 2
                            and (not loop_nw
                                 or len(wb_entries) + loop_nw < wb_capacity)):
                        b = loop_iters
                        if loop_cost:
                            m = (quantum - (time - now) - 1) // loop_cost
                            if m < b:
                                b = m
                        s = 0
                        while b >= 2 and s < nbody:
                            kind = body[s]
                            if kind != 2:
                                stride = body[s + 2]
                                if stride:
                                    addr = body[s + 1]
                                    k = (addr // span * span + span - addr
                                         + stride - 1) // stride
                                    if k < b:
                                        b = k
                            s += 3
                    else:
                        b = 0
                    if b >= 2:
                        # classify each slot before mutating anything.
                        # cls per read slot: -1 = write-buffer forward,
                        # else the L1 slot index; aliased reads (block
                        # written by a store slot of the same body, not
                        # yet buffered) take one L1 hit on the first
                        # iteration and forward afterwards — exactly the
                        # per-element schedule — unless the store slot
                        # precedes them, in which case every iteration
                        # forwards.  Any read that would miss bails out
                        # so the per-element path discovers the miss at
                        # its exact op.
                        cls = self._batch_cls
                        alias = self._batch_alias
                        wblocks = self._batch_wblocks
                        del cls[:], alias[:], wblocks[:]
                        s = 0
                        while s < nbody:
                            if body[s] == 1:
                                addr = body[s + 1]
                                wblocks.append(
                                    addr & wb_mask if wb_mask
                                    else addr // wb_block * wb_block)
                                wblocks.append(s)
                            s += 3
                        s = 0
                        while s < nbody:
                            if body[s] == 0:
                                addr = body[s + 1]
                                block = (addr & wb_mask if wb_mask
                                         else addr // wb_block * wb_block)
                                if (block in wb_entries
                                        or block == write_buffer._draining):
                                    cls.append(-1)
                                else:
                                    w_pos = -1
                                    for wi in range(0, len(wblocks), 2):
                                        if wblocks[wi] == block:
                                            w_pos = wblocks[wi + 1]
                                            break
                                    if 0 <= w_pos < s:
                                        # store slot runs first each
                                        # iteration: forwards throughout
                                        cls.append(-1)
                                    else:
                                        i = l1_slot_get(addr >> l1_shift)
                                        if i is None or not l1_states[i]:
                                            b = 0
                                            break
                                        cls.append(i)
                                        if w_pos >= 0:
                                            alias.append(len(cls) - 1)
                            s += 3
                        if b and alias and l1_is_lru:
                            # the single first-iteration L1 touch of each
                            # aliased read lands before any other slot's
                            # later iterations, so their LRU bumps go
                            # first (in slot order)
                            for ci in alias:
                                l1._tick = tick = l1._tick + 1
                                l1_lrus[cls[ci]] = tick
                        if b:
                            ci = 0
                            s = 0
                            while s < nbody:
                                kind = body[s]
                                if kind == 0:
                                    i = cls[ci]
                                    if i < 0:
                                        hit_wb += b
                                    elif ci in alias:
                                        # tick already bumped above
                                        l1.hits += 1
                                        hit_l1 += 1
                                        hit_wb += b - 1
                                    else:
                                        if l1_is_lru:
                                            l1._tick = tick = l1._tick + b
                                            l1_lrus[i] = tick
                                        l1.hits += b
                                        hit_l1 += b
                                    ci += 1
                                    body[s + 1] += body[s + 2] * b
                                elif kind == 1:
                                    addr = body[s + 1]
                                    stride = body[s + 2]
                                    block = (addr & wb_mask if wb_mask
                                             else addr // wb_block * wb_block)
                                    wb_push(addr)
                                    if not node._draining:
                                        kick_drain()
                                    if (block in wb_entries
                                            and block
                                            != write_buffer._draining):
                                        # the rest of the batch merges
                                        # into this entry
                                        wb_entries[block] += b - 1
                                        write_buffer.stores_retired += b - 1
                                        write_buffer.stores_merged += b - 1
                                    else:
                                        addr += stride
                                        for _ in range(b - 1):
                                            wb_push(addr)
                                            addr += stride
                                            if not node._draining:
                                                kick_drain()
                                    body[s + 1] += stride * b
                                ops_executed += b
                                s += 3
                            time += b * loop_cost
                            loop_iters -= b
                            continue
                s = loop_slot
                kind = body[s]
                if kind == 0:  # SLOT_R
                    addr = body[s + 1]
                    block = addr & wb_mask if wb_mask else addr // wb_block * wb_block
                    if block in wb_entries or block == write_buffer._draining:
                        time += l1_cycles
                        ops_executed += 1
                        hit_wb += 1
                    else:
                        if l1_slot_get is not None:
                            i = l1_slot_get(addr >> l1_shift)
                            if i is None or not l1_states[i]:
                                l1.misses += 1
                                data = None
                            else:
                                if l1_is_lru:
                                    l1._tick = tick = l1._tick + 1
                                    l1_lrus[i] = tick
                                l1.hits += 1
                                data = l1_data[i]
                        else:
                            data = l1_lookup_data(addr)
                        if data is not None:
                            time += l1_cycles
                            ops_executed += 1
                            hit_l1 += 1
                            if trace_values:
                                self.value_trace.append(("r", addr, data, time))
                        else:
                            data = l2_lookup_data(addr)
                            if data is None:
                                # complete on the reply; advance past
                                # this element before suspending
                                body[s + 1] = addr + body[s + 2]
                                loop_slot = s + 3
                                if loop_slot == nbody:
                                    loop_slot = 0
                                    loop_iters -= 1
                                self._suspend_compiled(
                                    time, ops_executed, ip, run_op, run_addr,
                                    run_stride, run_left, loop_iters,
                                    loop_slot, loop_cost, loop_nw,
                                    loop_batchable, hit_wb, hit_l1, hit_l2)
                                self._start_read_miss(addr)
                                return
                            l1_insert(addr, shared, data)
                            time += l2_cycles
                            ops_executed += 1
                            hit_l2 += 1
                            if trace_values:
                                self.value_trace.append(("r", addr, data, time))
                    body[s + 1] = addr + body[s + 2]
                elif kind == 1:  # SLOT_W
                    addr = body[s + 1]
                    if wb_push(addr):
                        time += store_cycles
                        ops_executed += 1
                        if not node._draining:
                            kick_drain()
                        body[s + 1] = addr + body[s + 2]
                    else:
                        # full buffer: retry this same store after a drain
                        self._suspend_compiled(
                            time, ops_executed, ip, run_op, run_addr,
                            run_stride, run_left, loop_iters, loop_slot, loop_cost, loop_nw, loop_batchable,
                            hit_wb, hit_l1, hit_l2)
                        self._stall_started = time
                        node.wait_wb_change(self._retry_after_wb)
                        return
                else:  # SLOT_WORK
                    time += body[s + 1]
                    ops_executed += 1
                loop_slot = s + 3
                if loop_slot == nbody:
                    loop_slot = 0
                    loop_iters -= 1
                if time - now >= quantum:
                    self._suspend_compiled(
                        time, ops_executed, ip, run_op, run_addr,
                        run_stride, run_left, loop_iters, loop_slot, loop_cost, loop_nw, loop_batchable,
                        hit_wb, hit_l1, hit_l2)
                    sim.at(time, self._resume)
                    return
            # ---- decode the next instruction --------------------------
            if ip >= end:
                nxt = next(self._chunks, None)
                if nxt is None:
                    self._suspend_compiled(
                        time, ops_executed, ip, run_op, run_addr,
                        run_stride, run_left, loop_iters, loop_slot, loop_cost, loop_nw, loop_batchable,
                        hit_wb, hit_l1, hit_l2)
                    self._begin_finish()
                    return
                self._code = code = nxt
                end = len(code)
                ip = 0
                continue
            opcode = code[ip]
            if opcode == OP_R:
                run_op = OP_R_RUN
                run_addr = code[ip + 1]
                run_stride = 0
                run_left = 1
                ip += 2
            elif opcode == OP_R_RUN:
                run_op = OP_R_RUN
                run_addr = code[ip + 1]
                run_stride = code[ip + 2]
                run_left = code[ip + 3]
                ip += 4
            elif opcode == OP_W:
                run_op = OP_W_RUN
                run_addr = code[ip + 1]
                run_stride = 0
                run_left = 1
                ip += 2
            elif opcode == OP_W_RUN:
                run_op = OP_W_RUN
                run_addr = code[ip + 1]
                run_stride = code[ip + 2]
                run_left = code[ip + 3]
                ip += 4
            elif opcode == OP_WORK:
                run_op = OP_WORK
                run_addr = code[ip + 1]  # cycles per op
                run_stride = 0
                run_left = code[ip + 2]
                ip += 3
            elif opcode == OP_LOOP:
                iters = code[ip + 1]
                n3 = code[ip + 2] * 3
                body[:] = code[ip + 3:ip + 3 + n3]
                nbody = n3
                loop_iters = iters
                loop_slot = 0
                loop_cost = -1
                ip += 3 + n3
            else:
                # synchronization (or a bad opcode): cold exits
                self._suspend_compiled(
                    time, ops_executed, ip + 2, run_op, run_addr,
                    run_stride, run_left, loop_iters, loop_slot, loop_cost, loop_nw, loop_batchable,
                    hit_wb, hit_l1, hit_l2)
                sync_id = code[ip + 1]
                if opcode == OP_BARRIER:
                    self._start_sync(("barrier", sync_id), is_barrier=True)
                    return
                if opcode == OP_LOCK:
                    self._start_sync(("lock", sync_id), is_barrier=False)
                    return
                if opcode == OP_UNLOCK:
                    self._start_unlock(("unlock", sync_id))
                    return
                raise SimulationError(f"bad opcode {opcode} at {ip}")

    # ------------------------------------------------------------------
    # read misses
    # ------------------------------------------------------------------
    def _start_read_miss(self, addr: int) -> None:
        self._stall_started = self.time
        issue_at = self.time + self.l2_cycles  # miss detection through L1+L2
        if issue_at > self.sim.now:
            self.sim.call_at(issue_at, self._issue_read, addr)
        else:
            self._issue_read(addr)

    def _issue_read(self, addr: int) -> None:
        self.node.l2ctrl.issue_read(addr, self._read_done)

    def _read_done(self, txn: Transaction) -> None:
        stall = self.sim.now - self._stall_started
        self.read_stall_cycles += stall
        self._stall_started = None
        self.ops_executed += 1
        self.node.stats.record_read_txn(self.node.node_id, txn, stall)
        if self.trace_values:
            self.value_trace.append(("r", txn.addr, txn.data, self.sim.now))
        self._resume()

    def _retry_after_wb(self) -> None:
        if self._stall_started is not None:
            stall = max(0, self.sim.now - self._stall_started)
            self.wb_stall_cycles += stall
            tracer = self.sim.tracer
            if tracer is not None and stall > 0:
                tracer.complete(
                    f"proc{self.node.node_id}", "wb_full",
                    self.sim.now - stall, stall,
                )
            self._stall_started = None
        self._resume()

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------
    def _start_sync(self, op: Op, is_barrier: bool) -> None:
        """Barrier arrival / lock acquire: fence, RMW, then wait."""
        self._stall_started = self.time
        self._sync_label = "barrier" if is_barrier else "lock"
        self._fence_then(lambda: self._sync_rmw(op, is_barrier))

    def _fence_then(self, action: Callable[[], None]) -> None:
        """Wait (at local time) for the write buffer to drain, then act."""
        node = self.node

        def check() -> None:
            if node.write_buffer.is_empty():
                action()
            else:
                node.wait_wb_change(check)

        if self.time > self.sim.now:
            self.sim.at(self.time, check)
        else:
            check()

    def _sync_rmw(self, op: Op, is_barrier: bool) -> None:
        kind, sync_id = op[0], op[1]
        addr = self.node.sync_addr(kind if kind != "lock" else "lock", sync_id)
        self._rmw(addr, lambda: self._sync_arrived(op, is_barrier))

    def _rmw(self, addr: int, then: Callable[[], None]) -> None:
        """Read-modify-write the synchronization variable coherently."""
        node = self.node
        hierarchy = node.hierarchy
        probe = hierarchy.write_probe(addr)
        if probe.action == "hit":
            hierarchy.perform_write(addr, hierarchy.l2.probe_data(addr) + 1)
            self.sim.schedule(2, then)
        else:
            def owned(txn: Transaction) -> None:
                hierarchy.perform_write(addr, hierarchy.l2.probe_data(addr) + 1)
                then()

            node.l2ctrl.issue_write(addr, owned)

    def _sync_arrived(self, op: Op, is_barrier: bool) -> None:
        node = self.node
        if is_barrier:
            node.barriers.arrive(op[1], node.node_id, self._sync_done)
        else:
            node.locks.acquire(op[1], node.node_id, self._sync_done)

    def _sync_done(self) -> None:
        if self._stall_started is not None:
            stall = max(0, self.sim.now - self._stall_started)
            self.sync_stall_cycles += stall
            tracer = self.sim.tracer
            if tracer is not None and stall > 0:
                tracer.complete(
                    f"proc{self.node.node_id}", self._sync_label,
                    self.sim.now - stall, stall,
                )
            self._stall_started = None
        self._resume()

    def _start_unlock(self, op: Op) -> None:
        self._stall_started = self.time
        self._sync_label = "unlock"

        def release() -> None:
            addr = self.node.sync_addr("lock", op[1])
            self._rmw(addr, lambda: self._finish_unlock(op[1]))

        self._fence_then(release)

    def _finish_unlock(self, lock_id: int) -> None:
        self.node.locks.release(lock_id, self.node.node_id)
        self._sync_done()

    # ------------------------------------------------------------------
    # termination
    # ------------------------------------------------------------------
    def _begin_finish(self) -> None:
        def finished() -> None:
            if not self.done:
                self.done = True
                self.finish_time = max(self.time, self.sim.now)
                self.node.on_processor_done()

        self._fence_then(finished)
