"""Synchronization primitives (barriers and queue locks).

The applications synchronize through shared memory.  Arrival at a barrier
(or a lock acquire) performs a *real* read-modify-write coherence
transaction on the synchronization variable — so the counter block
migrates between nodes exactly as it would in hardware, with recalls,
invalidations and all the attendant network traffic.  Only the *wakeup*
is idealized: instead of simulating millions of spin reads, released
waiters resume after a fixed ``wakeup_cycles`` delay that stands in for
the invalidate-and-reread of the release flag (see DESIGN.md,
substitution table).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Tuple

from ..errors import SimulationError
from ..sim.engine import Simulator

ResumeFn = Callable[[], None]


class BarrierManager:
    """Centralized sense-reversing barriers, one counter block per barrier."""

    def __init__(
        self, sim: Simulator, num_procs: int, wakeup_cycles: int = 120
    ) -> None:
        self.sim = sim
        self.num_procs = num_procs
        self.wakeup_cycles = wakeup_cycles
        self._waiting: Dict[int, List[Tuple[int, ResumeFn]]] = {}
        # statistics
        self.episodes = 0
        self.arrivals = 0

    def arrive(self, barrier_id: int, node_id: int, resume: ResumeFn) -> None:
        """Called after the node's fetch&inc transaction completed."""
        waiters = self._waiting.setdefault(barrier_id, [])
        for waiting_node, _fn in waiters:
            if waiting_node == node_id:
                raise SimulationError(
                    f"node {node_id} arrived twice at barrier {barrier_id}"
                )
        waiters.append((node_id, resume))
        self.arrivals += 1
        if len(waiters) == self.num_procs:
            self.episodes += 1
            released = self._waiting.pop(barrier_id)
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.instant(
                    "sync", "barrier_release", self.sim.now,
                    {"barrier": barrier_id, "procs": len(released)},
                )
            for _node, fn in released:
                self.sim.schedule(self.wakeup_cycles, fn)

    def waiting_at(self, barrier_id: int) -> int:
        return len(self._waiting.get(barrier_id, []))


class LockManager:
    """FIFO queue locks (the RMW traffic is issued by the caller)."""

    def __init__(self, sim: Simulator, handoff_cycles: int = 80) -> None:
        self.sim = sim
        self.handoff_cycles = handoff_cycles
        self._holder: Dict[int, int] = {}
        self._queue: Dict[int, Deque[Tuple[int, ResumeFn]]] = {}
        # statistics
        self.acquires = 0
        self.contended_acquires = 0

    def acquire(self, lock_id: int, node_id: int, resume: ResumeFn) -> None:
        """Called after the node's test&set transaction completed."""
        self.acquires += 1
        if lock_id not in self._holder:
            self._holder[lock_id] = node_id
            self.sim.schedule(0, resume)
        else:
            self.contended_acquires += 1
            self._queue.setdefault(lock_id, deque()).append((node_id, resume))

    def release(self, lock_id: int, node_id: int) -> None:
        holder = self._holder.get(lock_id)
        if holder != node_id:
            raise SimulationError(
                f"node {node_id} released lock {lock_id} held by {holder}"
            )
        queue = self._queue.get(lock_id)
        if queue:
            next_node, resume = queue.popleft()
            if not queue:
                del self._queue[lock_id]
            self._holder[lock_id] = next_node
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.instant(
                    "sync", "lock_handoff", self.sim.now,
                    {"lock": lock_id, "from": node_id, "to": next_node},
                )
            self.sim.schedule(self.handoff_cycles, resume)
        else:
            del self._holder[lock_id]

    def holder_of(self, lock_id: int):
        return self._holder.get(lock_id)
