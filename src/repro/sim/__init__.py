"""Discrete-event simulation core (engine, clocked resources)."""

from .engine import Event, Simulator
from .resource import FifoServer, Timeline

__all__ = ["Event", "Simulator", "FifoServer", "Timeline"]
