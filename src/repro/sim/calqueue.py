"""Indexed calendar (bucket) queue for the event engine.

The simulator's event delays are overwhelmingly small constants — one
cycle for a pump, four for a flit or a switch crossing, tens for an SRAM
access, a few hundred for memory and synchronization wakeups.  A binary
heap pays O(log n) *Python-level* comparisons per operation for that
workload; a calendar queue (Brown 1988, the classic DES structure)
exploits the short-delay structure to schedule in O(1) amortized time.

Design (see DESIGN.md §9):

* ``nbuckets`` (a power of two) buckets, each covering ``width`` cycles
  of the clock; an event at time ``t`` lives in bucket
  ``(t // width) & (nbuckets - 1)``.
* Each bucket is a small binary heap of ``(time, seq, event)`` tuples,
  so intra-bucket ordering uses C tuple comparisons, never
  ``Event.__lt__``, and the exact ``(time, seq)`` total order of the
  reference heap engine is preserved — same times **and** same
  tie-break, hence bit-identical simulations.
* ``pop`` serves the current bucket's head while it belongs to the
  current *year* (``time < top``), then advances bucket by bucket.  A
  full fruitless wrap falls back to a direct O(nbuckets) search for the
  minimum head (the sparse-queue escape hatch).
* The bucket count doubles when occupancy exceeds two events per bucket
  and halves below one event per two buckets; each resize re-estimates
  ``width`` from the surviving events' inter-arrival gaps.
* Scheduling earlier than the current window start (possible after a
  ``peek`` advanced the scan position past a quiet region) rewinds the
  scan position, so order stays exact.
* ``head_bound``/``next_time`` is the O(1) lookahead used by the
  fabric's express transit (DESIGN.md §12): a cached *lower bound* on
  the head event's time, re-derived on every pop from the ring invariant
  (a live head in the current year is the exact minimum; an exhausted
  year bounds the rest by its end) and lowered on every earlier push.
  Unlike ``peek`` it never scans — and therefore never advances the scan
  position, so a lookahead-per-hop fast path cannot thrash the pop fast
  path with rewinds.

Cancellation is lazy, exactly as in the heap engine: cancelled events
stay queued and are discarded by the :class:`~repro.sim.engine.Simulator`
when popped.  The queue itself never inspects ``cancelled``.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .engine import Event

#: one bucket entry: (time, seq, event) — compared as a C-level tuple
Entry = Tuple[int, int, "Event"]

#: smallest/largest bucket counts the auto-resizer will use
MIN_BUCKETS = 32
MAX_BUCKETS = 1 << 16

#: bucket widths are clamped to this range (cycles)
MIN_WIDTH = 1
MAX_WIDTH = 1 << 12

#: at most this many events are sampled to re-estimate the width
WIDTH_SAMPLE = 64

#: ``head_bound`` of an empty queue: later than any schedulable cycle, so
#: "queue empty" and "next event arbitrarily far away" read identically
#: to the express-transit comparison (no None check on the hot path)
FAR_FUTURE = 1 << 62


class CalendarQueue:
    """Priority queue over events, ordered exactly by ``(time, seq)``."""

    __slots__ = (
        "_buckets", "_nbuckets", "_mask", "_width", "_size", "_cur", "_top",
        "_rewind_below", "_grow_above", "_shrink_below", "peak",
        "head_bound",
    )

    def __init__(self) -> None:
        # initial width: 16 cycles/bucket covers a 512-cycle ring, the
        # span of the machine's short-horizon events (flits, SRAM, switch
        # crossings), so the scan rarely wraps before a resize tunes it
        self._width: int = 16
        self._size: int = 0
        self.peak: int = 0  # high-water queue depth (incl. cancelled)
        # lower bound on the head event's time, maintained by push/pop so
        # the express fast path reads one attribute (see next_time)
        self.head_bound: int = FAR_FUTURE
        self._spread(MIN_BUCKETS, self._width, [])
        self._position(0)

    # ------------------------------------------------------------------
    # layout helpers
    # ------------------------------------------------------------------
    def _spread(self, nbuckets: int, width: int, entries: List[Entry]) -> None:
        """Lay ``entries`` out over a fresh ring of ``nbuckets`` buckets."""
        self._nbuckets = nbuckets
        self._mask = nbuckets - 1
        self._width = width
        # resize thresholds, precomputed so push/pop compare one int
        self._grow_above = 2 * nbuckets if nbuckets < MAX_BUCKETS else 1 << 62
        self._shrink_below = nbuckets // 2 if nbuckets > MIN_BUCKETS else 0
        buckets: List[List[Entry]] = [[] for _ in range(nbuckets)]
        for entry in entries:
            buckets[(entry[0] // width) & self._mask].append(entry)
        for bucket in buckets:
            if len(bucket) > 1:
                heapify(bucket)
        self._buckets = buckets

    def _position(self, time: int) -> None:
        """Point the scan at the year containing ``time``."""
        year = time // self._width
        self._cur = year & self._mask
        self._top = (year + 1) * self._width
        self._rewind_below = self._top - self._width

    def _resize(self, nbuckets: int) -> None:
        entries = [entry for bucket in self._buckets for entry in bucket]
        width = self._estimate_width(entries)
        self._spread(nbuckets, width, entries)
        if entries:
            self._position(min(entry[0] for entry in entries))

    def _estimate_width(self, entries: List[Entry]) -> int:
        """Mean inter-event gap of a deterministic sample, clamped sane."""
        stride = max(1, len(entries) // WIDTH_SAMPLE)
        times = sorted({entry[0] for entry in entries[::stride]})
        if len(times) < 2:
            return self._width
        gap = (times[-1] - times[0]) / (len(times) - 1)
        return max(MIN_WIDTH, min(MAX_WIDTH, int(gap) + 1))

    # ------------------------------------------------------------------
    # queue interface (shared with HeapQueue)
    # ------------------------------------------------------------------
    def push(self, event: "Event") -> None:
        time = event.time
        heappush(
            self._buckets[(time // self._width) & self._mask],
            (time, event.seq, event),
        )
        size = self._size = self._size + 1
        if size > self.peak:
            self.peak = size
        if time < self.head_bound:
            # an earlier head invalidates the cached lookahead bound
            self.head_bound = time
        if time < self._rewind_below:
            # earlier than the current window: rewind the scan so the new
            # event is served in exact (time, seq) order
            self._position(time)
        if size > self._grow_above:
            self._resize(self._nbuckets * 2)

    def pop(self) -> Optional["Event"]:
        if self._size == 0:
            return None
        # fast path: any event earlier than ``_top`` necessarily lives in
        # the current bucket (push rewinds the scan on earlier times), so
        # a live head here *is* the global minimum — no scan needed
        bucket = self._buckets[self._cur]
        if not (bucket and bucket[0][0] < self._top):
            bucket = self._min_bucket()
        size = self._size = self._size - 1
        entry = heappop(bucket)
        # re-derive the lookahead bound from the ring invariant: any
        # event earlier than _top lives in the served bucket, so a live
        # head there is the exact new minimum — and an exhausted year
        # bounds everything left by _top.  Either beats the popped time.
        if bucket and bucket[0][0] < self._top:
            self.head_bound = bucket[0][0]
        elif size:
            self.head_bound = self._top
        else:
            self.head_bound = FAR_FUTURE
        if size < self._shrink_below and size:
            self._resize(self._nbuckets // 2)
        return entry[2]

    def peek(self) -> Optional["Event"]:
        if self._size == 0:
            return None
        bucket = self._buckets[self._cur]
        if bucket and bucket[0][0] < self._top:
            return bucket[0][2]
        bucket = self._min_bucket()
        return bucket[0][2]

    def next_time(self) -> Optional[int]:
        """O(1) lower bound on the head event's time (None when empty).

        The protocol view of :attr:`head_bound` (which the fabric's
        express transit reads directly as an attribute).  Exact whenever
        the head lives in the current bucket (the common dense case);
        otherwise the current year's end ``_top``, which may undershoot —
        callers treat an undershoot as "cannot fuse", never the reverse,
        so a conservative bound costs a missed fast path but never
        correctness.  Unlike :meth:`peek` this never scans the ring, so a
        lookahead per worm hop cannot drag the scan position forward and
        force ``push`` rewinds.
        """
        if self._size == 0:
            return None
        return self.head_bound

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator["Event"]:
        for bucket in self._buckets:
            for entry in bucket:
                yield entry[2]

    # ------------------------------------------------------------------
    # the scan
    # ------------------------------------------------------------------
    def _min_bucket(self) -> List[Entry]:
        """The bucket holding the minimum entry; positions the scan on it.

        Callers guarantee ``_size > 0`` (and that the current bucket's
        fast path already failed).
        """
        buckets = self._buckets
        mask = self._mask
        width = self._width
        i = self._cur
        top = self._top
        for _ in range(self._nbuckets):
            bucket = buckets[i]
            if bucket and bucket[0][0] < top:
                self._cur = i
                self._top = top
                self._rewind_below = top - width
                return bucket
            i = (i + 1) & mask
            top += width
        # a full wrap found nothing in its year: the queue is sparse
        # relative to the ring — jump straight to the global minimum
        best: Optional[List[Entry]] = None
        for bucket in buckets:
            if bucket and (best is None or bucket[0] < best[0]):
                best = bucket
        assert best is not None  # _size > 0 guarantees a head exists
        self._position(best[0][0])
        return best

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CalendarQueue size={self._size} buckets={self._nbuckets} "
            f"width={self._width}>"
        )
