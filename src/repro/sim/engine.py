"""Deterministic discrete-event simulation engine.

The whole machine model is built on this small engine.  Components interact
only by scheduling callbacks at future cycle counts; there is no implicit
global step.  Two properties matter for a reproduction study:

* **Determinism** — events scheduled for the same cycle fire in scheduling
  order (a monotonically increasing sequence number breaks ties), so a run
  is a pure function of the configuration and the seeds.
* **Cheap idle time** — nothing happens between events, which lets the
  processor models fast-forward through long runs of cache hits without
  touching the queue (see :mod:`repro.node.processor`).

Two interchangeable event queues implement the ``(time, seq)`` total
order (see DESIGN.md §9): the default :class:`~repro.sim.calqueue.
CalendarQueue` (O(1) amortized, exploits the machine's small constant
delays) and the reference :class:`HeapQueue` binary heap.  Set
``REPRO_ENGINE=heap`` (or pass ``engine="heap"``) to force the reference
implementation; both produce bit-identical simulations.

Scheduling is closure-free: ``sim.call(delay, fn, *args)`` stores the
function and its arguments on the :class:`Event` instead of requiring a
per-event lambda, and popped events are recycled through a small free
list, so steady-state simulation allocates (almost) nothing per event.

Time is measured in integer *cycles* of the system clock (the paper's
switches, links and processors all run at 200 MHz, so a single clock domain
suffices; components with slower logic express their latency as a cycle
count).
"""

from __future__ import annotations

import os
import sys
from heapq import heappop, heappush
from typing import Any, Callable, Iterator, List, Optional, Tuple, Union

from ..errors import SimulationError
from .calqueue import FAR_FUTURE, CalendarQueue

Callback = Callable[..., Any]

#: ``sys.getrefcount`` is CPython-specific; without it the free list is
#: simply never fed (correct, just no recycling)
_getrefcount: Optional[Callable[[object], int]] = getattr(
    sys, "getrefcount", None
)

#: recycled events point here so the dead callback (and anything its cell
#: captured) is released immediately
def _no_callback() -> None:  # pragma: no cover - never scheduled
    raise SimulationError("recycled event fired")


#: free-list bound: enough to absorb the pop/push churn of a busy machine
#: without pinning an unbounded pile of dead objects
_FREE_MAX = 512


class Event:
    """A scheduled callback (plus its arguments).

    Holding on to the returned event allows cancellation; cancelled events
    stay queued but are skipped when popped (lazy deletion).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: int,
        seq: int,
        callback: Callback,
        sim: Optional["Simulator"] = None,
        args: Tuple[Any, ...] = (),
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            # keep the owning simulator's live-event counter exact while
            # the event is still queued (cleared to None once popped)
            sim = self._sim
            if sim is not None:
                sim._cancelled_queued += 1

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} seq={self.seq}{state}>"


class HeapQueue:
    """Reference event queue: a plain binary heap of events.

    Kept byte-for-byte faithful to the original engine's behaviour so
    ``REPRO_ENGINE=heap`` is a true escape hatch for differential
    debugging of the calendar queue.
    """

    __slots__ = ("_heap", "peak", "head_bound")

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self.peak: int = 0  # high-water queue depth (incl. cancelled)
        # lookahead bound for the fabric's express transit: exact for a
        # heap (the head is _heap[0]); FAR_FUTURE when empty, so the
        # express comparison needs no None check
        self.head_bound: int = FAR_FUTURE

    def push(self, event: Event) -> None:
        heappush(self._heap, event)
        if event.time < self.head_bound:
            self.head_bound = event.time
        if len(self._heap) > self.peak:
            self.peak = len(self._heap)

    def pop(self) -> Optional[Event]:
        heap = self._heap
        if not heap:
            return None
        event = heappop(heap)
        self.head_bound = heap[0].time if heap else FAR_FUTURE
        return event

    def peek(self) -> Optional[Event]:
        return self._heap[0] if self._heap else None

    def next_time(self) -> Optional[int]:
        """O(1) bound on the head event's time (None when empty).

        The protocol view of :attr:`head_bound` (which the fabric's
        express transit reads directly as an attribute).  Exact for a
        heap — the head is ``heap[0]`` — so the reference engine gives
        the tightest possible lookahead.  The calendar queue maintains a
        conservative bound instead (see
        :meth:`~repro.sim.calqueue.CalendarQueue.next_time`); both honor
        the same contract: never later than the true head time.
        """
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._heap)


EventQueue = Union[HeapQueue, CalendarQueue]

#: environment variable selecting the event queue ("calendar" | "heap")
ENGINE_ENV = "REPRO_ENGINE"


def _make_queue(engine: str) -> EventQueue:
    if engine == "calendar":
        return CalendarQueue()
    if engine == "heap":
        return HeapQueue()
    raise SimulationError(
        f"unknown event engine {engine!r} (expected 'calendar' or 'heap')"
    )


class Simulator:
    """Event queue and clock for one simulated machine.

    Typical component code::

        sim.call(4, port.grant, msg)            # relative delay, no lambda
        sim.call_at(sim.now + latency, self._finish, txn)

    (``schedule``/``at`` remain as zero-argument conveniences.)  The
    engine never advances past ``horizon`` (if set), which the tests use
    to bound runaway models.
    """

    __slots__ = (
        "now", "_seq", "_queue", "_events_fired", "_cancelled_queued",
        "horizon", "tracer", "engine", "_free", "_stop", "_cal",
    )

    def __init__(
        self, horizon: Optional[int] = None, engine: Optional[str] = None
    ) -> None:
        self.now: int = 0
        self._seq: int = 0
        if engine is None:
            engine = os.environ.get(ENGINE_ENV, "calendar")
        self.engine: str = engine
        self._queue: EventQueue = _make_queue(engine)
        # the default queue, downcast once: call_at inlines its push
        queue = self._queue
        self._cal: Optional[CalendarQueue] = (
            queue if isinstance(queue, CalendarQueue) else None
        )
        self._events_fired: int = 0
        self._cancelled_queued: int = 0  # cancelled events still queued
        self._stop: bool = False  # set by request_stop(), read per event
        self._free: List[Event] = []
        self.horizon = horizon
        # observability hook: components reach the run's Tracer through
        # the simulator they already hold (None = tracing disabled; every
        # instrumentation site guards on that, which is the whole of the
        # disabled path's overhead)
        self.tracer: Optional[Any] = None

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callback) -> Event:
        """Schedule ``callback`` to fire ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self.now + delay, callback)

    def at(self, time: int, callback: Callback) -> Event:
        """Schedule ``callback`` at absolute cycle ``time`` (>= now)."""
        return self.call_at(time, callback)

    def call(self, delay: int, fn: Callback, *args: Any) -> Event:
        """Schedule ``fn(*args)`` ``delay`` cycles from now, closure-free."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self.now + delay, fn, *args)

    def call_at(self, time: int, fn: Callback, *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute cycle ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < now {self.now}"
            )
        self._seq = seq = self._seq + 1
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.seq = seq
            event.callback = fn
            event.args = args
            event.cancelled = False
            event._sim = self
        else:
            event = Event(time, seq, fn, self, args)
        cal = self._cal
        if cal is None:
            self._queue.push(event)
        else:
            # inlined CalendarQueue.push — kept in lockstep with
            # repro.sim.calqueue.  Scheduling is one queue call per
            # event; collapsing the engine's hottest call edge is worth
            # the coupling to the bucket layout.
            heappush(
                cal._buckets[(time // cal._width) & cal._mask],
                (time, seq, event),
            )
            size = cal._size = cal._size + 1
            if size > cal.peak:
                cal.peak = size
            if time < cal.head_bound:
                cal.head_bound = time
            if time < cal._rewind_below:
                cal._position(time)
            if size > cal._grow_above:
                cal._resize(cal._nbuckets * 2)
        return event

    def _recycle(self, event: Event) -> None:
        """Return a popped event to the free list if nobody else holds it.

        The refcount guard (local + argument + getrefcount's own temporary
        = 3) means an event whose handle a component kept — e.g. to cancel
        it later — is never recycled, so stale handles stay inert forever
        rather than cancelling an unrelated reused event.
        """
        free = self._free
        if (
            len(free) < _FREE_MAX
            and _getrefcount is not None
            and _getrefcount(event) == 3
        ):
            event.callback = _no_callback
            event.args = ()
            free.append(event)

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event.  Returns False if the queue is empty."""
        queue = self._queue
        while True:
            event = queue.pop()
            if event is None:
                return False
            event._sim = None
            if event.cancelled:
                self._cancelled_queued -= 1
                self._recycle(event)
                continue
            if self.horizon is not None and event.time > self.horizon:
                return False
            self.now = event.time
            self._events_fired += 1
            callback = event.callback
            args = event.args
            self._recycle(event)
            callback(*args)
            return True

    def run(self, until: Optional[int] = None) -> int:
        """Run until the queue drains (or ``until`` cycles).  Returns now.

        Each event is popped exactly once: an event beyond ``until`` is
        pushed back and the loop stops, instead of the old peek-then-step
        double scan over cancelled heads.
        """
        queue = self._queue
        pop = queue.pop
        recycle = self._recycle
        horizon = self.horizon
        if until is None:
            while True:
                event = pop()
                if event is None:
                    break
                event._sim = None
                if event.cancelled:
                    self._cancelled_queued -= 1
                    recycle(event)
                    continue
                if horizon is not None and event.time > horizon:
                    break  # beyond the horizon: drop, as step() does
                self.now = event.time
                self._events_fired += 1
                callback = event.callback
                args = event.args
                recycle(event)
                callback(*args)
        else:
            push = queue.push
            while True:
                event = pop()
                if event is None:
                    break
                if event.cancelled:
                    event._sim = None
                    self._cancelled_queued -= 1
                    recycle(event)
                    continue
                if event.time > until:
                    push(event)  # not ours to fire; put it back
                    break
                event._sim = None
                if horizon is not None and event.time > horizon:
                    recycle(event)
                    continue  # beyond the horizon: drop, as step() does
                self.now = event.time
                self._events_fired += 1
                callback = event.callback
                args = event.args
                recycle(event)
                callback(*args)
            self.now = max(self.now, until)
        return self.now

    def run_while(self, predicate: Callable[[], bool]) -> int:
        """Run events while ``predicate()`` holds and events remain.

        This is the machine's main loop; the free-list recycle of
        :meth:`_recycle` is inlined (the refcount threshold is 2 here,
        not 3, because there is no extra callee frame holding the event).
        """
        queue = self._queue
        pop = queue.pop
        recycle = self._recycle
        free = self._free
        grc = _getrefcount
        horizon = self.horizon
        fired = 0
        try:
            while predicate():
                while True:
                    event = pop()
                    if event is None:
                        return self.now
                    event._sim = None
                    if not event.cancelled:
                        break
                    # discarding a cancelled event cannot change the
                    # predicate, so looping here matches firing semantics
                    self._cancelled_queued -= 1
                    recycle(event)
                if horizon is not None and event.time > horizon:
                    return self.now  # beyond the horizon: drop, as step()
                self.now = event.time
                fired += 1
                callback = event.callback
                args = event.args
                if (
                    len(free) < _FREE_MAX
                    and grc is not None
                    and grc(event) == 2
                ):
                    event.callback = _no_callback
                    event.args = ()
                    free.append(event)
                callback(*args)
            return self.now
        finally:
            # counted locally in the loop; published even on an exception
            self._events_fired += fired

    def request_stop(self) -> None:
        """Ask the running :meth:`run_until_stop` loop to exit.

        Takes effect before the next event fires, exactly where a
        ``run_while`` predicate turning false would have stopped.
        """
        self._stop = True

    def run_until_stop(self) -> int:
        """Run events until :meth:`request_stop` (or the queue drains).

        Equivalent to ``run_while(lambda: not stopped)``, but the
        per-event predicate call collapses to one attribute load — this
        is the main loop of a :class:`~repro.system.machine.Machine`,
        whose only stop condition is "every processor finished".  On the
        default engine the calendar pop is inlined (the mirror of
        :meth:`call_at`'s inlined push, same lockstep-with-calqueue
        deal): one pop per event is the loop's hottest call edge.
        """
        queue = self._queue
        pop = queue.pop
        cal = self._cal
        recycle = self._recycle
        free = self._free
        grc = _getrefcount
        horizon = self.horizon
        fired = 0
        try:
            while not self._stop:
                while True:
                    if cal is None:
                        event = pop()
                        if event is None:
                            return self.now
                    else:
                        # inlined CalendarQueue.pop — kept in lockstep
                        # with repro.sim.calqueue
                        size = cal._size
                        if size == 0:
                            return self.now
                        bucket = cal._buckets[cal._cur]
                        top = cal._top
                        if not (bucket and bucket[0][0] < top):
                            bucket = cal._min_bucket()
                            top = cal._top
                        cal._size = size = size - 1
                        event = heappop(bucket)[2]
                        if bucket and bucket[0][0] < top:
                            cal.head_bound = bucket[0][0]
                        elif size:
                            cal.head_bound = top
                        else:
                            cal.head_bound = FAR_FUTURE
                        if size and size < cal._shrink_below:
                            cal._resize(cal._nbuckets // 2)
                    event._sim = None
                    if not event.cancelled:
                        break
                    self._cancelled_queued -= 1
                    recycle(event)
                if horizon is not None and event.time > horizon:
                    return self.now  # beyond the horizon: drop, as step()
                self.now = event.time
                fired += 1
                callback = event.callback
                args = event.args
                if (
                    len(free) < _FREE_MAX
                    and grc is not None
                    and grc(event) == 2
                ):
                    event.callback = _no_callback
                    event.args = ()
                    free.append(event)
                callback(*args)
            return self.now
        finally:
            self._stop = False
            # counted locally in the loop; published even on an exception
            self._events_fired += fired

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def _peek(self) -> Optional[Event]:
        queue = self._queue
        while True:
            head = queue.peek()
            if head is None or not head.cancelled:
                return head
            queue.pop()
            head._sim = None
            self._cancelled_queued -= 1
            self._recycle(head)

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.

        O(1): maintained as queue length minus the count of cancelled
        events that have not been lazily removed yet.
        """
        return len(self._queue) - self._cancelled_queued

    @property
    def peak_pending(self) -> int:
        """High-water queue depth (including cancelled-but-queued events)."""
        return self._queue.peak

    @property
    def events_fired(self) -> int:
        return self._events_fired

    def next_event_time(self) -> Optional[int]:
        head = self._peek()
        return head.time if head is not None else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator now={self.now} pending={self.pending} "
            f"engine={self.engine}>"
        )
