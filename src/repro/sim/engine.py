"""Deterministic discrete-event simulation engine.

The whole machine model is built on this small engine.  Components interact
only by scheduling callbacks at future cycle counts; there is no implicit
global step.  Two properties matter for a reproduction study:

* **Determinism** — events scheduled for the same cycle fire in scheduling
  order (a monotonically increasing sequence number breaks ties), so a run
  is a pure function of the configuration and the seeds.
* **Cheap idle time** — nothing happens between events, which lets the
  processor models fast-forward through long runs of cache hits without
  touching the queue (see :mod:`repro.node.processor`).

Time is measured in integer *cycles* of the system clock (the paper's
switches, links and processors all run at 200 MHz, so a single clock domain
suffices; components with slower logic express their latency as a cycle
count).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from ..errors import SimulationError

Callback = Callable[[], Any]


class Event:
    """A scheduled callback.

    Holding on to the returned event allows cancellation; cancelled events
    stay in the heap but are skipped when popped (lazy deletion).
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "_sim")

    def __init__(
        self, time: int, seq: int, callback: Callback, sim: "Simulator" = None
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            # keep the owning simulator's live-event counter exact while
            # the event is still queued (cleared to None once popped)
            sim = self._sim
            if sim is not None:
                sim._cancelled_queued += 1

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} seq={self.seq}{state}>"


class Simulator:
    """Event queue and clock for one simulated machine.

    Typical component code::

        sim.schedule(4, lambda: port.grant(msg))     # relative delay
        sim.at(sim.now + latency, self._finish)      # absolute time

    The engine never advances past ``horizon`` (if set), which the tests use
    to bound runaway models.
    """

    __slots__ = (
        "now", "_seq", "_queue", "_events_fired", "_cancelled_queued",
        "horizon", "tracer",
    )

    def __init__(self, horizon: Optional[int] = None) -> None:
        self.now: int = 0
        self._seq: int = 0
        self._queue: List[Event] = []
        self._events_fired: int = 0
        self._cancelled_queued: int = 0  # cancelled events still in _queue
        self.horizon = horizon
        # observability hook: components reach the run's Tracer through
        # the simulator they already hold (None = tracing disabled; every
        # instrumentation site guards on that, which is the whole of the
        # disabled path's overhead)
        self.tracer: Optional[Any] = None

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callback) -> Event:
        """Schedule ``callback`` to fire ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self.now + delay, callback)

    def at(self, time: int, callback: Callback) -> Event:
        """Schedule ``callback`` at absolute cycle ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < now {self.now}"
            )
        self._seq += 1
        event = Event(time, self._seq, callback, self)
        heapq.heappush(self._queue, event)
        return event

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event.  Returns False if the queue is empty."""
        queue = self._queue
        while queue:
            event = heapq.heappop(queue)
            event._sim = None
            if event.cancelled:
                self._cancelled_queued -= 1
                continue
            if self.horizon is not None and event.time > self.horizon:
                return False
            self.now = event.time
            self._events_fired += 1
            event.callback()
            return True
        return False

    def run(self, until: Optional[int] = None) -> int:
        """Run until the queue drains (or ``until`` cycles).  Returns now.

        Each event is popped exactly once: an event beyond ``until`` is
        pushed back and the loop stops, instead of the old peek-then-step
        double scan over cancelled heads.
        """
        queue = self._queue
        heappop, heappush = heapq.heappop, heapq.heappush
        horizon = self.horizon
        if until is None:
            while queue:
                event = heappop(queue)
                event._sim = None
                if event.cancelled:
                    self._cancelled_queued -= 1
                    continue
                if horizon is not None and event.time > horizon:
                    break  # beyond the horizon: drop, as step() does
                self.now = event.time
                self._events_fired += 1
                event.callback()
        else:
            while queue:
                event = heappop(queue)
                if event.cancelled:
                    event._sim = None
                    self._cancelled_queued -= 1
                    continue
                if event.time > until:
                    heappush(queue, event)  # not ours to fire; put it back
                    break
                event._sim = None
                if horizon is not None and event.time > horizon:
                    continue  # beyond the horizon: drop, as step() does
                self.now = event.time
                self._events_fired += 1
                event.callback()
            self.now = max(self.now, until)
        return self.now

    def run_while(self, predicate: Callable[[], bool]) -> int:
        """Run events while ``predicate()`` holds and events remain."""
        queue = self._queue
        heappop = heapq.heappop
        horizon = self.horizon
        while predicate():
            # inline step(): this is the machine's main loop
            fired = False
            while queue:
                event = heappop(queue)
                event._sim = None
                if event.cancelled:
                    self._cancelled_queued -= 1
                    continue
                if horizon is not None and event.time > horizon:
                    break
                self.now = event.time
                self._events_fired += 1
                event.callback()
                fired = True
                break
            if not fired:
                break
        return self.now

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def _peek(self) -> Optional[Event]:
        while self._queue and self._queue[0].cancelled:
            event = heapq.heappop(self._queue)
            event._sim = None
            self._cancelled_queued -= 1
        return self._queue[0] if self._queue else None

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.

        O(1): maintained as queue length minus the count of cancelled
        events that have not been lazily removed yet.
        """
        return len(self._queue) - self._cancelled_queued

    @property
    def events_fired(self) -> int:
        return self._events_fired

    def next_event_time(self) -> Optional[int]:
        head = self._peek()
        return head.time if head is not None else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self.now} pending={self.pending}>"
