"""Shared-resource primitives used by the timing models.

Two abstractions cover every contended resource in the machine:

* :class:`Timeline` — a serially-reusable resource (a link wire, a memory
  bank, a cache data array).  Callers *reserve* an occupancy interval and
  are told when their turn starts.  Reservations are granted in request
  order (FIFO), which matches the age-based arbitration of the Spider-style
  switches at message granularity.

* :class:`FifoServer` — a single-server queue with an explicit service
  callback, used where the service time depends on the request (e.g. the
  memory module, whose occupancy differs for reads and writebacks).

Both record queueing-delay statistics, which the paper's latency-breakdown
figures report directly.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from .engine import Simulator


class Timeline:
    """Serially reusable resource granted in request order.

    ``reserve(duration)`` returns the cycle at which the caller's occupancy
    begins; the resource is then busy until ``start + duration``.  The
    caller is responsible for scheduling its own completion event.
    """

    __slots__ = ("sim", "name", "_free_at", "busy_cycles", "reservations", "queued_cycles")

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._free_at = 0
        self.busy_cycles = 0
        self.reservations = 0
        self.queued_cycles = 0

    def reserve(self, duration: int, earliest: Optional[int] = None) -> int:
        """Reserve ``duration`` cycles; returns the start cycle of the grant.

        ``earliest`` lets a caller that is not yet ready (e.g. a flit still
        in flight) ask for a slot no sooner than a future cycle.
        """
        # hot path (every link/port grant): branches instead of max()
        now = self.sim.now
        if earliest is None or earliest < now:
            request_at = now
        else:
            request_at = earliest
        start = self._free_at
        if start < request_at:
            start = request_at
        self._free_at = start + duration
        self.busy_cycles += duration
        self.reservations += 1
        self.queued_cycles += start - request_at
        return start

    def free_at(self) -> int:
        """Cycle at which the resource next becomes free."""
        return max(self._free_at, self.sim.now)

    def is_busy(self) -> bool:
        return self._free_at > self.sim.now

    def utilization(self) -> float:
        """Busy fraction of elapsed simulated time (0 if time has not advanced)."""
        if self.sim.now == 0:
            return 0.0
        return min(1.0, self.busy_cycles / self.sim.now)

    def mean_queueing_delay(self) -> float:
        if self.reservations == 0:
            return 0.0
        return self.queued_cycles / self.reservations


class FifoServer:
    """Single server with an explicit per-request service procedure.

    ``submit(request)`` enqueues; when the server is free it calls
    ``service(request)`` which must return the occupancy in cycles.  After
    that many cycles ``done(request)`` (if given) fires and the next request
    starts.
    """

    __slots__ = (
        "sim", "service", "done", "name", "_queue", "_busy", "served",
        "queued_cycles", "busy_cycles",
    )

    def __init__(
        self,
        sim: Simulator,
        service: Callable[[object], int],
        done: Optional[Callable[[object], None]] = None,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.service = service
        self.done = done
        self.name = name
        self._queue: Deque[Tuple[object, int]] = deque()
        self._busy = False
        self.served = 0
        self.queued_cycles = 0
        self.busy_cycles = 0

    def submit(self, request: object) -> None:
        self._queue.append((request, self.sim.now))
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        request, enqueued = self._queue.popleft()
        self.queued_cycles += self.sim.now - enqueued
        occupancy = self.service(request)
        self.busy_cycles += occupancy
        self.served += 1
        self.sim.call(occupancy, self._finish, request)

    def _finish(self, request: object) -> None:
        if self.done is not None:
            self.done(request)
        self._start_next()

    @property
    def depth(self) -> int:
        """Requests currently waiting (not counting the one in service)."""
        return len(self._queue)

    def mean_queueing_delay(self) -> float:
        if self.served == 0:
            return 0.0
        return self.queued_cycles / self.served
