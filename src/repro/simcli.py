"""``repro-sim``: run one workload on one machine from the command line.

Examples::

    repro-sim --app GE --param n=32 --design sc --sc-size 2048
    repro-sim --app FWA --design base --record fwa.trace
    repro-sim --replay fwa.trace --design nc
    repro-sim --app MM --design sc --nodes 32 --protocol mesi --verbose
    repro-sim --app GE --design sc --trace ge.json --metrics ge-metrics.json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .apps import PAPER_APPS, TraceApplication, TraceRecorder
from .stats.counters import READ_CATEGORIES
from .stats.report import format_table, percent
from .system.machine import Machine
from .system.presets import (
    base_config,
    caesar_plus_config,
    netcache_config,
    switch_cache_config,
)

_DESIGNS = ("base", "nc", "sc", "sc+")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Simulate one workload on a CC-NUMA machine "
                    "(Switch Cache / CAESAR reproduction).",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--app", choices=sorted(PAPER_APPS),
                        help="one of the paper's six kernels")
    source.add_argument("--replay", metavar="FILE",
                        help="replay a recorded op-trace file")
    parser.add_argument(
        "--param", action="append", default=[], metavar="K=V",
        help="application parameter override (repeatable), e.g. n=32",
    )
    parser.add_argument("--design", choices=_DESIGNS, default="base",
                        help="system design (default: base)")
    parser.add_argument("--nodes", type=int, default=16,
                        help="number of nodes (power of two, default 16)")
    parser.add_argument("--ppn", type=int, default=1,
                        help="processors per node (bus-based clusters)")
    parser.add_argument("--sc-size", type=int, default=2048,
                        help="switch-cache bytes per switch (sc/sc+ designs)")
    parser.add_argument("--nc-size", type=int, default=128 * 1024,
                        help="network-cache bytes per node (nc design)")
    parser.add_argument("--protocol", choices=("msi", "mesi"), default="msi")
    parser.add_argument("--record", metavar="FILE",
                        help="record the executed ops to a trace file")
    parser.add_argument("--trace", metavar="FILE", dest="trace_out",
                        help="write a Chrome/Perfetto trace-event JSON file")
    parser.add_argument("--trace-jsonl", metavar="FILE",
                        help="write the raw trace events as JSONL")
    parser.add_argument("--trace-limit", type=int, default=2_000_000,
                        help="max recorded trace events (default 2000000)")
    parser.add_argument("--metrics", metavar="FILE",
                        help="write counters/histograms/time-series JSON")
    parser.add_argument("--sample-interval", type=int, default=1000,
                        help="metrics sampling period in cycles "
                             "(default 1000; used with --metrics)")
    parser.add_argument("--verbose", action="store_true",
                        help="print per-category latencies and switch stats")
    parser.add_argument("--sanitize", action="store_true",
                        help="run with SCSan runtime invariant checks "
                             "(see repro.verify.sanitize)")
    return parser


def _parse_params(pairs: List[str]) -> dict:
    params = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"bad --param {pair!r}: expected K=V")
        key, value = pair.split("=", 1)
        try:
            params[key] = int(value)
        except ValueError:
            params[key] = value
    return params


def _make_config(args):
    common = dict(num_nodes=args.nodes, procs_per_node=args.ppn,
                  protocol=args.protocol)
    if args.design == "base":
        return base_config(**common)
    if args.design == "nc":
        return netcache_config(netcache_size=args.nc_size, **common)
    if args.design == "sc":
        return switch_cache_config(size=args.sc_size, **common)
    return caesar_plus_config(size=args.sc_size, **common)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.replay:
        app = TraceApplication(args.replay)
    else:
        app = PAPER_APPS[args.app](**_parse_params(args.param))
    recorder = None
    if args.record:
        recorder = TraceRecorder(app)
        app = recorder

    tracer = None
    if args.trace_out or args.trace_jsonl:
        from .trace import Tracer

        tracer = Tracer(limit=args.trace_limit)
    metrics = None
    if args.metrics:
        from .trace import MetricsRegistry

        metrics = MetricsRegistry(sample_interval=args.sample_interval)

    config = _make_config(args)
    machine = Machine(
        config, sanitize=True if args.sanitize else None,
        tracer=tracer, metrics=metrics,
    )
    stats = machine.run(app)

    print(f"design: {config.label()}   nodes: {config.num_nodes}"
          f" x {config.procs_per_node} procs   protocol: {config.protocol}")
    print(f"execution time: {stats.exec_time} cycles")
    dist = stats.service_distribution()
    rows = [(cat, stats.read_counts[cat], percent(dist[cat]))
            for cat in READ_CATEGORIES if stats.read_counts[cat]]
    print(format_table(("read served at", "count", "share"), rows))
    if args.verbose:
        from .stats.latency import breakdown_table, latency_table

        print()
        print(latency_table(stats))
        if stats.breakdown_count:
            print()
            print(breakdown_table(stats))
        print(f"\ntotal read stall: {stats.total_read_stall()} cycles")
        print(f"mean sharing degree: {stats.mean_sharing_degree():.2f}")
        if config.switch_caches_enabled:
            totals = machine.switch_cache_stats()
            print("switch caches:", ", ".join(f"{k}={v}" for k, v in totals.items()))
            print("hits by stage:", dict(sorted(stats.switch_hits_by_stage.items())))
    problems = machine.check_coherence()
    if problems:
        print(f"\nCOHERENCE VIOLATIONS ({len(problems)}):", file=sys.stderr)
        for problem in problems[:10]:
            print(f"  {problem}", file=sys.stderr)
        return 1
    if recorder is not None:
        recorder.save(args.record)
        total_ops = sum(len(v) for v in recorder.recorded.values())
        print(f"\nrecorded {total_ops} ops to {args.record}")
    if tracer is not None:
        from .trace import write_chrome_trace, write_jsonl

        label = f"repro-sim {args.app or args.replay} {config.label()}"
        if args.trace_out:
            count = write_chrome_trace(tracer, args.trace_out, label=label)
            note = f" ({tracer.dropped} dropped)" if tracer.dropped else ""
            print(f"trace: {count} events{note} -> {args.trace_out} "
                  f"(open in https://ui.perfetto.dev)")
        if args.trace_jsonl:
            count = write_jsonl(tracer, args.trace_jsonl)
            print(f"trace: {count} events -> {args.trace_jsonl}")
    if metrics is not None:
        import json as _json

        with open(args.metrics, "w") as handle:
            _json.dump(metrics.to_payload(), handle, indent=1)
        print(f"metrics: {len(metrics.counters)} counters, "
              f"{len(metrics.histograms)} histograms, "
              f"{len(metrics.series_map)} series -> {args.metrics}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
