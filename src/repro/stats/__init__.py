"""Statistics collection and report rendering."""

from .counters import BREAKDOWN_COMPONENTS, READ_CATEGORIES, MachineStats
from .latency import breakdown_table, format_bars, latency_table, service_bars
from .report import format_series, format_table, percent

__all__ = [
    "BREAKDOWN_COMPONENTS",
    "READ_CATEGORIES",
    "MachineStats",
    "breakdown_table",
    "format_bars",
    "latency_table",
    "service_bars",
    "format_series",
    "format_table",
    "percent",
]
