"""Machine-wide statistics.

Collects exactly the quantities the paper's evaluation reports:

* where every read was served — write buffer, L1, L2, network cache,
  switch cache (by MIN stage), local memory, remote memory, or a remote
  owner's cache (recall);
* read latency and read stall time per service class;
* remote-read latency breakdown (NI queueing, network transit, memory
  queueing and service — the paper's Q/T components);
* execution time (max processor finish time) and its stall decomposition.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from ..coherence.messages import Transaction

if TYPE_CHECKING:
    from ..trace.metrics import MetricsRegistry

#: service classes for reads, in reporting order
READ_CATEGORIES = (
    "wb",
    "l1",
    "l2",
    "cluster",
    "netcache",
    "switch",
    "local_mem",
    "remote_mem",
    "owner",
)

#: remote-read latency breakdown components (paper Sec. 2.1)
BREAKDOWN_COMPONENTS = (
    "req_ni_q",
    "req_transit",
    "mem_queue",
    "mem_service",
    "reply_ni_q",
    "reply_transit",
)


class MachineStats:
    """Aggregated statistics for one simulation run."""

    def __init__(self, num_nodes: int,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.num_nodes = num_nodes
        # optional MetricsRegistry: miss latencies feed log-bucketed
        # histograms whose exact total/count make the histogram mean
        # reconcile bit-for-bit with mean_latency()
        self._metrics = metrics
        self.read_counts: Dict[str, int] = {c: 0 for c in READ_CATEGORIES}
        self.read_latency: Dict[str, int] = {c: 0 for c in READ_CATEGORIES}
        self.switch_hits_by_stage: Dict[int, int] = {}
        self.breakdown_sums: Dict[str, int] = {c: 0 for c in BREAKDOWN_COMPONENTS}
        self.breakdown_count = 0
        self.writes_completed = 0
        self.write_latency = 0
        self.upgrades_completed = 0
        self.exec_time: Optional[int] = None
        self.finish_times: Dict[int, int] = {}
        self.per_node_reads: List[int] = [0] * num_nodes
        # sharing analysis (paper Fig. 3 / Sec. 2.2): which processors read
        # each block (at L2-miss granularity), and whether an ideal global
        # cache could have served each read (same block+version seen before)
        self.block_readers: Dict[int, set] = {}
        self.block_read_counts: Dict[int, int] = {}
        self._seen_versions: set = set()
        self.ideal_global_hits = 0
        self.ideal_global_misses = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_read_hit(self, node: int, category: str) -> None:
        self.read_counts[category] += 1
        self.per_node_reads[node] += 1
        # hits are effectively free relative to misses; latency ~1-10 is
        # accounted by the processor's local clock, not recorded here

    def add_read_hits(self, node: int, wb: int, l1: int, l2: int) -> None:
        """Bulk form of :meth:`record_read_hit` — the processor's
        fast-forward loop batches hit counts in locals and flushes them
        here when it leaves the loop."""
        counts = self.read_counts
        counts["wb"] += wb
        counts["l1"] += l1
        counts["l2"] += l2
        self.per_node_reads[node] += wb + l1 + l2

    def record_read_txn(self, node: int, txn: Transaction, stall: int) -> None:
        category = txn.served_by or "remote_mem"
        self.read_counts[category] += 1
        self.read_latency[category] += stall
        self.per_node_reads[node] += 1
        if self._metrics is not None:
            self._metrics.histogram("read_latency/" + category).observe(stall)
        if category == "switch" and txn.served_stage is not None:
            self.switch_hits_by_stage[txn.served_stage] = (
                self.switch_hits_by_stage.get(txn.served_stage, 0) + 1
            )
        if category in ("remote_mem", "owner"):
            self._record_breakdown(txn)
        self.block_readers.setdefault(txn.addr, set()).add(node)
        self.block_read_counts[txn.addr] = self.block_read_counts.get(txn.addr, 0) + 1
        key = (txn.addr, txn.data)
        if key in self._seen_versions:
            self.ideal_global_hits += 1
        else:
            self._seen_versions.add(key)
            self.ideal_global_misses += 1

    def _record_breakdown(self, txn: Transaction) -> None:
        req, reply = txn.req_msg, txn.reply_msg
        if req is None or reply is None:
            return
        if req.injected_at < 0 or reply.delivered_at < 0:
            return
        mem_wait = reply.payload.get("mem_wait", 0)
        home_service = max(0, reply.created_at - req.delivered_at)
        self.breakdown_sums["req_ni_q"] += max(0, req.injected_at - req.created_at)
        self.breakdown_sums["req_transit"] += max(
            0, req.delivered_at - req.injected_at
        )
        self.breakdown_sums["mem_queue"] += mem_wait
        self.breakdown_sums["mem_service"] += max(0, home_service - mem_wait)
        self.breakdown_sums["reply_ni_q"] += max(
            0, reply.injected_at - reply.created_at
        )
        self.breakdown_sums["reply_transit"] += max(
            0, reply.delivered_at - reply.injected_at
        )
        self.breakdown_count += 1

    def record_write_txn(self, node: int, txn: Transaction) -> None:
        if txn.kind == "upgrade":
            self.upgrades_completed += 1
        else:
            self.writes_completed += 1
        self.write_latency += txn.latency
        if self._metrics is not None:
            self._metrics.histogram("write_latency/" + txn.kind).observe(
                txn.latency
            )

    def record_finish(self, node: int, time: int) -> None:
        self.finish_times[node] = time
        if len(self.finish_times) == self.num_nodes:
            self.exec_time = max(self.finish_times.values())

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    def total_reads(self) -> int:
        return sum(self.read_counts.values())

    def shared_reads(self) -> int:
        """Reads that went past the processor caches (L2 misses)."""
        return sum(
            self.read_counts[c]
            for c in ("cluster", "netcache", "switch", "local_mem",
                      "remote_mem", "owner")
        )

    def remote_reads(self) -> int:
        """Reads to remote homes (however they were served)."""
        return sum(
            self.read_counts[c]
            for c in ("netcache", "switch", "remote_mem", "owner")
        )

    def reads_at_remote_memory(self) -> int:
        """The paper's headline metric: reads served at a distant memory."""
        return self.read_counts["remote_mem"] + self.read_counts["owner"]

    def mean_latency(self, category: str) -> float:
        count = self.read_counts[category]
        return self.read_latency[category] / count if count else 0.0

    def mean_remote_read_latency(self) -> float:
        cats = ("netcache", "switch", "remote_mem", "owner")
        count = sum(self.read_counts[c] for c in cats)
        total = sum(self.read_latency[c] for c in cats)
        return total / count if count else 0.0

    def breakdown_means(self) -> Dict[str, float]:
        if self.breakdown_count == 0:
            return {c: 0.0 for c in BREAKDOWN_COMPONENTS}
        return {
            c: self.breakdown_sums[c] / self.breakdown_count
            for c in BREAKDOWN_COMPONENTS
        }

    def service_distribution(self) -> Dict[str, float]:
        total = self.total_reads()
        if total == 0:
            return {c: 0.0 for c in READ_CATEGORIES}
        return {c: self.read_counts[c] / total for c in READ_CATEGORIES}

    def total_read_stall(self) -> int:
        return sum(self.read_latency.values())

    def sharing_histogram(self, max_degree: int) -> Dict[int, int]:
        """Reads-to-blocks-read-by-k-processors histogram (paper Fig. 3).

        Bucket k holds the number of L2-miss reads that went to blocks
        ultimately read by exactly k distinct processors.
        """
        histogram: Dict[int, int] = {k: 0 for k in range(1, max_degree + 1)}
        for block, readers in self.block_readers.items():
            degree = min(len(readers), max_degree)
            histogram[degree] += self.block_read_counts[block]
        return histogram

    def mean_sharing_degree(self) -> float:
        if not self.block_readers:
            return 0.0
        weighted = sum(
            len(readers) * self.block_read_counts[block]
            for block, readers in self.block_readers.items()
        )
        total = sum(self.block_read_counts.values())
        return weighted / total if total else 0.0

    def ideal_global_hit_rate(self) -> float:
        total = self.ideal_global_hits + self.ideal_global_misses
        return self.ideal_global_hits / total if total else 0.0

    # ------------------------------------------------------------------
    # serialization (process-pool transport and the on-disk run cache)
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict:
        """Complete, JSON-serializable state of this collector.

        Unlike :meth:`to_dict` (a human-oriented summary), this captures
        every field exactly, so :meth:`from_payload` rebuilds a collector
        whose derived quantities are bit-identical to the original's.
        Integer-keyed maps are stored as sorted ``[key, value]`` pairs
        because JSON objects only allow string keys.
        """
        return {
            "num_nodes": self.num_nodes,
            "read_counts": dict(self.read_counts),
            "read_latency": dict(self.read_latency),
            "switch_hits_by_stage": sorted(self.switch_hits_by_stage.items()),
            "breakdown_sums": dict(self.breakdown_sums),
            "breakdown_count": self.breakdown_count,
            "writes_completed": self.writes_completed,
            "write_latency": self.write_latency,
            "upgrades_completed": self.upgrades_completed,
            "exec_time": self.exec_time,
            "finish_times": sorted(self.finish_times.items()),
            "per_node_reads": list(self.per_node_reads),
            "block_readers": [
                [addr, sorted(readers)]
                for addr, readers in sorted(self.block_readers.items())
            ],
            "block_read_counts": sorted(self.block_read_counts.items()),
            "seen_versions": sorted(
                (list(v) for v in self._seen_versions),
                # data may be None; sort it before any integer version
                key=lambda v: (v[0], v[1] is not None, v[1] or 0),
            ),
            "ideal_global_hits": self.ideal_global_hits,
            "ideal_global_misses": self.ideal_global_misses,
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "MachineStats":
        """Rebuild a collector from :meth:`to_payload` output."""
        stats = cls(payload["num_nodes"])
        stats.read_counts = dict(payload["read_counts"])
        stats.read_latency = dict(payload["read_latency"])
        stats.switch_hits_by_stage = {
            int(k): v for k, v in payload["switch_hits_by_stage"]
        }
        stats.breakdown_sums = dict(payload["breakdown_sums"])
        stats.breakdown_count = payload["breakdown_count"]
        stats.writes_completed = payload["writes_completed"]
        stats.write_latency = payload["write_latency"]
        stats.upgrades_completed = payload["upgrades_completed"]
        stats.exec_time = payload["exec_time"]
        stats.finish_times = {int(k): v for k, v in payload["finish_times"]}
        stats.per_node_reads = list(payload["per_node_reads"])
        stats.block_readers = {
            int(addr): set(readers) for addr, readers in payload["block_readers"]
        }
        stats.block_read_counts = {
            int(k): v for k, v in payload["block_read_counts"]
        }
        stats._seen_versions = {tuple(v) for v in payload["seen_versions"]}
        stats.ideal_global_hits = payload["ideal_global_hits"]
        stats.ideal_global_misses = payload["ideal_global_misses"]
        return stats

    def to_dict(self) -> Dict:
        """JSON-serializable summary of the run (for tooling/export)."""
        return {
            "exec_time": self.exec_time,
            "read_counts": dict(self.read_counts),
            "read_latency_sums": dict(self.read_latency),
            "switch_hits_by_stage": {
                str(k): v for k, v in self.switch_hits_by_stage.items()
            },
            "breakdown_means": self.breakdown_means(),
            "writes_completed": self.writes_completed,
            "upgrades_completed": self.upgrades_completed,
            "total_reads": self.total_reads(),
            "remote_reads": self.remote_reads(),
            "reads_at_remote_memory": self.reads_at_remote_memory(),
            "mean_remote_read_latency": self.mean_remote_read_latency(),
            "total_read_stall": self.total_read_stall(),
            "mean_sharing_degree": self.mean_sharing_degree(),
            "ideal_global_hit_rate": self.ideal_global_hit_rate(),
            "finish_times": {str(k): v for k, v in self.finish_times.items()},
        }
