"""Latency analysis helpers built on :class:`MachineStats`.

These render the two latency views the paper's evaluation uses — mean
read latency per service class, and the remote-read component breakdown
(NI queueing / transit / memory queueing / memory service) — as tables
or ASCII bars for CLI/report output.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .counters import BREAKDOWN_COMPONENTS, READ_CATEGORIES, MachineStats
from .report import format_table

#: human-readable component labels for the breakdown view
_COMPONENT_LABELS = {
    "req_ni_q": "request NI queue",
    "req_transit": "request transit",
    "mem_queue": "memory queue",
    "mem_service": "memory service",
    "reply_ni_q": "reply NI queue",
    "reply_transit": "reply transit",
}


def service_latency_rows(stats: MachineStats) -> List[Tuple[str, int, float]]:
    """(category, count, mean latency) for every class that served reads."""
    rows = []
    for category in READ_CATEGORIES:
        count = stats.read_counts[category]
        if count:
            rows.append((category, count, stats.mean_latency(category)))
    return rows


def latency_table(stats: MachineStats) -> str:
    rows = [
        (cat, count, f"{mean:.1f}")
        for cat, count, mean in service_latency_rows(stats)
    ]
    return format_table(
        ("served at", "reads", "mean latency (cyc)"), rows,
        title="Read latency by service class",
    )


def breakdown_table(stats: MachineStats) -> str:
    means = stats.breakdown_means()
    total = sum(means.values()) or 1.0
    rows = [
        (_COMPONENT_LABELS[c], f"{means[c]:.1f}", f"{means[c] / total:.1%}")
        for c in BREAKDOWN_COMPONENTS
    ]
    return format_table(
        ("component", "cycles", "share"), rows,
        title=f"Remote read latency breakdown "
              f"({stats.breakdown_count} reads sampled)",
    )


def format_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal ASCII bars, scaled to the max value."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    peak = max(values) if values else 0.0
    label_width = max((len(l) for l in labels), default=0)
    lines = []
    for label, value in zip(labels, values):
        filled = int(round(width * value / peak)) if peak > 0 else 0
        bar = "#" * filled
        lines.append(f"{label.ljust(label_width)}  {bar} {value:.1f}{unit}")
    return "\n".join(lines)


def service_bars(stats: MachineStats, width: int = 40) -> str:
    """Bars of read counts per service class (non-empty classes only)."""
    rows = service_latency_rows(stats)
    return format_bars(
        [cat for cat, _c, _m in rows],
        [float(count) for _cat, count, _m in rows],
        width=width,
    )
