"""Plain-text table/series rendering for the benchmark harness.

Every experiment runner prints its result through these helpers so the
rows/series the paper reports come out in a uniform, diff-friendly form.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def _fmt(cell: Cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}" if abs(cell) < 100 else f"{cell:.1f}"
    return str(cell)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]], title: str = "") -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[Cell], ys: Sequence[Cell]) -> str:
    """Render one figure series as `name: (x, y) (x, y) ...`."""
    pairs = " ".join(f"({_fmt(x)}, {_fmt(y)})" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def percent(value: float) -> str:
    return f"{100.0 * value:.1f}%"
