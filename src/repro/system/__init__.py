"""System configuration and machine assembly."""

from .addressing import AddressSpace, Matrix, Vector
from .config import KB, SystemConfig
from .machine import Machine
from .presets import base_config, caesar_plus_config, netcache_config, switch_cache_config

__all__ = [
    "AddressSpace",
    "Matrix",
    "Vector",
    "KB",
    "SystemConfig",
    "Machine",
    "base_config",
    "caesar_plus_config",
    "netcache_config",
    "switch_cache_config",
]
