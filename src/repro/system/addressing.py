"""Shared address space with explicit home placement.

The CC-NUMA shared memory is distributed across the nodes; applications
allocate their data structures here and choose a placement policy per
allocation:

* ``home=<node>`` — the whole range lives in one node's memory (used for
  row-partitioned matrices, where each processor's rows are local to it);
* ``interleave=True`` — consecutive blocks round-robin across all nodes
  (used for globally shared structures and the synchronization region).

``home_of`` resolves the home node of any address (the simulator calls
it once per L2 miss; results are memoized per block).
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigError


class AddressSpace:
    """Allocator + home map for one machine's shared memory."""

    def __init__(self, num_nodes: int, block_size: int) -> None:
        self.num_nodes = num_nodes
        self.block_size = block_size
        self._starts: List[int] = []
        # parallel to _starts: (end, fixed_home_or_None)
        self._ranges: List[Tuple[int, Optional[int]]] = []
        self._next = block_size  # keep address 0 unused
        self._home_cache: Dict[int, int] = {}

    def alloc(
        self, nbytes: int, home: Optional[int] = None, interleave: bool = False
    ) -> int:
        """Allocate a block-aligned range; returns its base address."""
        if nbytes <= 0:
            raise ConfigError(f"alloc of {nbytes} bytes")
        if home is not None and interleave:
            raise ConfigError("choose either a fixed home or interleaving")
        if home is not None and not 0 <= home < self.num_nodes:
            raise ConfigError(f"home {home} out of range")
        base = self._next
        size = -(-nbytes // self.block_size) * self.block_size
        self._next = base + size
        self._starts.append(base)
        self._ranges.append((base + size, home))
        return base

    def home_of(self, addr: int) -> int:
        block = (addr // self.block_size) * self.block_size
        cached = self._home_cache.get(block)
        if cached is not None:
            return cached
        home = self._resolve(block)
        self._home_cache[block] = home
        return home

    def _resolve(self, block: int) -> int:
        idx = bisect.bisect_right(self._starts, block) - 1
        if idx >= 0:
            end, fixed_home = self._ranges[idx]
            if block < end:
                if fixed_home is not None:
                    return fixed_home
                start = self._starts[idx]
                return ((block - start) // self.block_size) % self.num_nodes
        # unmapped addresses (possible in ad-hoc tests): interleave globally
        return (block // self.block_size) % self.num_nodes

    @property
    def bytes_allocated(self) -> int:
        return self._next - self.block_size

    # ------------------------------------------------------------------
    # layout export/restore (used by the trace front-end)
    # ------------------------------------------------------------------
    def export_layout(self) -> List[Tuple[int, int, Optional[int]]]:
        """The allocation map as ``(start, end, fixed_home_or_None)`` rows."""
        return [
            (start, end, home)
            for start, (end, home) in zip(self._starts, self._ranges)
        ]

    def restore_layout(self, rows: List[Tuple[int, int, Optional[int]]]) -> None:
        """Recreate a previously exported allocation map.

        Only legal on a fresh space; homes out of range for this machine
        are rejected (a trace recorded on a larger machine cannot replay
        on a smaller one).
        """
        if self._starts:
            raise ConfigError("restore_layout on a non-empty address space")
        last_end = self.block_size
        for start, end, home in rows:
            if start < last_end or end <= start:
                raise ConfigError(f"bad layout row ({start:#x}, {end:#x})")
            if home is not None and not 0 <= home < self.num_nodes:
                raise ConfigError(f"layout home {home} out of range")
            self._starts.append(start)
            self._ranges.append((end, home))
            last_end = end
        self._next = last_end


class Matrix:
    """A 2-D array of 8-byte elements laid out row-major in shared memory.

    ``row_home(i)`` chooses the home node per row; by default rows are
    interleaved block-wise like any flat allocation.
    """

    def __init__(
        self,
        space: AddressSpace,
        rows: int,
        cols: int,
        elem_bytes: int = 8,
        row_home=None,
    ) -> None:
        self.rows = rows
        self.cols = cols
        self.elem_bytes = elem_bytes
        self.row_bytes = cols * elem_bytes
        if row_home is None:
            self._base = space.alloc(rows * self.row_bytes, interleave=True)
            self._row_base = [self._base + i * self.row_bytes for i in range(rows)]
        else:
            self._row_base = [
                space.alloc(self.row_bytes, home=row_home(i)) for i in range(rows)
            ]

    def addr(self, i: int, j: int) -> int:
        return self._row_base[i] + j * self.elem_bytes

    def row_addr(self, i: int) -> int:
        return self._row_base[i]


class Vector:
    """A 1-D array of 8-byte elements."""

    def __init__(
        self,
        space: AddressSpace,
        length: int,
        elem_bytes: int = 8,
        home: Optional[int] = None,
        interleave: bool = True,
    ) -> None:
        self.length = length
        self.elem_bytes = elem_bytes
        if home is not None:
            interleave = False
        self.base = space.alloc(length * elem_bytes, home=home, interleave=interleave)

    def addr(self, i: int) -> int:
        return self.base + i * self.elem_bytes
