"""System configuration (the knobs of the paper's Table 2).

Defaults describe the paper's base 16-node system: 200 MHz processors
with 16 KB L1 / 128 KB L2, full-map MSI directory, release consistency
with an 8-entry write buffer, a 4-stage wormhole BMIN of 4x4 switches
(4-cycle switch, 4 cycles/flit on 16-bit links), and a 40-cycle memory
that costs >50 cycles end to end.  Switch caches and network caches are
disabled by default; presets in :mod:`repro.system.presets` turn them on.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Set

from ..errors import ConfigError

KB = 1024


@dataclasses.dataclass
class SystemConfig:
    """Every parameter of one simulated machine."""

    # machine shape
    num_nodes: int = 16
    procs_per_node: int = 1  # >1 = bus-based clusters (DASH-style [14])
    block_size: int = 64

    # processor caches
    l1_size: int = 16 * KB
    l1_assoc: int = 2
    l1_hit_cycles: int = 1
    l2_size: int = 128 * KB
    l2_assoc: int = 4
    l2_hit_cycles: int = 10
    l2_write_cycles: int = 3
    write_buffer_entries: int = 8

    # memory subsystem
    memory_access_cycles: int = 40
    memory_bus_cycles: int = 6
    local_bus_cycles: int = 2

    # interconnect (Cavallino/Spider parameters)
    switch_delay: int = 4
    cycles_per_flit: int = 4
    # 'message' = fast per-hop pipelined model (default); 'flit' = the
    # flit-accurate wormhole reference (slower; used for validation)
    network_model: str = "message"

    # switch cache (CAESAR); size 0 disables
    switch_cache_size: int = 0
    switch_cache_assoc: int = 2
    switch_cache_banks: int = 1
    switch_cache_width_bits: int = 64
    switch_cache_bypass_threshold: int = 4
    switch_cache_deposit_threshold: int = 16
    switch_cache_stages: Optional[Set[int]] = None  # None = all stages
    switch_cache_replacement: str = "lru"  # 'lru' | 'fifo' | 'random'

    # network cache (remote data cache); size 0 disables
    netcache_size: int = 0
    netcache_assoc: int = 4
    netcache_access_cycles: int = 12

    # coherence protocol: the paper's MSI, or the MESI extension (adds a
    # clean-exclusive state with silent E->M upgrade and replacement
    # notifications so the directory's owner tracking stays exact)
    protocol: str = "msi"

    # synchronization idealizations (see DESIGN.md substitutions)
    barrier_wakeup_cycles: int = 120
    lock_handoff_cycles: int = 80

    # simulation controls
    quantum: int = 500
    trace_values: bool = False

    def __post_init__(self) -> None:
        if self.num_nodes < 2 or self.num_nodes & (self.num_nodes - 1):
            raise ConfigError(
                f"num_nodes must be a power of two >= 2, got {self.num_nodes}"
            )
        if self.block_size % 8:
            raise ConfigError("block_size must be a multiple of the 8-byte flit")
        if self.switch_cache_size < 0 or self.netcache_size < 0:
            raise ConfigError("cache sizes must be non-negative")
        if self.quantum < 1:
            raise ConfigError("quantum must be positive")
        if self.procs_per_node < 1:
            raise ConfigError("procs_per_node must be >= 1")
        if self.protocol not in ("msi", "mesi"):
            raise ConfigError(f"protocol must be 'msi' or 'mesi', got {self.protocol!r}")
        if self.switch_cache_replacement not in ("lru", "fifo", "random"):
            raise ConfigError(
                f"bad switch_cache_replacement {self.switch_cache_replacement!r}"
            )
        if self.network_model not in ("message", "flit"):
            raise ConfigError(f"bad network_model {self.network_model!r}")


    # convenience
    @property
    def switch_caches_enabled(self) -> bool:
        return self.switch_cache_size > 0

    @property
    def netcache_enabled(self) -> bool:
        return self.netcache_size > 0

    def label(self) -> str:
        if self.switch_caches_enabled:
            kind = "CAESAR+" if self.switch_cache_banks > 1 else "CAESAR"
            return f"SC-{kind}-{self.switch_cache_size}B"
        if self.netcache_enabled:
            return f"NC-{self.netcache_size // KB}KB"
        return "base"

    def replaced(self, **changes) -> "SystemConfig":
        """A copy of this config with ``changes`` applied."""
        return dataclasses.replace(self, **changes)
