"""Full-machine assembly and run loop.

``Machine`` wires a :class:`SystemConfig` into a complete CC-NUMA
multiprocessor: BMIN fabric (with CAESAR engines when enabled), one
:class:`~repro.node.node.Node` per node, barrier/lock managers, a shared
address space, and the statistics collector.  ``run`` executes an
application to completion and returns the statistics.

The machine also exposes the whole-system coherence audit used by the
test suite (:meth:`check_coherence`): at quiescence every cached copy —
L1, L2, network cache, or switch cache — must agree with its home
directory, and directory ownership must be exact.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from ..apps.opstream import compile_stream, ops_mode
from ..cache.states import DirState, LineState
from ..core.caesar import CaesarEngine
from ..core.policy import CachingPolicy
from ..core.switchcache import SwitchCacheGeometry
from ..errors import DeadlockError, SimulationError
from ..network.fabric import Fabric
from ..network.flitref import FlitNetwork
from ..network.message import MessagePool
from ..network.topology import BminTopology
from ..node.node import Node
from ..node.sync import BarrierManager, LockManager
from ..sim.engine import Simulator
from ..stats.counters import MachineStats
from .addressing import AddressSpace
from .config import SystemConfig

if TYPE_CHECKING:
    from ..trace.metrics import MetricsRegistry
    from ..trace.tracer import Tracer


class Machine:
    """One configured CC-NUMA multiprocessor."""

    def __init__(
        self,
        config: SystemConfig,
        sanitize: Optional[bool] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config
        self.metrics = metrics
        if sanitize is None:
            sanitize = os.environ.get("REPRO_SANITIZE", "") not in ("", "0")
        if sanitize:
            from ..verify.sanitize import (
                SanitizedFabric,
                SanitizedSimulator,
                Sanitizer,
            )

            self.sanitizer: Optional[Sanitizer] = Sanitizer()
            self.sim: Simulator = SanitizedSimulator(self.sanitizer)
        else:
            self.sanitizer = None
            self.sim = Simulator()
        # installed before any component is built, so every hook sees it
        self.sim.tracer = tracer
        # one worm pool per machine: a single message-id stream and one
        # free list shared by the fabric and every controller
        self.pool = MessagePool(config.block_size)
        self.topology = BminTopology(config.num_nodes)
        if config.network_model == "flit":
            # the flit-granularity reference model has no sanitized
            # variant; SCSan still covers engine, coherence, and sync
            self.fabric = FlitNetwork(
                self.sim,
                self.topology,
                cycles_per_flit=config.cycles_per_flit,
                switch_delay=config.switch_delay,
                pool=self.pool,
            )
        elif self.sanitizer is not None:
            self.fabric = SanitizedFabric(
                self.sanitizer,
                self.sim,
                self.topology,
                switch_delay=config.switch_delay,
                cycles_per_flit=config.cycles_per_flit,
                pool=self.pool,
            )
        else:
            self.fabric = Fabric(
                self.sim,
                self.topology,
                switch_delay=config.switch_delay,
                cycles_per_flit=config.cycles_per_flit,
                pool=self.pool,
            )
        if config.switch_caches_enabled:
            self.fabric.install_cache_engines(self._make_engine)
        self.space = AddressSpace(config.num_nodes, config.block_size)
        self.stats = MachineStats(
            config.num_nodes * config.procs_per_node, metrics=metrics
        )
        self.barriers = BarrierManager(
            self.sim,
            config.num_nodes * config.procs_per_node,
            config.barrier_wakeup_cycles,
        )
        self.locks = LockManager(self.sim, config.lock_handoff_cycles)
        self._sync_addrs: Dict[Tuple[str, int], int] = {}
        self._done_count = 0
        self._num_procs = config.num_nodes * config.procs_per_node
        self.nodes: List[Node] = [
            Node(
                self.sim,
                node_id,
                config,
                self.fabric,
                self.space.home_of,
                self.barriers,
                self.locks,
                self.stats,
                self.sync_addr,
                self._node_done,
                pool=self.pool,
            )
            for node_id in range(config.num_nodes)
        ]
        if self.sanitizer is not None:
            self.sanitizer.attach_machine(self)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _make_engine(self, switch_id) -> CaesarEngine:
        cfg = self.config
        geometry = SwitchCacheGeometry(
            size=cfg.switch_cache_size,
            block_size=cfg.block_size,
            assoc=cfg.switch_cache_assoc,
            banks=cfg.switch_cache_banks,
            output_width_bits=cfg.switch_cache_width_bits,
            replacement=cfg.switch_cache_replacement,
        )
        policy = CachingPolicy(
            bypass_threshold=cfg.switch_cache_bypass_threshold,
            deposit_threshold=cfg.switch_cache_deposit_threshold,
            enabled_stages=cfg.switch_cache_stages,
        )
        return CaesarEngine(self.sim, switch_id, geometry, policy)

    def sync_addr(self, kind: str, sync_id: int) -> int:
        """Block-aligned address of a synchronization variable."""
        key = (kind, sync_id)
        addr = self._sync_addrs.get(key)
        if addr is None:
            addr = self.space.alloc(self.config.block_size, interleave=True)
            self._sync_addrs[key] = addr
        return addr

    def _node_done(self, proc_id: int) -> None:
        self._done_count += 1
        self.stats.record_finish(proc_id, self.sim.now)
        if self._done_count >= self._num_procs:
            self.sim.request_stop()

    def _procs_remaining(self) -> bool:
        """Main-loop predicate: processors still running (called per event)."""
        return self._done_count < self._num_procs

    def _sample_metrics(self) -> None:
        """Periodic sampler: occupancy/hit-rate and memory backlogs.

        Scheduled from :meth:`run` only when ``metrics.sample_interval``
        is set, so harness runs (which leave it None) add no simulator
        events and keep cached results byte-stable.
        """
        metrics = self.metrics
        if metrics is None:  # only scheduled with a registry installed
            return
        now = self.sim.now
        tracer = self.sim.tracer
        sc_blocks = 0
        sc_hits = 0
        sc_lookups = 0
        for switch in self.fabric.switches.values():
            engine = switch.cache_engine
            if engine is None:
                continue
            occupancy = engine.occupancy()
            sc_blocks += occupancy
            sc_hits += engine.hits
            sc_lookups += engine.lookups
            metrics.series(f"sc_occupancy/{engine.trace_track}").sample(
                now, occupancy
            )
            if tracer is not None:
                tracer.counter(engine.trace_track, "sc_occupancy", now,
                               occupancy)
        metrics.series("sc_occupancy/total").sample(now, sc_blocks)
        hit_rate = sc_hits / sc_lookups if sc_lookups else 0.0
        metrics.series("sc_hit_rate").sample(now, hit_rate)
        for node in self.nodes:
            backlog = max(0, node.memory.array.free_at() - now)
            metrics.series(f"mem_backlog/home{node.node_id}").sample(
                now, backlog
            )
            if tracer is not None:
                tracer.counter(f"home{node.node_id}", "mem_backlog", now,
                               backlog)
        if self._done_count < self.num_procs:
            self.sim.schedule(metrics.sample_interval, self._sample_metrics)

    # ------------------------------------------------------------------
    # processor/node helpers
    # ------------------------------------------------------------------
    @property
    def num_procs(self) -> int:
        return self._num_procs

    def node_of_proc(self, proc_id: int) -> int:
        return proc_id // self.config.procs_per_node

    def stacks(self):
        for node in self.nodes:
            yield from node.stacks

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(self, app, max_cycles: Optional[int] = None) -> MachineStats:
        """Execute ``app`` on all processors until completion."""
        app.setup(self)
        compiled = ops_mode() == "compiled"
        for stack in self.stacks():
            if compiled:
                stack.processor.start_compiled(
                    compile_stream(app, stack.proc_id, self)
                )
            else:
                stack.processor.start(app.ops(stack.proc_id, self))
        metrics = self.metrics
        if metrics is not None and metrics.sample_interval:
            self.sim.schedule(metrics.sample_interval, self._sample_metrics)
        if self._done_count < self._num_procs:
            self.sim.run_until_stop()
        if self._done_count < self.num_procs:
            stuck = [s.proc_id for s in self.stacks() if not s.processor.done]
            raise DeadlockError(
                f"event queue drained with processors {stuck} unfinished "
                f"at cycle {self.sim.now}"
            )
        # let in-flight traffic (writebacks, late invalidations) quiesce
        self.sim.run(until=max_cycles)
        if self.sanitizer is not None:
            self.sanitizer.final_check(self)
        if self.stats.exec_time is None:
            raise SimulationError("finish times missing")
        return self.stats

    # ------------------------------------------------------------------
    # whole-system coherence audit (used by tests)
    # ------------------------------------------------------------------
    def check_coherence(self) -> List[str]:
        """Return a list of invariant violations (empty when coherent).

        Only meaningful at quiescence (no events pending).
        """
        problems: List[str] = []
        # collect every directory entry
        for home in self.nodes:
            for block, entry in home.directory.entries():
                holders_m = []
                holders_s = []
                for node in self.nodes:
                    for stack in node.stacks:
                        line = stack.hierarchy.l2.probe(block)
                        if line is None:
                            continue
                        if line.state.owned():  # MODIFIED or EXCLUSIVE
                            holders_m.append((node.node_id, line.data))
                        else:
                            holders_s.append((node.node_id, line.data))
                if entry.state is DirState.MODIFIED:
                    if len(holders_m) != 1 or holders_m[0][0] != entry.owner:
                        problems.append(
                            f"block {block:#x}: dir owner {entry.owner} but "
                            f"M holders {holders_m}"
                        )
                    for node_id, version in holders_s:
                        problems.append(
                            f"block {block:#x}: node {node_id} holds stale "
                            f"S copy v{version} while block is MODIFIED "
                            f"(owner {entry.owner})"
                        )
                else:
                    if holders_m:
                        problems.append(
                            f"block {block:#x}: dir {entry.state} but M "
                            f"holders {holders_m}"
                        )
                    for node_id, version in holders_s:
                        if not entry.has_sharer(node_id):
                            problems.append(
                                f"block {block:#x}: node {node_id} holds S "
                                f"copy but is not a registered sharer"
                            )
                        if version != entry.version:
                            problems.append(
                                f"block {block:#x}: node {node_id} S copy "
                                f"v{version} != home v{entry.version}"
                            )
                # network caches must match home versions too
                for node in self.nodes:
                    if node.netcache is None:
                        continue
                    nc_line = node.netcache.array.probe(block)
                    if nc_line is not None:
                        if entry.state is DirState.MODIFIED:
                            problems.append(
                                f"block {block:#x}: netcache {node.node_id} "
                                f"copy while block is MODIFIED"
                            )
                        elif nc_line.data != entry.version:
                            problems.append(
                                f"block {block:#x}: netcache {node.node_id} "
                                f"v{nc_line.data} != home v{entry.version}"
                            )
        # switch caches must agree with home directories
        for sid, block, version in self.fabric.switch_cache_blocks():
            home = self.nodes[self.space.home_of(block)]
            entry = home.directory.entry(block)
            if entry.state is DirState.MODIFIED:
                problems.append(
                    f"block {block:#x}: switch {sid} copy while MODIFIED"
                )
            elif version != entry.version:
                problems.append(
                    f"block {block:#x}: switch {sid} copy v{version} != "
                    f"home v{entry.version}"
                )
        return problems

    # convenience accessors -------------------------------------------------
    def memory_version(self, addr: int) -> int:
        home = self.nodes[self.space.home_of(addr)]
        return home.directory.version_of(addr)

    def summary(self) -> str:
        """Human-readable post-run report (service classes, latencies)."""
        from ..stats.latency import breakdown_table, latency_table

        lines = [
            f"machine: {self.config.label()}  nodes={self.config.num_nodes}"
            f" x {self.config.procs_per_node} procs"
            f"  protocol={self.config.protocol}",
        ]
        if self.stats.exec_time is not None:
            lines.append(f"execution time: {self.stats.exec_time} cycles")
        lines.append(latency_table(self.stats))
        if self.stats.breakdown_count:
            lines.append(breakdown_table(self.stats))
        if self.config.switch_caches_enabled:
            totals = self.switch_cache_stats()
            lines.append(
                "switch caches: "
                + ", ".join(f"{k}={v}" for k, v in totals.items())
            )
        return "\n\n".join(lines)

    def switch_cache_stats(self) -> Dict[str, int]:
        totals = {
            "lookups": 0, "hits": 0, "misses": 0, "bypasses": 0,
            "deposits": 0, "deposit_skips": 0, "snoops": 0, "purges": 0,
        }
        for switch in self.fabric.switches.values():
            engine = switch.cache_engine
            if engine is None:
                continue
            for key in totals:
                totals[key] += getattr(engine, key)
        return totals
