"""Canonical system configurations used throughout the evaluation.

These mirror the paper's compared systems:

* ``base_config``        — the plain CC-NUMA machine (Section 5.1).
* ``netcache_config``    — base + an SRAM network cache at each NI
  (the remote-data-cache comparator [16][29]).
* ``switch_cache_config``— base + CAESAR switch caches in every switch;
  size defaults to 2 KB per switch, sweepable down to the paper's 512 B.
* ``caesar_plus_config`` — switch caches with 2-way interleaved banks.
"""

from __future__ import annotations

from typing import Optional, Set

from .config import KB, SystemConfig


def base_config(num_nodes: int = 16, **overrides) -> SystemConfig:
    """The paper's base 16-node system."""
    return SystemConfig(num_nodes=num_nodes, **overrides)


def netcache_config(
    num_nodes: int = 16, netcache_size: int = 128 * KB, **overrides
) -> SystemConfig:
    """Base system plus a per-node network (remote data) cache."""
    return SystemConfig(
        num_nodes=num_nodes, netcache_size=netcache_size, **overrides
    )


def switch_cache_config(
    num_nodes: int = 16,
    size: int = 2 * KB,
    assoc: int = 2,
    banks: int = 1,
    width_bits: int = 64,
    stages: Optional[Set[int]] = None,
    **overrides,
) -> SystemConfig:
    """Base system plus CAESAR switch caches."""
    return SystemConfig(
        num_nodes=num_nodes,
        switch_cache_size=size,
        switch_cache_assoc=assoc,
        switch_cache_banks=banks,
        switch_cache_width_bits=width_bits,
        switch_cache_stages=stages,
        **overrides,
    )


def caesar_plus_config(
    num_nodes: int = 16, size: int = 2 * KB, **overrides
) -> SystemConfig:
    """CAESAR+ — the 2-way interleaved (banked) switch cache."""
    return switch_cache_config(num_nodes=num_nodes, size=size, banks=2, **overrides)
