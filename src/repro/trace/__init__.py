"""Observability layer: structured tracing, metrics, Perfetto export.

This package is the measurement substrate for every performance-oriented
experiment on the simulator (ROADMAP: "fast as the hardware allows").
It has three parts:

* :class:`~repro.trace.tracer.Tracer` — a structured event recorder.
  Instrumentation hooks are threaded through the simulation kernel
  (engine, fabric, switches, home/L2 controllers, processors); each hook
  is guarded by a single ``sim.tracer is not None`` check, so a run with
  tracing disabled pays one attribute load per hook site and allocates
  nothing (the *no-op fast path*).
* :class:`~repro.trace.metrics.MetricsRegistry` — counters, gauges,
  log-bucketed latency histograms, and sampled time series.  Histogram
  sums are exact, so per-class means reconcile bit-for-bit with
  :meth:`repro.stats.counters.MachineStats.mean_latency` — the two
  layers validate each other.
* :mod:`~repro.trace.export` — Chrome trace-event / Perfetto JSON
  export (one track per node/switch/home, flow events linking the
  request and reply legs of a transaction) plus a compact JSONL log.

See DESIGN.md §8 for the event taxonomy and the overhead budget.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry, TimeSeries
from .tracer import Tracer
from .export import chrome_trace, write_chrome_trace, write_jsonl

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TimeSeries",
    "Tracer",
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
