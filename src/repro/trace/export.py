"""Chrome trace-event / Perfetto JSON export.

Converts a :class:`~repro.trace.tracer.Tracer`'s event list into the
Chrome trace-event JSON object format, loadable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``:

* every tracer *track* becomes one named thread under a single process,
  with a stable sort order (procs, then NIs, then switches by stage,
  then homes, then sync);
* simulated cycles are presented as microseconds, so the viewer's time
  axis reads directly in cycles;
* async spans (``b``/``e``) carry their category and id through, which
  keeps overlapping message/transaction spans on one track renderable;
* flow events (``s``/``f``) link the request leg of a transaction to its
  reply leg across tracks.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Tuple

from .tracer import Tracer

#: single process id used for all tracks
_PID = 1

#: track-name prefix -> sort group (lower groups render first)
_GROUPS = ("proc", "ni", "switch", "home", "sync")


def _track_sort_key(track: str) -> Tuple[int, List[object]]:
    group = len(_GROUPS)
    for rank, prefix in enumerate(_GROUPS):
        if track.startswith(prefix):
            group = rank
            break
    # natural sort: "proc10" after "proc2"
    parts: List[object] = [
        int(chunk) if chunk.isdigit() else chunk
        for chunk in re.split(r"(\d+)", track)
    ]
    return group, parts


def chrome_trace(tracer: Tracer, label: str = "repro-sim") -> Dict[str, Any]:
    """The tracer's events as a Chrome trace-event JSON object."""
    tracks = sorted(tracer.tracks(), key=_track_sort_key)
    tids = {track: tid for tid, track in enumerate(tracks, start=1)}
    trace_events: List[Dict[str, Any]] = [
        {
            "ph": "M", "pid": _PID, "tid": 0, "name": "process_name",
            "args": {"name": label},
        }
    ]
    for track, tid in tids.items():
        trace_events.append(
            {
                "ph": "M", "pid": _PID, "tid": tid, "name": "thread_name",
                "args": {"name": track},
            }
        )
        trace_events.append(
            {
                "ph": "M", "pid": _PID, "tid": tid,
                "name": "thread_sort_index", "args": {"sort_index": tid},
            }
        )
    for event in tracer.events:
        phase = event["ph"]
        out: Dict[str, Any] = {
            "ph": phase,
            "name": event["name"],
            "ts": event["ts"],
            "pid": _PID,
            "tid": tids[event["track"]],
        }
        if phase == "X":
            out["dur"] = event["dur"]
        elif phase == "i":
            out["s"] = "t"  # thread-scoped instant
        elif phase == "C":
            out["args"] = {"value": event["value"]}
        if "cat" in event:
            out["cat"] = event["cat"]
        if "id" in event:
            out["id"] = event["id"]
        if phase == "f":
            out["bp"] = "e"  # bind the arrow to the enclosing slice's end
        if "args" in event and phase != "C":
            out["args"] = event["args"]
        trace_events.append(out)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "label": label,
            "time_unit": "1 ts = 1 simulated cycle",
            "events": len(tracer.events),
            "dropped": tracer.dropped,
        },
    }


def write_chrome_trace(
    tracer: Tracer, path: str, label: str = "repro-sim"
) -> int:
    """Write the Perfetto-loadable JSON file; returns the event count."""
    document = chrome_trace(tracer, label=label)
    with open(path, "w") as handle:
        json.dump(document, handle, separators=(",", ":"))
    return len(tracer.events)


def write_jsonl(tracer: Tracer, path: str) -> int:
    """Write the compact JSONL event log; returns the event count."""
    return tracer.write_jsonl(path)
