"""Counters, gauges, log-bucketed histograms, and sampled time series.

A :class:`MetricsRegistry` is the quantitative half of the observability
layer: where the tracer answers "what happened to this transaction", the
registry answers "how are latencies distributed" and "how did occupancy
evolve".  It serializes into :class:`~repro.experiments.common.RunRecord`
payloads next to ``MachineStats``, so cached experiment runs carry their
distributions with them.

Histograms are log-bucketed (bucket *k* holds values whose integer part
has bit length *k*, i.e. ``[2**(k-1), 2**k - 1]``; bucket 0 holds zero),
but ``total``/``count`` are exact sums — the mean is **not** an estimate,
which is what lets the self-validation test require bit-equality with
``MachineStats.mean_latency``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Log-bucketed distribution with exact sum/count/min/max."""

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = int(abs(value)).bit_length()
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @staticmethod
    def bucket_bounds(bucket: int) -> Tuple[int, int]:
        """Inclusive value range covered by ``bucket``."""
        if bucket == 0:
            return 0, 0
        return 2 ** (bucket - 1), 2 ** bucket - 1


class TimeSeries:
    """(cycle, value) samples, appended by the machine's periodic sampler."""

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str) -> None:
        self.times: List[int] = []
        self.values: List[float] = []
        self.name = name

    def sample(self, ts: int, value: float) -> None:
        self.times.append(ts)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)


class MetricsRegistry:
    """Named metric instruments for one simulation run.

    ``sample_interval`` (cycles) enables the machine's periodic sampler
    (switch-cache occupancy/hit-rate, per-home memory-queue depth); it is
    ``None`` by default so that metrics collection inside the experiment
    harness adds no simulator events and cannot perturb event ordering.
    """

    __slots__ = ("counters", "gauges", "histograms", "series_map",
                 "sample_interval")

    def __init__(self, sample_interval: Optional[int] = None) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.series_map: Dict[str, TimeSeries] = {}
        self.sample_interval = sample_interval

    # ------------------------------------------------------------------
    # get-or-create accessors
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(name)
        return instrument

    def series(self, name: str) -> TimeSeries:
        instrument = self.series_map.get(name)
        if instrument is None:
            instrument = self.series_map[name] = TimeSeries(name)
        return instrument

    # ------------------------------------------------------------------
    # serialization (RunRecord payloads / --metrics output)
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """Complete JSON-serializable state, deterministically ordered."""
        return {
            "counters": {
                name: self.counters[name].value
                for name in sorted(self.counters)
            },
            "gauges": {
                name: self.gauges[name].value for name in sorted(self.gauges)
            },
            "histograms": {
                name: {
                    "count": hist.count,
                    "total": hist.total,
                    "min": hist.min,
                    "max": hist.max,
                    "buckets": [[k, v]
                                for k, v in sorted(hist.buckets.items())],
                }
                for name, hist in sorted(self.histograms.items())
            },
            "series": {
                name: {"times": series.times, "values": series.values}
                for name, series in sorted(self.series_map.items())
            },
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "MetricsRegistry":
        registry = cls()
        for name, value in payload.get("counters", {}).items():
            registry.counter(name).value = value
        for name, value in payload.get("gauges", {}).items():
            registry.gauge(name).value = value
        for name, data in payload.get("histograms", {}).items():
            hist = registry.histogram(name)
            hist.count = data["count"]
            hist.total = data["total"]
            hist.min = data["min"]
            hist.max = data["max"]
            hist.buckets = {int(k): v for k, v in data["buckets"]}
        for name, data in payload.get("series", {}).items():
            series = registry.series(name)
            series.times = list(data["times"])
            series.values = list(data["values"])
        return registry
