"""Structured span/instant event recorder for one simulation run.

The tracer records *events* — small dicts in a private schema that maps
1:1 onto the Chrome trace-event format (see :mod:`repro.trace.export`).
Timestamps are simulated **cycles** (the exporter presents one cycle as
one microsecond so Perfetto's time axis reads directly in cycles).

Event taxonomy (the ``name``/``cat`` values the kernel hooks emit):

===========  =========================  =====================================
track        event                      meaning
===========  =========================  =====================================
``proc<p>``  ``read/write/upgrade``     coherence transaction span (async,
                                        ``cat="txn"``, id = transaction id)
``proc<p>``  ``barrier/lock/unlock``    synchronization stall span
``proc<p>``  ``wb_drain``/``wb_full``   write-buffer drain span / full stall
``ni<n>``    ``<msg kind>``             message leg span (async, ``cat="msg"``)
``ni<n>``    flow ``s``/``f``           request→reply flow link (id = txn id)
``switch..`` ``hop``                    worm header arrived at a switch
``switch..`` ``sc_probe/sc_bypass``     switch-cache probe (hit/miss) / bypass
``switch..`` ``sc_hit``                 intercepted READ served by the switch
``switch..`` ``sc_deposit/sc_evict``    block captured / victim displaced
``switch..`` ``sc_purge``               snoop invalidation purged a block
``home<n>``  ``read/write/upgrade``     home-directory transaction start
``home<n>``  ``dir_update``             switch-served read registered
``home<n>``  ``corrective_inv``         stale switch service chased
``home<n>``  ``writeback``              owner data returned to memory
``home<n>``  ``mem_backlog``            memory-queue depth (counter track)
``sync``     ``barrier_release`` etc.   global synchronization episodes
===========  =========================  =====================================

A bounded ``limit`` caps memory for long runs; past it events are counted
in ``dropped`` instead of recorded.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

#: one recorded event (private schema; see module docstring)
Event = Dict[str, Any]


class Tracer:
    """Collects structured events; one instance per traced run."""

    __slots__ = ("events", "limit", "dropped")

    def __init__(self, limit: Optional[int] = 2_000_000) -> None:
        self.events: List[Event] = []
        self.limit = limit
        self.dropped = 0

    # ------------------------------------------------------------------
    # core emitters
    # ------------------------------------------------------------------
    def _emit(self, event: Event) -> None:
        if self.limit is not None and len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(event)

    def instant(
        self, track: str, name: str, ts: int,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """A point event on ``track`` at cycle ``ts``."""
        event: Event = {"ph": "i", "track": track, "name": name, "ts": ts}
        if args:
            event["args"] = args
        self._emit(event)

    def complete(
        self, track: str, name: str, ts: int, dur: int,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """A closed span ``[ts, ts+dur]`` on ``track``."""
        event: Event = {
            "ph": "X", "track": track, "name": name, "ts": ts, "dur": dur,
        }
        if args:
            event["args"] = args
        self._emit(event)

    def counter(self, track: str, name: str, ts: int, value: float) -> None:
        """A sampled counter value (rendered as a counter track)."""
        self._emit(
            {"ph": "C", "track": track, "name": name, "ts": ts,
             "value": value}
        )

    def async_span(
        self, track: str, name: str, cat: str, span_id: int,
        start: int, end: int, args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """An overlap-safe span (async begin/end pair keyed by id)."""
        begin: Event = {
            "ph": "b", "track": track, "name": name, "cat": cat,
            "id": span_id, "ts": start,
        }
        if args:
            begin["args"] = args
        self._emit(begin)
        self._emit(
            {"ph": "e", "track": track, "name": name, "cat": cat,
             "id": span_id, "ts": end}
        )

    def flow_start(self, track: str, name: str, flow_id: int, ts: int) -> None:
        """Open a flow arrow (e.g. a request leg) with id ``flow_id``."""
        self._emit(
            {"ph": "s", "track": track, "name": name, "cat": "flow",
             "id": flow_id, "ts": ts}
        )

    def flow_end(self, track: str, name: str, flow_id: int, ts: int) -> None:
        """Close a flow arrow (e.g. the matching reply leg)."""
        self._emit(
            {"ph": "f", "track": track, "name": name, "cat": "flow",
             "id": flow_id, "ts": ts}
        )

    # ------------------------------------------------------------------
    # introspection / output
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def tracks(self) -> List[str]:
        """All track names, in first-appearance order."""
        seen: Dict[str, None] = {}
        for event in self.events:
            seen.setdefault(event["track"], None)
        return list(seen)

    def events_named(self, name: str) -> List[Event]:
        return [e for e in self.events if e["name"] == name]

    def write_jsonl(self, path: str) -> int:
        """Write the compact JSONL log (one event per line); returns count."""
        with open(path, "w") as handle:
            for event in self.events:
                handle.write(json.dumps(event, separators=(",", ":")))
                handle.write("\n")
        return len(self.events)
