"""Correctness tooling for the simulator (``repro.verify``).

Three coordinated analyzers guard the coherence protocol and the event
kernel:

* :mod:`repro.verify.modelcheck` — an explicit-state model checker that
  BFS-enumerates the reachable protocol state space for a small
  configuration (1 block x N nodes, with or without a switch cache on
  the reply path) and checks SWMR, directory/cache agreement,
  clean-SHARED switch copies, and absence of stuck states.
  Run as ``python -m repro.verify.modelcheck``.

* :mod:`repro.verify.sanitize` — "SCSan", an opt-in runtime invariant
  layer hooked into :class:`~repro.system.machine.Machine`
  (``--sanitize`` on the CLIs, ``REPRO_SANITIZE=1`` in the
  environment) that re-checks the same invariants during live
  simulation plus flit conservation, event-time monotonicity, and
  write-buffer drain-before-release ordering.

* :mod:`repro.verify.lint_determinism` — an AST lint forbidding
  wall-clock and unseeded randomness in kernel modules, unsorted
  ``set`` iteration in simulation-order-sensitive code, and missing
  ``__slots__`` on hot-path classes.
  Run as ``python -m repro.verify.lint``.
"""

from .modelcheck import CheckResult, ModelConfig, ProtocolModel, check
from .sanitize import SanitizedFabric, SanitizedSimulator, Sanitizer

__all__ = [
    "CheckResult",
    "ModelConfig",
    "ProtocolModel",
    "SanitizedFabric",
    "SanitizedSimulator",
    "Sanitizer",
    "check",
]
