"""Correctness tooling for the simulator (``repro.verify``).

Run everything at once with ``python -m repro.verify`` (static rules +
model-check smoke, aggregated exit code).  The individual analyzers:

* :mod:`repro.verify.flowcheck` — the static analysis gate: every rule
  of the unified framework (:mod:`repro.verify.framework`) over the
  source tree.  Handler exhaustiveness (F-*) and lane-dependency
  deadlock freedom (C-*) over the extracted MsgKind send/receive graph,
  hot-path purity (P-*) for the PR 4/6 inlined regions, and the
  determinism lint (W/R/S/H/L/B) adapted from
  :mod:`repro.verify.lint_determinism`.  Findings ratchet against the
  committed ``flowcheck_baseline.json``; single findings are silenced
  in place with ``# repro: allow[RULE-ID]``.
  Run as ``python -m repro.verify.flowcheck``.

* :mod:`repro.verify.modelcheck` — an explicit-state model checker that
  BFS-enumerates the reachable protocol state space for a small
  configuration (1 block x N nodes, with or without a switch cache on
  the reply path) and checks SWMR, directory/cache agreement,
  clean-SHARED switch copies, and absence of stuck states.
  Run as ``python -m repro.verify.modelcheck``.

* :mod:`repro.verify.sanitize` — "SCSan", an opt-in runtime invariant
  layer hooked into :class:`~repro.system.machine.Machine`
  (``--sanitize`` on the CLIs, ``REPRO_SANITIZE=1`` in the
  environment) that re-checks the same invariants during live
  simulation plus flit conservation, event-time monotonicity, and
  write-buffer drain-before-release ordering.

* :mod:`repro.verify.lint_determinism` — the legacy single-file
  determinism lint.  Its rules now run inside flowcheck; the old
  ``python -m repro.verify.lint`` entry point is deprecated.
"""

from .framework import (
    AnalysisContext,
    Finding,
    Report,
    Rule,
    all_rules,
    load_context,
    run_rules,
)
from .modelcheck import CheckResult, ModelConfig, ProtocolModel, check
from .sanitize import SanitizedFabric, SanitizedSimulator, Sanitizer

__all__ = [
    "AnalysisContext",
    "CheckResult",
    "Finding",
    "ModelConfig",
    "ProtocolModel",
    "Report",
    "Rule",
    "SanitizedFabric",
    "SanitizedSimulator",
    "Sanitizer",
    "all_rules",
    "check",
    "load_context",
    "run_rules",
]
