"""Umbrella verification entry point: ``python -m repro.verify``.

Aggregates every static and dynamic check the verify suite offers:

1. **Static analysis** — all framework rules (determinism lint W/R/S/H/L/B,
   protocol-flow F-*, lane C-*, hot-path P-*) against the committed
   flowcheck baseline, exactly as ``python -m repro.verify.flowcheck``.
2. **Model-check smoke** — a small exhaustive state-space sweep of the
   MSI and MESI protocols with the switch cache on and off (2 nodes,
   1 op per node), catching dynamic protocol regressions the static
   passes cannot see.

The exit code is the logical OR of the stages: 0 only when the static
gate passes (no findings beyond the baseline) *and* every smoke
configuration verifies clean.  ``--skip-modelcheck`` runs only the
static stage (useful on machines where the sweep is too slow).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from .flowcheck import BASELINE_REL, DEFAULT_ROOT
from .framework import load_baseline, run_rules

#: (protocol, switch) smoke matrix — small enough to finish in seconds
SMOKE_CONFIGS = (
    ("msi", False),
    ("msi", True),
    ("mesi", False),
    ("mesi", True),
)


def _run_modelcheck_smoke() -> List[Dict[str, Any]]:
    from .modelcheck import check

    results: List[Dict[str, Any]] = []
    for protocol, switch in SMOKE_CONFIGS:
        result = check(
            protocol=protocol, nodes=2, ops_per_node=1, switch=switch,
        )
        results.append({
            "protocol": protocol,
            "switch": switch,
            "ok": result.ok,
            "summary": result.summary(),
        })
    return results


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="run every verification stage (static + smoke)",
    )
    parser.add_argument(
        "root", nargs="?", type=Path, default=DEFAULT_ROOT,
        help="source tree for the static stage",
    )
    parser.add_argument(
        "--json", type=Path, metavar="PATH", default=None,
        help="write an aggregated machine-readable report to PATH",
    )
    parser.add_argument(
        "--skip-modelcheck", action="store_true",
        help="run only the static analysis stage",
    )
    args = parser.parse_args(argv)

    root: Path = args.root.resolve()
    baseline = load_baseline(root / BASELINE_REL)
    report = run_rules(root, baseline=baseline)
    print(report.render())
    exit_code = report.exit_code

    smoke: List[Dict[str, Any]] = []
    if not args.skip_modelcheck:
        smoke = _run_modelcheck_smoke()
        for entry in smoke:
            status = "ok" if entry["ok"] else "FAIL"
            switch = "switch" if entry["switch"] else "no-switch"
            print(
                f"modelcheck[{entry['protocol']}/{switch}]: "
                f"{entry['summary']} [{status}]"
            )
            if not entry["ok"]:
                exit_code = 1

    status = "ok" if exit_code == 0 else "FAIL"
    stages = "static" if args.skip_modelcheck else "static+modelcheck"
    print(f"verify: {stages} [{status}]")

    if args.json is not None:
        payload = {
            "static": report.to_dict(),
            "modelcheck": smoke,
            "exit_code": exit_code,
        }
        args.json.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
