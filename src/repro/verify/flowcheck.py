"""flowcheck: static protocol-flow analyzer for the simulator kernel.

Runs every registered rule of the unified analysis framework
(:mod:`repro.verify.framework`) over the ``repro`` source tree:

* ``W R S H L B`` — determinism lint (wall clock, randomness, set
  iteration, ``__slots__``, hot-path logging, bare except),
* ``F-UNHANDLED F-ORPHAN F-DEAD F-NOELSE`` — handler exhaustiveness over
  the extracted MsgKind send/receive graph,
* ``C-NOLANE C-SAMELANE C-BACKWARD C-CYCLE`` — lane-dependency deadlock
  freedom (request < forward < reply, whitelist for intentional edges),
* ``P-ALLOC P-CLOSURE P-ATTR P-NOSLOTS`` — hot-path purity for the
  PR 4/6 inlined regions.

Usage::

    python -m repro.verify.flowcheck                  # gate (ratchet)
    python -m repro.verify.flowcheck --json out.json  # CI artifact
    python -m repro.verify.flowcheck --list-rules
    python -m repro.verify.flowcheck --update-baseline

Exit code 0 when no findings beyond the committed baseline
(``verify/flowcheck_baseline.json``), 1 when new findings exist, 2 on
usage errors.  Single findings are silenced in place with a trailing
``# repro: allow[RULE-ID]`` comment; intentional lane edges live in
:mod:`repro.verify.rules.lane_whitelist` with one-line justifications.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .framework import (
    Finding,
    all_rules,
    load_baseline,
    run_rules,
    save_baseline,
)

#: default scan root: the ``repro`` package this module lives in
DEFAULT_ROOT = Path(__file__).resolve().parent.parent

#: committed ratchet baseline (relative to the scan root)
BASELINE_REL = "verify/flowcheck_baseline.json"


def _list_rules() -> str:
    lines = ["registered rules (report order):"]
    for rule in all_rules():
        lines.append(f"  {rule.id:<12} {rule.title}")
    return "\n".join(lines)


def _list_whitelist() -> str:
    from .rules.lane_whitelist import WHITELIST

    lines = ["whitelisted lane edges (src -> dst: justification):"]
    for (src, dst), why in WHITELIST.items():
        lines.append(f"  {src} -> {dst}: {why}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify.flowcheck",
        description="static protocol-flow / lane / hot-path analyzer",
    )
    parser.add_argument(
        "root", nargs="?", type=Path, default=DEFAULT_ROOT,
        help="source tree to scan (default: the installed repro package)",
    )
    parser.add_argument(
        "--json", type=Path, metavar="PATH", default=None,
        help="also write a machine-readable report to PATH",
    )
    parser.add_argument(
        "--baseline", type=Path, metavar="PATH", default=None,
        help=f"ratchet baseline (default: <root>/{BASELINE_REL})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline: every finding is new",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--list-whitelist", action="store_true",
        help="print the whitelisted lane edges and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0
    if args.list_whitelist:
        print(_list_whitelist())
        return 0

    root: Path = args.root.resolve()
    if not root.is_dir():
        parser.error(f"scan root {root} is not a directory")
    baseline_path: Path = (
        args.baseline if args.baseline is not None
        else root / BASELINE_REL
    )
    baseline: List[Finding] = (
        [] if args.no_baseline else load_baseline(baseline_path)
    )

    report = run_rules(root, baseline=baseline)

    if args.update_baseline:
        save_baseline(baseline_path, report.findings)
        print(
            f"flowcheck: baseline {baseline_path} updated "
            f"({len(report.findings)} finding(s))"
        )
        return 0

    if args.json is not None:
        args.json.write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n"
        )
    print(report.render())
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
