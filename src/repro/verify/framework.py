"""Unified rule framework for the static analyzers (``repro.verify``).

Every static check in the verify suite — the determinism lint rules from
PR 2 and the protocol-flow/lane/hot-path passes added with flowcheck —
is a :class:`Rule` registered here.  The framework owns everything the
individual rules should not have to reimplement:

* **Parsing** — one :class:`AnalysisContext` per run holds every module
  under the scanned root, parsed once and shared by all rules (plus a
  free-form ``cache`` so expensive artifacts like the message-flow graph
  are built once and reused across rules).
* **Suppressions** — a trailing or preceding ``# repro: allow[RULE-ID]``
  comment (comma-separated ids allowed) silences a finding at that line.
  Suppressions are deliberate, reviewable exemptions; the count of
  applied suppressions is reported so they cannot rot silently.
* **Baselines** — a committed JSON findings file makes the exit-code
  policy *ratchet-shaped*: pre-existing findings are tolerated, **new**
  findings fail.  Baseline identity is ``(rule, path, message)`` — line
  numbers drift with unrelated edits and are excluded on purpose.
* **Output** — stable human-readable lines plus a machine-readable JSON
  report (uploaded as a CI artifact).

Exit-code policy (shared by ``python -m repro.verify.flowcheck`` and the
``python -m repro.verify`` umbrella): 0 when there are no findings
beyond the baseline, 1 when new findings exist, 2 on usage errors.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

#: file format version of JSON reports and baseline files
REPORT_VERSION = 1


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str  # registered rule id, e.g. "F-UNHANDLED" or "W"
    path: str  # repo-relative module path (posix)
    line: int  # 1-based line number (0 = whole-module finding)
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def key(self) -> Tuple[str, str, str]:
        """Baseline identity: line numbers drift, so they are excluded."""
        return (self.rule, self.path, self.message)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "Finding":
        return cls(
            rule=str(raw["rule"]),
            path=str(raw["path"]),
            line=int(raw.get("line", 0)),
            message=str(raw["message"]),
        )


#: ``# repro: allow[F-UNHANDLED]`` or ``# repro: allow[W, P-ALLOC]``
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_\-, ]+)\]")


def parse_allows(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> rule ids allowed by an inline comment there."""
    allows: Dict[int, FrozenSet[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _ALLOW_RE.search(text)
        if match is not None:
            ids = frozenset(
                part.strip() for part in match.group(1).split(",")
                if part.strip()
            )
            if ids:
                allows[lineno] = ids
    return allows


class Module:
    """One parsed source module of the scanned tree."""

    __slots__ = ("rel_path", "path", "source", "tree", "allows")

    def __init__(self, rel_path: str, path: Path, source: str,
                 tree: ast.Module) -> None:
        self.rel_path = rel_path
        self.path = path
        self.source = source
        self.tree = tree
        self.allows = parse_allows(source)

    def allowed(self, rule_id: str, line: int) -> bool:
        """True when an allow comment on ``line`` (or the line above)
        names ``rule_id``."""
        for candidate in (line, line - 1):
            ids = self.allows.get(candidate)
            if ids is not None and rule_id in ids:
                return True
        return False


class AnalysisContext:
    """Parsed view of one source tree, shared by every rule in a run."""

    __slots__ = ("root", "modules", "by_path", "cache")

    def __init__(self, root: Path, modules: List[Module]) -> None:
        self.root = root
        self.modules = modules
        self.by_path: Dict[str, Module] = {m.rel_path: m for m in modules}
        #: scratch space for cross-rule artifacts (e.g. the flow graph)
        self.cache: Dict[str, Any] = {}

    def modules_under(self, *prefixes: str) -> List[Module]:
        """Modules whose repo-relative path starts with any prefix."""
        return [
            m for m in self.modules
            if any(m.rel_path.startswith(p) for p in prefixes)
        ]

    def module(self, rel_path: str) -> Optional[Module]:
        return self.by_path.get(rel_path)


def load_context(root: Path) -> AnalysisContext:
    """Parse every ``*.py`` under ``root`` (sorted, deterministic)."""
    modules: List[Module] = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        source = path.read_text()
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:  # pragma: no cover - scanned code parses
            raise SystemExit(f"flowcheck: cannot parse {path}: {exc}")
        modules.append(Module(rel, path, source, tree))
    return AnalysisContext(root, modules)


class Rule:
    """One registered static check.

    Subclasses set ``id`` (stable, referenced by suppressions and the
    baseline) and ``title`` and implement :meth:`run`.  ``run`` returns
    raw findings; the framework applies suppressions afterwards.
    """

    id: str = ""
    title: str = ""

    def run(self, ctx: AnalysisContext) -> List[Finding]:
        raise NotImplementedError


#: registration order is execution and report order (deterministic)
_REGISTRY: Dict[str, Rule] = {}


def register(rule: Rule) -> Rule:
    """Add a rule to the global registry (id must be unique)."""
    if not rule.id:
        raise ValueError(f"rule {rule!r} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return rule


def all_rules() -> List[Rule]:
    """Every registered rule, in registration order."""
    from . import rules as _rules  # noqa: F401  (imports register rules)

    return list(_REGISTRY.values())


def get_rule(rule_id: str) -> Rule:
    from . import rules as _rules  # noqa: F401

    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule id {rule_id!r} "
            f"(known: {', '.join(sorted(_REGISTRY))})"
        ) from None


@dataclass
class Report:
    """Outcome of one analysis run."""

    root: str
    rules: List[str]
    findings: List[Finding]
    suppressed: int
    baseline_count: int = 0
    new: List[Finding] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if self.new else 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": REPORT_VERSION,
            "root": self.root,
            "rules": self.rules,
            "findings": [f.to_dict() for f in self.findings],
            "new": [f.to_dict() for f in self.new],
            "suppressed": self.suppressed,
            "baseline": self.baseline_count,
        }

    def render(self) -> str:
        """Human-readable report (stable ordering)."""
        lines = [str(f) for f in self.findings]
        known = len(self.findings) - len(self.new)
        status = "FAIL" if self.new else "ok"
        lines.append(
            f"flowcheck: {len(self.rules)} rule(s), "
            f"{len(self.findings)} finding(s) "
            f"({len(self.new)} new, {known} baselined, "
            f"{self.suppressed} suppressed) [{status}]"
        )
        return "\n".join(lines)


def run_rules(
    root: Path,
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Sequence[Finding]] = None,
    ctx: Optional[AnalysisContext] = None,
) -> Report:
    """Run ``rules`` (default: all registered) over the tree at ``root``."""
    if rules is None:
        rules = all_rules()
    if ctx is None:
        ctx = load_context(root)
    findings: List[Finding] = []
    suppressed = 0
    for rule in rules:
        for finding in rule.run(ctx):
            module = ctx.module(finding.path)
            if module is not None and module.allowed(
                finding.rule, finding.line
            ):
                suppressed += 1
            else:
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    baseline_keys: Set[Tuple[str, str, str]] = (
        {f.key() for f in baseline} if baseline else set()
    )
    new = [f for f in findings if f.key() not in baseline_keys]
    return Report(
        root=str(root),
        rules=[r.id for r in rules],
        findings=findings,
        suppressed=suppressed,
        baseline_count=len(baseline_keys),
        new=new,
    )


# ----------------------------------------------------------------------
# baseline files
# ----------------------------------------------------------------------
def load_baseline(path: Path) -> List[Finding]:
    """Read a committed findings baseline (empty list if absent)."""
    if not path.exists():
        return []
    raw = json.loads(path.read_text())
    return [Finding.from_dict(item) for item in raw.get("findings", [])]


def save_baseline(path: Path, findings: Sequence[Finding]) -> None:
    payload = {
        "version": REPORT_VERSION,
        "findings": [f.to_dict() for f in findings],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


# ----------------------------------------------------------------------
# shared AST helpers (used by several rule modules)
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> Optional[str]:
    """``'a.b.c'`` for a pure attribute/name chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
