"""``python -m repro.verify.lint``: run the determinism lint."""

from .lint_determinism import main

if __name__ == "__main__":
    raise SystemExit(main())
