"""Deprecated: ``python -m repro.verify.lint``.

The determinism lint's rules (W/R/S/H/L/B) now run inside the unified
analysis framework — use ``python -m repro.verify.flowcheck`` for the
full static gate or ``python -m repro.verify`` for everything.  This
shim keeps the old entry point working for one release.
"""

from __future__ import annotations

import sys
import warnings

from .lint_determinism import main

if __name__ == "__main__":
    warnings.warn(
        "python -m repro.verify.lint is deprecated; use "
        "python -m repro.verify.flowcheck (static gate) or "
        "python -m repro.verify (everything)",
        DeprecationWarning,
        stacklevel=1,
    )
    print(
        "note: repro.verify.lint is deprecated; "
        "use python -m repro.verify.flowcheck",
        file=sys.stderr,
    )
    raise SystemExit(main())
