"""Determinism lint: AST rules that keep simulations reproducible.

A run must be a pure function of the configuration and the seeds (see
:mod:`repro.sim.engine`).  Three classes of bug silently break that:

* **W (wall clock)** — ``time.time()``/``perf_counter()``/``datetime.now()``
  inside a kernel module leaks host timing into simulated behavior.
* **R (unseeded randomness)** — module-level ``random.*`` calls draw from
  the interpreter's global, unseeded generator.  Components must take a
  seeded ``random.Random`` instance instead.
* **S (set iteration)** — iterating a bare ``set`` (e.g. a directory's
  sharer set) makes message fan-out order depend on hash order, which
  varies across Python builds.  Wrap the iterable in ``sorted()``.

Four structural rules ride along:

* **H (hot-path slots)** — classes in the engine/fabric hot paths must
  declare ``__slots__``; attribute-dict lookups there dominate the
  simulator's profile (see PR 1).
* **L (lambda scheduling)** — scheduling a ``lambda`` through
  ``sim.schedule``/``at``/``call``/``call_at`` allocates a closure cell
  per event and defeats the engine's event free list (recycled events
  store ``fn`` + ``args`` directly; see DESIGN.md §9).  Kernel code must
  pass the bound method and its arguments instead:
  ``sim.call(delay, self._finish, txn)``.
* **B (bitmask sharers)** — coherence modules must not declare public
  ``Set``-typed sharer fields: the directory's sharer vector is an int
  bitmask (DESIGN.md §10), and a set-typed field reintroduces both the
  per-entry allocation and the hash-order iteration hazard that rule S
  guards against.  The object reference model keeps its set under a
  private ``_sharers`` name, which this rule deliberately skips.
* **N (salted hashing)** — builtin ``hash()`` of a str/bytes/tuple is
  salted per process (``PYTHONHASHSEED``), so deriving any persistent
  or cross-process identifier from it breaks run reproducibility: two
  processes disagree on every artifact that records the id.
  ``BarrierSequencer`` did exactly this before PR 10.  Kernel code must
  use a content hash (``zlib.crc32``) or an explicit counter instead.

Run as ``python -m repro.verify.lint`` (exit status 1 when findings
exist).  The rules are deliberately narrow — they whitelist nothing via
comments, so code that genuinely needs an exemption belongs outside the
scanned module sets below.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Set

#: packages whose modules form the deterministic simulation kernel
KERNEL_PACKAGES = (
    "apps", "cache", "coherence", "core", "memory", "network", "node",
    "sim", "system", "trace",
)

#: modules where iteration order feeds message timing (rule S)
ORDER_SENSITIVE = (
    "coherence/", "memory/netcache.py", "system/machine.py", "network/",
)

#: modules whose classes must declare __slots__ (rule H)
HOT_MODULES = (
    "sim/engine.py", "sim/resource.py", "network/link.py",
    "network/switch.py", "network/fabric.py", "network/message.py",
    "trace/tracer.py", "trace/metrics.py",
)

#: attribute calls that read the host clock
WALL_CLOCK_CALLS = {
    ("time", "time"), ("time", "monotonic"), ("time", "perf_counter"),
    ("time", "process_time"), ("time", "time_ns"), ("time", "monotonic_ns"),
    ("time", "perf_counter_ns"), ("datetime", "now"), ("datetime", "today"),
    ("datetime", "utcnow"),
}

#: module-level random functions (the unseeded global generator)
GLOBAL_RANDOM_FNS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "random_sample", "seed",
}

#: scheduling methods whose callback argument must not be a lambda (rule L)
SCHEDULING_METHODS = {"schedule", "at", "call", "call_at"}


@dataclass(frozen=True)
class Finding:
    rule: str  # "W" | "R" | "S" | "H" | "L" | "B" | "N"
    path: str  # repo-relative module path
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _dotted(node: ast.AST) -> Optional[str]:
    """'a.b.c' for an attribute/name chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _ModuleLint(ast.NodeVisitor):
    """All per-module rules in one AST walk."""

    def __init__(self, rel_path: str, order_sensitive: bool,
                 hot: bool, coherence: bool = False) -> None:
        self.rel_path = rel_path
        self.order_sensitive = order_sensitive
        self.hot = hot
        self.coherence = coherence
        self.findings: List[Finding] = []
        # names bound to bare sets in the current scope chain (heuristic:
        # module-wide, no shadow tracking — kernel modules are small)
        self._set_names: Set[str] = set()

    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(rule, self.rel_path, getattr(node, "lineno", 0), message)
        )

    # -- rule W + R + L: wall clock, randomness, lambda scheduling ------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is not None:
            parts = dotted.split(".")
            if len(parts) >= 2 and (parts[-2], parts[-1]) in WALL_CLOCK_CALLS:
                self._report(
                    "W", node,
                    f"wall-clock call {dotted}() in a kernel module "
                    f"(simulated time is Simulator.now)",
                )
            if (len(parts) == 2 and parts[0] == "random"
                    and parts[1] in GLOBAL_RANDOM_FNS):
                self._report(
                    "R", node,
                    f"unseeded global randomness {dotted}() — take a "
                    f"seeded random.Random instance instead",
                )
        if isinstance(node.func, ast.Name) and node.func.id == "hash":
            self._report(
                "N", node,
                "builtin hash() is salted per process (PYTHONHASHSEED) — "
                "derive ids from zlib.crc32 or an explicit counter so "
                "artifacts agree across processes",
            )
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in SCHEDULING_METHODS
            and any(isinstance(arg, ast.Lambda) for arg in node.args)
        ):
            self._report(
                "L", node,
                f"lambda scheduled via .{node.func.attr}() — pass the "
                f"function and its arguments closure-free instead "
                f"(sim.call(delay, fn, *args))",
            )
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "time":
                self._report(
                    "W", node,
                    "import time in a kernel module — simulated time "
                    "comes from Simulator.now",
                )
        self.generic_visit(node)

    # -- rule S: bare-set iteration -------------------------------------
    def _is_bare_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id == "set":
                return True
        if isinstance(node, ast.Name) and node.id in self._set_names:
            return True
        return False

    def _track_set_binding(self, target: ast.AST, value: ast.AST) -> None:
        if isinstance(target, ast.Name) and self._is_bare_set_expr(value):
            self._set_names.add(target.id)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._track_set_binding(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._track_set_binding(node.target, node.value)
        self._check_sharer_field(node.target, node.annotation)
        self.generic_visit(node)

    # -- rule B: Set-typed sharer fields in coherence modules ------------
    def _check_sharer_field(self, target: ast.AST,
                            annotation: ast.AST) -> None:
        if not self.coherence:
            return
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        else:
            return
        if "sharers" not in name or name.startswith("_"):
            return  # the obj reference model's private set is exempt
        if isinstance(annotation, ast.Subscript):
            annotation = annotation.value
        ann = (_dotted(annotation) or "").rsplit(".", 1)[-1]
        if ann in ("Set", "set", "FrozenSet", "frozenset", "MutableSet"):
            self._report(
                "B", target,
                f"Set-typed sharer field {name!r} in a coherence module — "
                f"sharer vectors are int bitmasks (sharers_mask); keep "
                f"set-based reference models behind a private _ name",
            )

    def _check_iteration(self, iter_node: ast.AST) -> None:
        if not self.order_sensitive:
            return
        if self._is_bare_set_expr(iter_node):
            self._report(
                "S", iter_node,
                "iteration over a bare set — wrap in sorted() so message "
                "order does not depend on hash order",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    # -- rule H: __slots__ on hot-path classes --------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self.hot and not self._slots_exempt(node):
            has_slots = any(
                isinstance(stmt, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "__slots__"
                    for t in stmt.targets
                )
                for stmt in node.body
            )
            if not has_slots:
                self._report(
                    "H", node,
                    f"hot-path class {node.name} must declare __slots__",
                )
        self.generic_visit(node)

    @staticmethod
    def _slots_exempt(node: ast.ClassDef) -> bool:
        """Enums, exceptions, and dataclasses may use instance dicts."""
        for base in node.bases:
            name = (_dotted(base) or "").rsplit(".", 1)[-1]
            if name.endswith(("Enum", "Error", "Exception", "Flag")):
                return True
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            if (_dotted(target) or "").startswith("dataclass"):
                return True
        return False


def _rel(path: Path, root: Path) -> str:
    return path.relative_to(root).as_posix()


def lint_file(path: Path, root: Path) -> List[Finding]:
    rel = _rel(path, root)
    tree = ast.parse(path.read_text(), filename=str(path))
    visitor = _ModuleLint(
        rel,
        order_sensitive=any(rel.startswith(p) for p in ORDER_SENSITIVE),
        hot=rel in HOT_MODULES,
        coherence=rel.startswith("coherence/"),
    )
    visitor.visit(tree)
    return sorted(visitor.findings, key=lambda f: (f.path, f.line, f.rule))


def _kernel_files(root: Path) -> Iterator[Path]:
    for package in KERNEL_PACKAGES:
        yield from sorted((root / package).rglob("*.py"))


def lint_tree(root: Optional[Path] = None) -> List[Finding]:
    """Lint the kernel packages under ``root`` (default: this install)."""
    if root is None:
        root = Path(__file__).resolve().parent.parent
    findings: List[Finding] = []
    for path in _kernel_files(root):
        findings.extend(lint_file(path, root))
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.verify.lint",
        description="Determinism lint over the simulation kernel.",
    )
    parser.add_argument(
        "root", nargs="?", default=None,
        help="package root to scan (default: the installed repro package)",
    )
    args = parser.parse_args(argv)
    root = Path(args.root).resolve() if args.root else None
    findings = lint_tree(root)
    for finding in findings:
        print(finding)
    scanned = sum(1 for _ in _kernel_files(
        root if root is not None
        else Path(__file__).resolve().parent.parent
    ))
    status = "FAIL" if findings else "ok"
    print(f"determinism lint: {scanned} modules, "
          f"{len(findings)} finding(s) [{status}]")
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via repro.verify.lint
    raise SystemExit(main())
