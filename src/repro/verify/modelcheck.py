"""Explicit-state model checker for the directory protocol.

The MSI/MESI transition relation implemented operationally across
:mod:`repro.coherence.directory`, :mod:`repro.coherence.home`, and
:mod:`repro.coherence.l2ctrl` is restated here as an explicit FSM over a
deliberately tiny abstraction, and the reachable state space is
enumerated by BFS.

**Abstraction.**  One memory block, ``nodes`` caching nodes (one
processor stack each), one home endpoint, and one switch endpoint that
sits on every node<->home path (the paper's BMIN collapsed to a single
stage).  Block payloads are write counters exactly as in the simulator:
every completed store is ``data + 1``, so a copy's integer version
identifies which write it observed.  Message channels are per-origin
FIFO lanes — ``n2s[i]`` (node i to switch), ``s2h[i]`` (switch to home),
``h2s[i]`` (home to switch, traffic addressed to node i), ``s2n[i]``
(switch to node i) — which preserves the real fabric's guarantee that
two messages on the same route stay ordered (a corrective invalidation
chases the stale reply it corrects) while letting different nodes'
traffic interleave arbitrarily.

**State encoding** (a nested tuple, hashable):

``(caches, directory, home, procs, switch, channels)``

* ``caches[i] = (state, version)`` with state in ``I S E M``;
* ``directory = (state, sharers, owner, version)`` with state in
  ``U S M`` — the memory image version is stale while MODIFIED, as in
  :class:`~repro.coherence.directory.DirEntry`;
* ``home = (active_txn | None, pending)`` — the per-block FIFO of
  :class:`~repro.coherence.home.HomeController` (transient states are
  realized by queuing);
* ``procs[i] = (op_budget, mshr | None)`` with
  ``mshr = (kind, pending_inval)`` — the DASH-style late-invalidation
  flag that turns an in-flight reply into use-once data;
* ``switch = version | None`` — the switch cache holds at most the one
  block, structurally clean-SHARED (deposits come only from ``DATA_S``);
* ``channels`` — the four lane groups above.

**Nondeterminism.**  Every enabled action is explored: which lane
delivers next, whether a ``READ`` passing a full switch cache is
intercepted or bypassed (the CAESAR tag-backlog policy), whether a
``DATA_S`` passing the switch is deposited or skipped (data-backlog
policy), cache and switch evictions, and the memory-completion
interleaving at the home (acks may arrive before or after the memory
read finishes, as in ``_write_maybe_finish``).

**Invariants.**  Checked on every reachable state:

* SWMR — at most one E/M copy machine-wide;
* a copy whose version exceeds the home image implies the directory is
  MODIFIED with that node as owner (dirty data is always tracked);
* the switch copy's version never exceeds the home image;
* every terminal state is quiescent (no stuck states).

Checked on every *quiescent* state (all channels empty, home idle, no
MSHRs) — legal transient windows make these too strong per-state, e.g.
a stale SHARED copy may coexist with a new owner until the corrective
invalidation lands:

* dir MODIFIED implies the owner (and only the owner) holds an owned
  copy and the switch holds nothing;
* dir SHARED/UNOWNED implies no owned copies, every SHARED holder is a
  registered sharer at the home image's version, and the switch copy
  (if any) matches the home image.

``MUTATIONS`` name deliberate protocol bugs used to validate that the
checker actually detects violations (see ``tests/test_verify.py``).
"""

from __future__ import annotations

import argparse
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: cache line states
I, S, E, M = "I", "S", "E", "M"
#: directory states
DU, DS, DM = "U", "S", "M"

#: deliberate protocol bugs, each of which the checker must flag:
#: ``skip_inv``       — the home forgets to invalidate one sharer on a write
#: ``bad_dir_update`` — a DIR_UPDATE that finds the block MODIFIED registers
#:                      the reader instead of sending the corrective
#:                      invalidation (a flipped directory transition)
#: ``no_snoop``       — the switch cache ignores INV snoops and retains a
#:                      stale version
#: ``drop_ack``       — a node invalidates on INV but never acknowledges
MUTATIONS = ("skip_inv", "bad_dir_update", "no_snoop", "drop_ack")

State = Tuple  # nested-tuple encoding described in the module docstring
Action = Tuple


@dataclass(frozen=True)
class ModelConfig:
    """One model-checking configuration.

    ``ops_per_node`` may be a single budget shared by every node or a
    per-node tuple.  Asymmetric budgets like ``(2, 1, 1)`` keep a 3-node
    space tractable while still covering every race class that needs a
    third participant (multi-sharer invalidation fan-out, a depositor
    distinct from both the racing reader and writer): the deep two-party
    races are already exhausted by the symmetric 2-node configuration.
    """

    protocol: str = "msi"  # "msi" | "mesi"
    nodes: int = 3
    ops_per_node: object = 2  # int, or a per-node tuple of ints
    switch: bool = True
    mutation: Optional[str] = None

    def budgets(self) -> Tuple[int, ...]:
        ops = self.ops_per_node
        if isinstance(ops, int):
            return (ops,) * self.nodes
        budgets = tuple(int(b) for b in ops)
        if len(budgets) != self.nodes:
            raise ValueError(
                f"ops_per_node {ops!r} does not match nodes={self.nodes}"
            )
        return budgets

    def label(self) -> str:
        ops = self.ops_per_node
        ops_tag = str(ops) if isinstance(ops, int) else \
            ",".join(str(b) for b in ops)
        tag = f"{self.protocol} nodes={self.nodes} ops={ops_tag} " \
              f"switch={'on' if self.switch else 'off'}"
        if self.mutation:
            tag += f" mutation={self.mutation}"
        return tag


@dataclass
class Violation:
    kind: str  # "state" | "quiescence" | "transition" | "stuck"
    message: str
    trace: Tuple[str, ...] = ()

    def __str__(self) -> str:
        return f"[{self.kind}] {self.message}"


@dataclass
class CheckResult:
    config: ModelConfig
    states: int = 0
    transitions: int = 0
    terminal: int = 0
    quiescent: int = 0
    complete: bool = True
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.complete and not self.violations

    def summary(self) -> str:
        status = "ok" if self.ok else (
            f"{len(self.violations)} violation(s)" if self.violations
            else "incomplete"
        )
        return (
            f"{self.config.label():<44s} states={self.states:>7d} "
            f"transitions={self.transitions:>8d} "
            f"quiescent={self.quiescent:>5d} {status}"
        )


class _Txn:
    """Mutable working copy of one active home transaction."""

    __slots__ = ("kind", "req", "reply", "acks", "memp", "ready",
                 "awo", "awb", "over")

    def __init__(self, kind: str, req: int, reply: Optional[str]) -> None:
        self.kind = kind      # "read" | "write" | "upgrade" | "dir_update"
        self.req = req
        self.reply = reply    # "S" | "X" | "ACK" | None
        self.acks = 0         # invalidation acks outstanding
        self.memp = False     # memory/directory access event outstanding
        self.ready = False    # write data/ack path ready to finish
        self.awo = False      # awaiting_owner_data (recall in flight)
        self.awb = False      # awaiting_wb (owner's writeback in flight)
        self.over: Optional[int] = None  # owner_version

    def encode(self) -> Tuple:
        return (self.kind, self.req, self.reply, self.acks, self.memp,
                self.ready, self.awo, self.awb, self.over)

    @staticmethod
    def decode(t: Tuple) -> "_Txn":
        txn = _Txn(t[0], t[1], t[2])
        (txn.acks, txn.memp, txn.ready, txn.awo, txn.awb, txn.over) = t[3:]
        return txn


class _W:
    """Mutable working copy of one model state (decode -> mutate -> encode)."""

    __slots__ = ("caches", "ds", "sharers", "owner", "dver", "active",
                 "pending", "procs", "sw", "n2s", "s2h", "h2s", "s2n", "viol")

    def __init__(self, state: State) -> None:
        caches, directory, home, procs, sw, chans = state
        self.caches = [list(c) for c in caches]
        self.ds, sharers, self.owner, self.dver = directory
        self.sharers = set(sharers)
        active, pending = home
        self.active = _Txn.decode(active) if active is not None else None
        self.pending = list(pending)
        self.procs = [[b, list(m) if m is not None else None]
                      for b, m in procs]
        self.sw = sw
        self.n2s = [list(lane) for lane in chans[0]]
        self.s2h = [list(lane) for lane in chans[1]]
        self.h2s = [list(lane) for lane in chans[2]]
        self.s2n = [list(lane) for lane in chans[3]]
        self.viol: List[str] = []

    def encode(self) -> State:
        return (
            tuple(tuple(c) for c in self.caches),
            (self.ds, tuple(sorted(self.sharers)), self.owner, self.dver),
            (self.active.encode() if self.active is not None else None,
             tuple(self.pending)),
            tuple((b, tuple(m) if m is not None else None)
                  for b, m in self.procs),
            self.sw,
            (tuple(tuple(lane) for lane in self.n2s),
             tuple(tuple(lane) for lane in self.s2h),
             tuple(tuple(lane) for lane in self.h2s),
             tuple(tuple(lane) for lane in self.s2n)),
        )


class ProtocolModel:
    """The protocol FSM: initial state, enabled actions, invariants."""

    def __init__(self, config: ModelConfig) -> None:
        if config.protocol not in ("msi", "mesi"):
            raise ValueError(f"unknown protocol {config.protocol!r}")
        if config.mutation is not None and config.mutation not in MUTATIONS:
            raise ValueError(f"unknown mutation {config.mutation!r}")
        self.cfg = config

    # ------------------------------------------------------------------
    # states
    # ------------------------------------------------------------------
    def initial(self) -> State:
        n = self.cfg.nodes
        empty = tuple(() for _ in range(n))
        return (
            tuple((I, 0) for _ in range(n)),
            (DU, (), None, 0),
            (None, ()),
            tuple((budget, None) for budget in self.cfg.budgets()),
            None,
            (empty, empty, empty, empty),
        )

    def is_quiescent(self, state: State) -> bool:
        _caches, _directory, home, procs, _sw, chans = state
        if home[0] is not None or home[1]:
            return False
        if any(m is not None for _b, m in procs):
            return False
        return all(not lane for group in chans for lane in group)

    # ------------------------------------------------------------------
    # enabled actions and successors
    # ------------------------------------------------------------------
    def successors(self, state: State) -> List[Tuple[Action, State, List[str]]]:
        cfg = self.cfg
        caches, _directory, home, procs, sw, chans = state
        actions: List[Action] = []
        for i in range(cfg.nodes):
            budget, mshr = procs[i]
            if mshr is None:
                if budget:
                    actions.append(("read", i))
                    actions.append(("write", i))
                if caches[i][0] != I:
                    actions.append(("evict", i))
        for i in range(cfg.nodes):
            lane = chans[0][i]
            if lane:
                if cfg.switch and sw is not None and lane[0][0] == "READ":
                    actions.append(("n2s", i, "intercept"))
                actions.append(("n2s", i, "forward"))
        for i in range(cfg.nodes):
            if chans[1][i]:
                actions.append(("s2h", i))
        for i in range(cfg.nodes):
            lane = chans[2][i]
            if lane:
                if cfg.switch and lane[0][0] == "DATA_S":
                    actions.append(("h2s", i, "deposit"))
                    actions.append(("h2s", i, "skip"))
                else:
                    actions.append(("h2s", i, "forward"))
        for i in range(cfg.nodes):
            if chans[3][i]:
                actions.append(("s2n", i))
        if sw is not None:
            actions.append(("sw_evict",))
        if home[0] is not None and home[0][4]:  # active txn, memp set
            actions.append(("mem",))
        return [self._apply(state, action) for action in actions]

    def _apply(self, state: State, action: Action) -> Tuple[Action, State, List[str]]:
        w = _W(state)
        kind = action[0]
        if kind == "read":
            self._op_read(w, action[1])
        elif kind == "write":
            self._op_write(w, action[1])
        elif kind == "evict":
            self._op_evict(w, action[1])
        elif kind == "sw_evict":
            w.sw = None
        elif kind == "n2s":
            self._switch_up(w, action[1], action[2])
        elif kind == "s2h":
            src = action[1]
            self._home_receive(w, src, w.s2h[src].pop(0))
        elif kind == "h2s":
            self._switch_down(w, action[1], action[2])
        elif kind == "s2n":
            dst = action[1]
            self._node_receive(w, dst, w.s2n[dst].pop(0))
        elif kind == "mem":
            self._mem_done(w)
        else:  # pragma: no cover - action construction is closed above
            raise AssertionError(f"unknown action {action!r}")
        return action, w.encode(), w.viol

    # ------------------------------------------------------------------
    # processor-side actions (cluster bus collapsed to one stack per node)
    # ------------------------------------------------------------------
    def _op_read(self, w: _W, i: int) -> None:
        w.procs[i][0] -= 1
        st, _ver = w.caches[i]
        if st == I:
            w.procs[i][1] = ["read", False]
            w.n2s[i].append(("READ",))
        # S/E/M: cache hit, no protocol traffic

    def _op_write(self, w: _W, i: int) -> None:
        w.procs[i][0] -= 1
        st, ver = w.caches[i]
        if st == M:
            w.caches[i][1] = ver + 1
        elif st == E:
            w.caches[i] = [M, ver + 1]  # silent MESI upgrade
        elif st == S:
            w.procs[i][1] = ["upgrade", False]
            w.n2s[i].append(("UPGRADE",))
        else:
            w.procs[i][1] = ["write", False]
            w.n2s[i].append(("READX",))

    def _op_evict(self, w: _W, i: int) -> None:
        st, ver = w.caches[i]
        w.caches[i] = [I, 0]
        if st in (E, M):
            # owned victims (and MESI replacement notifications) go home
            w.n2s[i].append(("WRITEBACK", ver))

    # ------------------------------------------------------------------
    # switch endpoint (CAESAR hooks per message direction)
    # ------------------------------------------------------------------
    def _switch_up(self, w: _W, i: int, choice: str) -> None:
        msg = w.n2s[i].pop(0)
        if choice == "intercept":
            # READ hit: fabricated clean-SHARED reply retraces the path,
            # the request continues to the home as a 1-flit DIR_UPDATE
            # carrying the version the switch served (so the home can
            # detect staleness even after the directory left MODIFIED)
            w.s2n[i].append(("DATA_S", w.sw))
            w.s2h[i].append(("DIR_UPDATE", i, w.sw))
        else:
            w.s2h[i].append(msg)

    def _switch_down(self, w: _W, i: int, choice: str) -> None:
        msg = w.h2s[i].pop(0)
        if choice == "deposit":
            w.sw = msg[1]
        elif (msg[0] == "INV" and self.cfg.switch
                and self.cfg.mutation != "no_snoop"):
            w.sw = None  # snoop purge (CaesarEngine.snoop)
        w.s2n[i].append(msg)

    # ------------------------------------------------------------------
    # home endpoint (HomeController + Directory)
    # ------------------------------------------------------------------
    def _home_receive(self, w: _W, src: int, msg: Tuple) -> None:
        kind = msg[0]
        if kind in ("READ", "READX", "UPGRADE", "DIR_UPDATE"):
            if w.active is not None:
                w.pending.append((src, msg))  # per-block FIFO
            else:
                self._home_start(w, src, msg)
        elif kind == "INV_ACK":
            txn = w.active
            if txn is None:
                w.viol.append(f"stray INV_ACK from node {src} at home")
                return
            txn.acks -= 1
            if txn.acks < 0:
                w.viol.append("too many INV_ACKs for the active transaction")
                return
            self._write_maybe_finish(w)
        elif kind == "RECALL_REPLY":
            self._on_recall_reply(w, msg[1])
        elif kind == "WRITEBACK":
            self._on_writeback(w, src, msg[1])
        else:
            w.viol.append(f"home got unexpected {kind}")

    def _home_start(self, w: _W, src: int, msg: Tuple) -> None:
        kind = msg[0]
        if kind == "READ":
            txn = _Txn("read", src, "S")
            w.active = txn
            if w.ds == DM:
                if w.owner == src:
                    txn.awb = True  # requester's own writeback in flight
                else:
                    txn.awo = True
                    w.h2s[w.owner].append(("RECALL",))
            else:
                txn.memp = True  # memory read outstanding
        elif kind in ("READX", "UPGRADE"):
            upgrade = kind == "UPGRADE"
            reply = ("ACK" if upgrade and w.ds == DS and src in w.sharers
                     else "X")
            txn = _Txn("upgrade" if upgrade else "write", src, reply)
            w.active = txn
            if w.ds == DM:
                if w.owner == src:
                    txn.awb = True
                else:
                    txn.awo = True
                    w.h2s[w.owner].append(("RECALL_X",))
                return
            targets = sorted(w.sharers)
            if self.cfg.mutation == "skip_inv":
                others = [t for t in targets if t != src]
                if others:
                    targets.remove(others[-1])  # one sharer never invalidated
            txn.acks = len(targets)
            for tgt in targets:
                # the requester itself gets a purge-only INV that cleans
                # the switch copies on its path without dropping its line
                w.h2s[tgt].append(("INV", tgt == src, False))
            txn.memp = True  # memory read (X) or DIR_CYCLES (ACK)
        elif kind == "DIR_UPDATE":
            req, served = msg[1], msg[2]
            txn = _Txn("dir_update", req, None)
            w.active = txn
            # the reply was stale if the block is MODIFIED now (image
            # version lags the owner) or if the served version no longer
            # matches the image (a write completed AND retired in between)
            stale = w.ds == DM or served != w.dver
            if stale and self.cfg.mutation != "bad_dir_update":
                # corrective invalidation chases the stale reply
                w.h2s[req].append(("INV", False, True))  # no_ack
            else:
                self._add_sharer(w, req)
            txn.memp = True  # DIR_CYCLES
        else:  # pragma: no cover - guarded by _home_receive
            w.viol.append(f"cannot start {kind}")

    def _add_sharer(self, w: _W, node: int) -> None:
        if w.ds == DM:
            w.viol.append(
                f"add_sharer on MODIFIED block (owner {w.owner})"
            )
            return
        w.ds = DS
        w.sharers.add(node)

    def _mem_done(self, w: _W) -> None:
        txn = w.active
        txn.memp = False
        if txn.kind == "read":
            if self.cfg.protocol == "mesi" and w.ds == DU:
                # sole reader gets a clean-exclusive grant
                w.ds, w.owner, w.sharers = DM, txn.req, set()
                w.h2s[txn.req].append(("DATA_E", w.dver))
            else:
                self._add_sharer(w, txn.req)
                w.h2s[txn.req].append(("DATA_S", w.dver))
            self._complete(w)
        elif txn.kind == "dir_update":
            self._complete(w)
        else:
            txn.ready = True
            self._write_maybe_finish(w)

    def _write_maybe_finish(self, w: _W) -> None:
        txn = w.active
        if txn.acks > 0 or not txn.ready:
            return
        if txn.reply == "ACK":
            w.sharers = set()
            w.ds, w.owner = DM, txn.req  # image version unchanged
            w.h2s[txn.req].append(("UPGR_ACK",))
        else:
            version = txn.over if txn.over is not None else w.dver
            w.sharers = set()
            w.ds, w.owner, w.dver = DM, txn.req, version
            w.h2s[txn.req].append(("DATA_X", version))
        self._complete(w)

    def _on_recall_reply(self, w: _W, version: Optional[int]) -> None:
        txn = w.active
        if txn is None or not txn.awo:
            if version is None:
                return  # benign late reply; the writeback already served us
            w.viol.append("stray RECALL_REPLY at home")
            return
        if version is None:
            # owner evicted before the recall arrived; its writeback is
            # in flight on the same path and will supply the data
            txn.awo = False
            txn.awb = True
            if txn.over is not None:
                self._owner_data_ready(w)
        else:
            txn.awo = False
            txn.over = version
            self._owner_data_ready(w)

    def _on_writeback(self, w: _W, src: int, version: int) -> None:
        if w.ds == DM and w.owner == src:
            w.ds, w.owner, w.dver = DU, None, version
        txn = w.active
        if txn is not None and (txn.awb or txn.awo):
            txn.over = version
            if txn.awb:
                txn.awb = False
                self._owner_data_ready(w)
            # if still awaiting the recall reply, _on_recall_reply will
            # notice over is set and finish then

    def _owner_data_ready(self, w: _W) -> None:
        txn = w.active
        version = txn.over
        if version is None:
            w.viol.append("owner data ready without a version")
            return
        if txn.kind == "read":
            if w.ds == DM:
                old_owner = w.owner
                w.ds, w.owner, w.dver = DU, None, version
                self._add_sharer(w, old_owner)  # recall keeps an S copy
            else:
                w.dver = version
            self._add_sharer(w, txn.req)
            w.h2s[txn.req].append(("DATA_S", version))
            self._complete(w)
        else:
            if w.ds == DM:
                w.ds, w.owner, w.dver = DU, None, version
            else:
                w.dver = version
            txn.ready = True
            self._write_maybe_finish(w)

    def _complete(self, w: _W) -> None:
        w.active = None
        if w.pending:
            src, msg = w.pending.pop(0)
            self._home_start(w, src, msg)

    # ------------------------------------------------------------------
    # node endpoint (NodeController against a one-line cache)
    # ------------------------------------------------------------------
    def _node_receive(self, w: _W, i: int, msg: Tuple) -> None:
        kind = msg[0]
        mshr = w.procs[i][1]
        if kind in ("DATA_S", "DATA_E"):
            if mshr is None or mshr[0] != "read":
                w.viol.append(f"node {i}: {kind} reply matches no read MSHR")
                return
            w.procs[i][1] = None
            if mshr[1]:
                return  # late invalidation: use-once data, install nowhere
            w.caches[i] = [S if kind == "DATA_S" else E, msg[1]]
        elif kind == "DATA_X":
            if mshr is None or mshr[0] not in ("write", "upgrade"):
                w.viol.append(f"node {i}: DATA_X reply matches no MSHR")
                return
            w.procs[i][1] = None
            # fill MODIFIED and apply the drained store atomically
            w.caches[i] = [M, msg[1] + 1]
        elif kind == "UPGR_ACK":
            if mshr is None:
                w.viol.append(f"node {i}: UPGR_ACK matches no MSHR")
                return
            w.procs[i][1] = None
            st, ver = w.caches[i]
            if st != S:
                w.viol.append(
                    f"node {i}: UPGR_ACK but line is {st} — the home "
                    f"should have escalated to READX"
                )
                return
            w.caches[i] = [M, ver + 1]
        elif kind == "INV":
            purge_only, no_ack = msg[1], msg[2]
            if not purge_only:
                w.caches[i] = [I, 0]
                if mshr is not None and mshr[0] == "read":
                    mshr[1] = True  # mark the in-flight reply use-once
            if not no_ack:
                if self.cfg.mutation == "drop_ack" and not purge_only:
                    pass  # the mutated node "forgets" its acknowledgement
                else:
                    w.n2s[i].append(("INV_ACK",))
        elif kind == "RECALL":
            st, ver = w.caches[i]
            if st in (E, M):
                w.caches[i] = [S, ver]
                w.n2s[i].append(("RECALL_REPLY", ver))
            else:
                w.n2s[i].append(("RECALL_REPLY", None))  # eviction raced it
        elif kind == "RECALL_X":
            st, ver = w.caches[i]
            reply = ver if st in (E, M) else None
            w.caches[i] = [I, 0]  # ownership moves off-node: purge everything
            w.n2s[i].append(("RECALL_REPLY", reply))
        else:
            w.viol.append(f"node {i} got unexpected {kind}")

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def check_state(self, state: State) -> List[Violation]:
        caches, (ds, sharers, owner, dver), _home, _procs, sw, _chans = state
        found: List[Violation] = []
        owned = [i for i, (st, _v) in enumerate(caches) if st in (E, M)]
        if len(owned) > 1:
            found.append(Violation(
                "state", f"SWMR violated: owned copies at nodes {owned}"
            ))
        for i, (st, ver) in enumerate(caches):
            if st != I and ver > dver and not (ds == DM and owner == i):
                found.append(Violation(
                    "state",
                    f"node {i} holds {st} v{ver} newer than home image "
                    f"v{dver} without ownership (dir {ds} owner {owner})",
                ))
        if sw is not None and sw > dver:
            found.append(Violation(
                "state", f"switch copy v{sw} newer than home image v{dver}"
            ))
        if self.is_quiescent(state):
            found.extend(self._check_quiescent(state))
        return found

    def _check_quiescent(self, state: State) -> List[Violation]:
        caches, (ds, sharers, owner, dver), _h, _p, sw, _c = state
        found: List[Violation] = []
        if ds == DM:
            if owner is None or caches[owner][0] not in (E, M):
                found.append(Violation(
                    "quiescence",
                    f"dir MODIFIED owner {owner} holds no owned copy",
                ))
            for i, (st, _v) in enumerate(caches):
                if i != owner and st != I:
                    found.append(Violation(
                        "quiescence",
                        f"node {i} holds {st} while dir MODIFIED "
                        f"(owner {owner})",
                    ))
            if sw is not None:
                found.append(Violation(
                    "quiescence", "switch copy while dir MODIFIED"
                ))
        else:
            for i, (st, ver) in enumerate(caches):
                if st in (E, M):
                    found.append(Violation(
                        "quiescence", f"node {i} holds {st} while dir {ds}"
                    ))
                elif st == S:
                    if i not in sharers:
                        found.append(Violation(
                            "quiescence",
                            f"node {i} holds S but is not a registered sharer",
                        ))
                    if ver != dver:
                        found.append(Violation(
                            "quiescence",
                            f"node {i} S copy v{ver} != home image v{dver}",
                        ))
            if sw is not None and sw != dver:
                found.append(Violation(
                    "quiescence",
                    f"switch copy v{sw} != home image v{dver}",
                ))
        return found


class ModelChecker:
    """BFS driver over a :class:`ProtocolModel`'s reachable state space."""

    def __init__(self, config: ModelConfig, max_states: int = 2_000_000,
                 max_violations: int = 25) -> None:
        self.model = ProtocolModel(config)
        self.max_states = max_states
        self.max_violations = max_violations

    def run(self) -> CheckResult:
        model = self.model
        result = CheckResult(model.cfg)
        init = model.initial()
        # parent pointers double as the visited set (for violation traces)
        seen: Dict[State, Optional[Tuple[State, Action]]] = {init: None}
        frontier = deque([init])
        self._record(result, seen, init, model.check_state(init))
        while frontier:
            if len(seen) > self.max_states:
                result.complete = False
                break
            if len(result.violations) >= self.max_violations:
                result.complete = False
                break
            state = frontier.popleft()
            successors = model.successors(state)
            if not successors:
                result.terminal += 1
                if not model.is_quiescent(state):
                    self._record(result, seen, state, [Violation(
                        "stuck",
                        "terminal state is not quiescent (protocol wedged)",
                    )])
            for action, succ, transition_viols in successors:
                result.transitions += 1
                if transition_viols and succ not in seen:
                    seen[succ] = (state, action)
                    self._record(result, seen, succ, [
                        Violation("transition", msg)
                        for msg in transition_viols
                    ])
                    continue  # do not expand past a protocol exception
                if succ not in seen:
                    seen[succ] = (state, action)
                    frontier.append(succ)
                    self._record(
                        result, seen, succ, model.check_state(succ)
                    )
        result.states = len(seen)
        result.quiescent = sum(
            1 for state in seen if model.is_quiescent(state)
        )
        return result

    def _record(self, result: CheckResult,
                seen: Dict[State, Optional[Tuple[State, Action]]],
                state: State, violations: Sequence[Violation]) -> None:
        if not violations:
            return
        trace = self._trace(seen, state)
        for violation in violations:
            if len(result.violations) >= self.max_violations:
                return
            violation.trace = trace
            result.violations.append(violation)

    @staticmethod
    def _trace(seen: Dict[State, Optional[Tuple[State, Action]]],
               state: State) -> Tuple[str, ...]:
        labels: List[str] = []
        while True:
            parent = seen.get(state)
            if parent is None:
                break
            state, action = parent
            labels.append(":".join(str(part) for part in action))
        return tuple(reversed(labels))


def check(protocol: str = "msi", nodes: int = 3, ops_per_node: object = 2,
          switch: bool = True, mutation: Optional[str] = None,
          max_states: int = 2_000_000) -> CheckResult:
    """Enumerate one configuration and return the :class:`CheckResult`."""
    config = ModelConfig(
        protocol=protocol, nodes=nodes, ops_per_node=ops_per_node,
        switch=switch, mutation=mutation,
    )
    return ModelChecker(config, max_states=max_states).run()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify.modelcheck",
        description="Exhaustively enumerate the directory protocol's "
                    "reachable state space and check its invariants.",
    )
    parser.add_argument("--protocol", choices=("msi", "mesi", "both"),
                        default="both")
    parser.add_argument("--nodes", type=int, default=3,
                        help="caching nodes (default 3)")
    parser.add_argument("--ops", default=None,
                        help="read/write budget: one int shared by every "
                             "node or a comma list, e.g. 2,1,1 (default: "
                             "2 for <=2 nodes, else 2,1,1,...)")
    parser.add_argument("--switch", choices=("on", "off", "both"),
                        default="both",
                        help="switch cache on the reply path (default both)")
    parser.add_argument("--mutation", choices=MUTATIONS, default=None,
                        help="inject a deliberate protocol bug (the run "
                             "must then report violations)")
    parser.add_argument("--max-states", type=int, default=2_000_000)
    parser.add_argument("--trace", action="store_true",
                        help="print the action trace leading to each "
                             "violation")
    args = parser.parse_args(argv)

    if args.ops is None:
        ops: object = 2 if args.nodes <= 2 else (2,) + (1,) * (args.nodes - 1)
    elif "," in args.ops:
        ops = tuple(int(b) for b in args.ops.split(","))
    else:
        ops = int(args.ops)

    protocols = ("msi", "mesi") if args.protocol == "both" else (args.protocol,)
    switches = {"on": (True,), "off": (False,), "both": (True, False)}[args.switch]
    results = []
    for protocol in protocols:
        for switch in switches:
            result = check(
                protocol=protocol, nodes=args.nodes, ops_per_node=ops,
                switch=switch, mutation=args.mutation,
                max_states=args.max_states,
            )
            results.append(result)
            print(result.summary())
            for violation in result.violations[:10]:
                print(f"    {violation}")
                if args.trace and violation.trace:
                    print(f"      via {' -> '.join(violation.trace)}")
    failed = [r for r in results if not r.ok]
    if args.mutation:
        # a mutated protocol MUST be caught: invert the exit status
        caught = all(r.violations for r in results)
        print(f"mutation {args.mutation}: "
              f"{'caught' if caught else 'NOT caught'}")
        return 0 if caught else 1
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
