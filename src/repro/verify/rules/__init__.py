"""Rule registry population for the unified analysis framework.

Importing this package registers every built-in rule with
:mod:`repro.verify.framework`; import order here is report order:

* ``W R S H L B`` — determinism lint (PR 3, adapted)
* ``F-*`` — handler exhaustiveness over the message-flow graph
* ``C-*`` — lane-dependency deadlock freedom
* ``P-*`` — hot-path purity (PR 4/6 inlined regions)
"""

from __future__ import annotations

from . import determinism as determinism
from . import protocol_flow as protocol_flow
from . import lanes as lanes
from . import hotpath as hotpath

__all__ = ["determinism", "protocol_flow", "lanes", "hotpath"]
