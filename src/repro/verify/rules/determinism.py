"""Framework adapters for the legacy determinism lint (PR 3).

``repro.verify.lint_determinism`` predates the rule framework and keeps
its own single-file scanner with one-letter rule ids (W, R, S, H, L, B, N).
Rather than rewrite it, each letter is wrapped as a framework
:class:`Rule` so the umbrella runner, the ``# repro: allow[...]``
suppressions, the baseline, and the JSON report all see determinism
findings through the same pipe as the flow/lane/hot-path rules.

The underlying scan runs once per context (memoized in ``ctx.cache``)
and is sliced by rule letter here.
"""

from __future__ import annotations

from typing import Dict, List

from .. import lint_determinism
from ..framework import AnalysisContext, Finding, Rule, register

#: letter -> short title, in the legacy lint's reporting order
_LETTERS: Dict[str, str] = {
    "W": "no wall-clock reads in kernel packages",
    "R": "no unseeded randomness in kernel packages",
    "S": "no unordered-set iteration in order-sensitive modules",
    "H": "hot-module classes declare __slots__",
    "L": "no lambdas scheduled through the event engine",
    "B": "no Set-typed sharer fields in coherence modules",
    "N": "no builtin hash() derived identifiers in kernel packages",
}


def _scan(ctx: AnalysisContext) -> Dict[str, List[Finding]]:
    cached = ctx.cache.get("determinism")
    if isinstance(cached, dict):
        return cached
    by_letter: Dict[str, List[Finding]] = {letter: [] for letter in _LETTERS}
    prefixes = tuple(
        pkg + "/" for pkg in lint_determinism.KERNEL_PACKAGES
    )
    for module in ctx.modules:
        if not module.rel_path.startswith(prefixes):
            continue
        for found in lint_determinism.lint_file(module.path, ctx.root):
            bucket = by_letter.get(found.rule)
            if bucket is not None:
                bucket.append(Finding(
                    found.rule, found.path, found.line, found.message,
                ))
    ctx.cache["determinism"] = by_letter
    return by_letter


class _DeterminismRule(Rule):
    """One legacy lint letter exposed as a framework rule."""

    def __init__(self, letter: str, title: str) -> None:
        self.id = letter
        self.title = title

    def run(self, ctx: AnalysisContext) -> List[Finding]:
        return list(_scan(ctx)[self.id])


for _letter, _title in _LETTERS.items():
    register(_DeterminismRule(_letter, _title))
