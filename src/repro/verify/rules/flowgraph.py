"""Message-flow graph extraction for the protocol-flow rules.

Builds a static send→receive graph over the protocol packages
(``coherence/``, ``network/``, ``node/``, ``memory/``, ``core/``) from
three kinds of evidence, all read straight from the AST:

* **kind mentions** — ``MsgKind.X`` appearing as a call argument (a
  message being built or a reply helper being invoked) or as the value
  of an attribute store (``msg.kind = MsgKind.DIR_UPDATE`` re-kinding a
  worm, ``txn.reply_kind = MsgKind.DATA_S`` latching a reply).  Local
  constant propagation resolves names bound to kind members, including
  tuple assignments (``kind, txn_kind = MsgKind.UPGRADE, "upgrade"``)
  and module-level hoisted aliases (``_INV = MsgKind.INV``).
* **dispatch sites** — functions named ``receive``/``_dispatch``/
  ``_start`` are parsed into guard *arms*: an if/elif chain whose tests
  compare a kind (``kind is MsgKind.X``, ``kind in (A, B)``, ``kind in
  _HOME_KINDS`` with the frozenset table resolved from module level).
* **edges** — for each handler arm and each kind the arm guards, a DFS
  over the intra-class call graph (direct calls, and bound-method
  references passed as scheduler callbacks, e.g. ``sim.call_at(done,
  self._finish_read_from_memory, txn)``) collects every kind the
  handler can cause to be sent.  Entering another dispatcher during the
  DFS re-selects the arm for the kind being traced, so ``receive ->
  _enqueue -> _start`` does not smear one request's sends onto another.

The graph is built once per :class:`~repro.verify.framework.AnalysisContext`
and cached; the exhaustiveness and lane rules both consume it.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..framework import AnalysisContext, Module

#: packages the flow rules scan (repo-relative path prefixes)
FLOW_PACKAGES: Tuple[str, ...] = (
    "coherence/", "network/", "node/", "memory/", "core/",
)

#: the message-kind enum the graph is keyed on
ENUM_NAME = "MsgKind"

#: function names treated as dispatch sites (parsed into guard arms)
DISPATCHER_NAMES: FrozenSet[str] = frozenset({"receive", "_dispatch", "_start"})

#: terminal handler entry points (exhaustiveness is judged against these)
RECEIVER_NAME = "receive"

#: per-node router functions (forward to a receiver or handle locally)
ROUTER_NAME = "_dispatch"

#: router-arm call bases -> the receiver class they forward to.  Covers
#: both ``self.home_ctrl.receive(msg)`` (attribute) and ``ctrl.receive(msg)``
#: (a local picked from ``self._netctrls``).
RECEIVER_ATTRS: Dict[str, str] = {
    "home_ctrl": "HomeController",
    "ctrl": "NodeController",
    "l2ctrl": "NodeController",
}

#: handlers that consume a kind outside any ``receive``-style dispatcher:
#: the fabric intercepts READ worms in-flight (switch-cache service)
EXTRA_HANDLERS: Dict[Tuple[str, str], Tuple[str, ...]] = {
    ("network/fabric.py", "Fabric._serve_from_switch"): ("READ",),
}

#: one source location: (repo-relative path, line)
Site = Tuple[str, int]


class Arm:
    """One guard arm of a dispatcher's if/elif chain."""

    __slots__ = ("kinds", "lineno", "sends", "calls", "router_targets",
                 "raises")

    def __init__(self, kinds: Optional[FrozenSet[str]], lineno: int) -> None:
        self.kinds = kinds  # None for the else arm
        self.lineno = lineno
        self.sends: List[Tuple[str, int]] = []
        self.calls: Set[str] = set()
        self.router_targets: List[Tuple[str, int]] = []
        self.raises = False


class FuncInfo:
    """Sends, call candidates, and (for dispatchers) arms of one function."""

    __slots__ = ("rel_path", "cls", "name", "qualname", "lineno",
                 "sends", "calls", "arms")

    def __init__(self, rel_path: str, cls: Optional[str], name: str,
                 lineno: int) -> None:
        self.rel_path = rel_path
        self.cls = cls
        self.name = name
        self.qualname = f"{cls}.{name}" if cls else name
        self.lineno = lineno
        # for dispatchers these hold the *shared* region only (statements
        # outside the guard chain); arm bodies keep their own
        self.sends: List[Tuple[str, int]] = []
        self.calls: Set[str] = set()
        self.arms: List[Arm] = []

    @property
    def is_dispatcher(self) -> bool:
        return bool(self.arms)


class FlowGraph:
    """The extracted protocol graph for one scanned tree."""

    __slots__ = ("kinds", "kind_lines", "enum_path", "sends", "funcs",
                 "methods", "module_fns", "receivers", "routers", "edges")

    def __init__(self) -> None:
        #: MsgKind member names in declaration order
        self.kinds: List[str] = []
        #: member name -> declaration line (for F-DEAD / C-NOLANE sites)
        self.kind_lines: Dict[str, int] = {}
        self.enum_path: str = ""
        #: kind -> every site where it is sent/mentioned as a message kind
        self.sends: Dict[str, List[Site]] = {}
        self.funcs: Dict[Tuple[str, str], FuncInfo] = {}
        #: class name -> {method name -> FuncInfo} (classes assumed unique)
        self.methods: Dict[str, Dict[str, FuncInfo]] = {}
        #: rel_path -> {function name -> FuncInfo} (module-level functions)
        self.module_fns: Dict[str, Dict[str, FuncInfo]] = {}
        #: receiver class -> (FuncInfo, {handled kind -> arm line})
        self.receivers: Dict[str, Tuple[FuncInfo, Dict[str, int]]] = {}
        self.routers: List[FuncInfo] = []
        #: (src kind, dst kind) -> first send site establishing the edge
        self.edges: Dict[Tuple[str, str], Site] = {}

    def handled_kinds(self) -> Dict[str, Site]:
        """Every kind some receiver or router arm accepts -> one site."""
        handled: Dict[str, Site] = {}
        for _cls, (fn, arm_kinds) in sorted(self.receivers.items()):
            for kind, line in arm_kinds.items():
                handled.setdefault(kind, (fn.rel_path, line))
        for router in self.routers:
            for arm in router.arms:
                if arm.kinds:
                    for kind in arm.kinds:
                        handled.setdefault(kind, (router.rel_path, arm.lineno))
        for (rel_path, qualname), kinds in EXTRA_HANDLERS.items():
            fn = self.funcs.get((rel_path, qualname))
            if fn is not None:
                for kind in kinds:
                    handled.setdefault(kind, (fn.rel_path, fn.lineno))
        return handled


# ----------------------------------------------------------------------
# kind-expression resolution
# ----------------------------------------------------------------------
def _resolve_kind(
    expr: ast.AST,
    consts: Dict[str, Set[str]],
    aliases: Dict[str, str],
    kinds: FrozenSet[str],
) -> FrozenSet[str]:
    """Kind members a single expression can denote (empty when unknown)."""
    if (isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == ENUM_NAME
            and expr.attr in kinds):
        return frozenset({expr.attr})
    if isinstance(expr, ast.Name):
        if expr.id in consts:
            return frozenset(consts[expr.id])
        if expr.id in aliases:
            return frozenset({aliases[expr.id]})
    return frozenset()


def _resolve_kind_group(
    expr: ast.AST,
    consts: Dict[str, Set[str]],
    aliases: Dict[str, str],
    tables: Dict[str, FrozenSet[str]],
    kinds: FrozenSet[str],
) -> FrozenSet[str]:
    """Kinds in a membership-test collection (tuple/set or a named table)."""
    if isinstance(expr, (ast.Tuple, ast.Set, ast.List)):
        out: Set[str] = set()
        for elt in expr.elts:
            out |= _resolve_kind(elt, consts, aliases, kinds)
        return frozenset(out)
    if isinstance(expr, ast.Name) and expr.id in tables:
        return tables[expr.id]
    return _resolve_kind(expr, consts, aliases, kinds)


def _guard_kinds(
    test: ast.AST,
    consts: Dict[str, Set[str]],
    aliases: Dict[str, str],
    tables: Dict[str, FrozenSet[str]],
    kinds: FrozenSet[str],
) -> FrozenSet[str]:
    """Every kind a dispatcher guard test can select."""
    out: Set[str] = set()
    for node in ast.walk(test):
        if not isinstance(node, ast.Compare):
            continue
        for op, comparator in zip(node.ops, node.comparators):
            if isinstance(op, (ast.Is, ast.Eq)):
                out |= _resolve_kind(comparator, consts, aliases, kinds)
            elif isinstance(op, ast.In):
                out |= _resolve_kind_group(
                    comparator, consts, aliases, tables, kinds
                )
    return frozenset(out)


# ----------------------------------------------------------------------
# per-function scanning
# ----------------------------------------------------------------------
def _collect_consts(
    fn_node: ast.AST,
    aliases: Dict[str, str],
    kinds: FrozenSet[str],
) -> Dict[str, Set[str]]:
    """Flow-insensitive union of kind members each local may hold."""
    consts: Dict[str, Set[str]] = {}
    empty: Dict[str, Set[str]] = {}
    for node in ast.walk(fn_node):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if isinstance(target, ast.Name):
            resolved = _resolve_kind(node.value, empty, aliases, kinds)
            if resolved:
                consts.setdefault(target.id, set()).update(resolved)
        elif (isinstance(target, ast.Tuple)
                and isinstance(node.value, ast.Tuple)
                and len(target.elts) == len(node.value.elts)):
            for t_elt, v_elt in zip(target.elts, node.value.elts):
                if isinstance(t_elt, ast.Name):
                    resolved = _resolve_kind(v_elt, empty, aliases, kinds)
                    if resolved:
                        consts.setdefault(t_elt.id, set()).update(resolved)
    return consts


def _scan_region(
    stmts: List[ast.stmt],
    consts: Dict[str, Set[str]],
    aliases: Dict[str, str],
    kinds: FrozenSet[str],
    sends: List[Tuple[str, int]],
    calls: Set[str],
    router_targets: List[Tuple[str, int]],
) -> bool:
    """Collect sends / call candidates / router targets; True if it raises."""
    raises = False
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise):
                raises = True
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute):
                    if func.attr == RECEIVER_NAME:
                        base = func.value
                        if (isinstance(base, ast.Attribute)
                                and isinstance(base.value, ast.Name)
                                and base.value.id == "self"):
                            router_targets.append((base.attr, node.lineno))
                        elif isinstance(base, ast.Name):
                            router_targets.append((base.id, node.lineno))
                    if (isinstance(func.value, ast.Name)
                            and func.value.id == "self"):
                        calls.add(func.attr)
                elif isinstance(func, ast.Name):
                    calls.add(func.id)
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    for kind in _resolve_kind(arg, consts, aliases, kinds):
                        sends.append((kind, arg.lineno))
                    # a bound method passed as a callback is a deferred call
                    if (isinstance(arg, ast.Attribute)
                            and isinstance(arg.value, ast.Name)
                            and arg.value.id == "self"):
                        calls.add(arg.attr)
            elif isinstance(node, ast.Assign):
                if any(isinstance(t, ast.Attribute) for t in node.targets):
                    for kind in _resolve_kind(node.value, consts, aliases,
                                              kinds):
                        sends.append((kind, node.lineno))
    return raises


def _scan_function(
    rel_path: str,
    cls: Optional[str],
    fn_node: ast.FunctionDef,
    aliases: Dict[str, str],
    tables: Dict[str, FrozenSet[str]],
    kinds: FrozenSet[str],
) -> FuncInfo:
    info = FuncInfo(rel_path, cls, fn_node.name, fn_node.lineno)
    consts = _collect_consts(fn_node, aliases, kinds)

    chain: Optional[ast.If] = None
    shared: List[ast.stmt] = []
    if fn_node.name in DISPATCHER_NAMES:
        for stmt in fn_node.body:
            if (chain is None and isinstance(stmt, ast.If)
                    and _guard_kinds(stmt.test, consts, aliases, tables,
                                     kinds)):
                chain = stmt
            else:
                shared.append(stmt)
    else:
        shared = fn_node.body

    _scan_region(shared, consts, aliases, kinds,
                 info.sends, info.calls, [])

    cursor = chain
    while cursor is not None:
        arm = Arm(
            _guard_kinds(cursor.test, consts, aliases, tables, kinds) or None,
            cursor.lineno,
        )
        arm.raises = _scan_region(cursor.body, consts, aliases, kinds,
                                  arm.sends, arm.calls, arm.router_targets)
        info.arms.append(arm)
        orelse = cursor.orelse
        if (len(orelse) == 1 and isinstance(orelse[0], ast.If)
                and _guard_kinds(orelse[0].test, consts, aliases, tables,
                                 kinds)):
            cursor = orelse[0]
        else:
            if orelse:
                else_arm = Arm(None, orelse[0].lineno)
                else_arm.raises = _scan_region(
                    orelse, consts, aliases, kinds,
                    else_arm.sends, else_arm.calls, else_arm.router_targets,
                )
                info.arms.append(else_arm)
            cursor = None
    return info


# ----------------------------------------------------------------------
# module-level scanning
# ----------------------------------------------------------------------
def _scan_module_level(
    module: Module,
    kinds: FrozenSet[str],
) -> Tuple[Dict[str, str], Dict[str, FrozenSet[str]]]:
    """Hoisted kind aliases and frozenset/tuple kind tables."""
    aliases: Dict[str, str] = {}
    tables: Dict[str, FrozenSet[str]] = {}
    empty_consts: Dict[str, Set[str]] = {}
    no_tables: Dict[str, FrozenSet[str]] = {}
    for stmt in module.tree.body:
        if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)):
            continue
        name = stmt.targets[0].id
        value: ast.AST = stmt.value
        if (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in ("frozenset", "set", "tuple")
                and len(value.args) == 1):
            value = value.args[0]
        resolved_single = _resolve_kind(value, empty_consts, aliases, kinds)
        if resolved_single and len(resolved_single) == 1:
            aliases[name] = next(iter(resolved_single))
            continue
        group = _resolve_kind_group(value, empty_consts, aliases, no_tables,
                                    kinds)
        if group:
            tables[name] = group
    return aliases, tables


def _find_enum(modules: List[Module]) -> Tuple[str, List[str], Dict[str, int]]:
    """Locate the MsgKind enum; returns (path, members, member lines)."""
    for module in modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name == ENUM_NAME:
                members: List[str] = []
                lines: Dict[str, int] = {}
                for stmt in node.body:
                    if isinstance(stmt, ast.Assign):
                        for target in stmt.targets:
                            if (isinstance(target, ast.Name)
                                    and not target.id.startswith("_")
                                    and target.id.isupper()):
                                members.append(target.id)
                                lines[target.id] = stmt.lineno
                if members:
                    return module.rel_path, members, lines
    return "", [], {}


# ----------------------------------------------------------------------
# edges (dispatcher-aware DFS)
# ----------------------------------------------------------------------
def _reachable_sends(
    graph: FlowGraph,
    fn: FuncInfo,
    kind: str,
    visited: Set[Tuple[str, str]],
    out: List[Tuple[str, Site]],
) -> None:
    key = (fn.rel_path, fn.qualname)
    if key in visited:
        return
    visited.add(key)
    sends = list(fn.sends)
    calls = set(fn.calls)
    if fn.is_dispatcher:
        matched = [a for a in fn.arms if a.kinds is not None and kind in a.kinds]
        if not matched:
            matched = [a for a in fn.arms if a.kinds is None]
        for arm in matched:
            sends.extend(arm.sends)
            calls.update(arm.calls)
    for sent_kind, line in sends:
        out.append((sent_kind, (fn.rel_path, line)))
    methods = graph.methods.get(fn.cls, {}) if fn.cls else {}
    module_fns = graph.module_fns.get(fn.rel_path, {})
    for callee in sorted(calls):
        target = methods.get(callee)
        if target is None:
            target = module_fns.get(callee)
        if target is not None:
            _reachable_sends(graph, target, kind, visited, out)


def build_flowgraph(ctx: AnalysisContext) -> FlowGraph:
    """Build (or fetch the cached) flow graph for the scanned tree."""
    cached = ctx.cache.get("flowgraph")
    if isinstance(cached, FlowGraph):
        return cached

    graph = FlowGraph()
    modules = ctx.modules_under(*FLOW_PACKAGES)
    enum_path, members, lines = _find_enum(modules)
    graph.enum_path = enum_path
    graph.kinds = members
    graph.kind_lines = lines
    kinds = frozenset(members)

    for module in modules:
        aliases, tables = _scan_module_level(module, kinds)
        fns: List[Tuple[Optional[str], ast.FunctionDef]] = []
        for node in module.tree.body:
            if isinstance(node, ast.FunctionDef):
                fns.append((None, node))
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, ast.FunctionDef):
                        fns.append((node.name, item))
        for cls, fn_node in fns:
            info = _scan_function(module.rel_path, cls, fn_node, aliases,
                                  tables, kinds)
            graph.funcs[(module.rel_path, info.qualname)] = info
            if cls is not None:
                graph.methods.setdefault(cls, {})[info.name] = info
            else:
                graph.module_fns.setdefault(module.rel_path, {})[
                    info.name] = info

    # global send sites
    for info in graph.funcs.values():
        regions = [info.sends] + [arm.sends for arm in info.arms]
        for region in regions:
            for kind, line in region:
                graph.sends.setdefault(kind, []).append(
                    (info.rel_path, line)
                )
    for sites in graph.sends.values():
        sites.sort()

    # receivers and routers
    for info in graph.funcs.values():
        if not info.is_dispatcher:
            continue
        if info.name == RECEIVER_NAME and info.cls is not None:
            arm_kinds: Dict[str, int] = {}
            for arm in info.arms:
                if arm.kinds:
                    for kind in arm.kinds:
                        arm_kinds.setdefault(kind, arm.lineno)
            graph.receivers[info.cls] = (info, arm_kinds)
        elif info.name == ROUTER_NAME:
            graph.routers.append(info)
    graph.routers.sort(key=lambda fn: (fn.rel_path, fn.lineno))

    # edges: kind handled -> kinds its handling can send
    entries: List[Tuple[FuncInfo, str]] = []
    for info in graph.funcs.values():
        for arm in info.arms:
            if arm.kinds:
                for kind in arm.kinds:
                    entries.append((info, kind))
    for (rel_path, qualname), extra_kinds in EXTRA_HANDLERS.items():
        fn = graph.funcs.get((rel_path, qualname))
        if fn is not None:
            for kind in extra_kinds:
                entries.append((fn, kind))
    entries.sort(key=lambda e: (e[0].rel_path, e[0].lineno, e[1]))
    for info, kind in entries:
        reached: List[Tuple[str, Site]] = []
        _reachable_sends(graph, info, kind, set(), reached)
        for sent_kind, site in reached:
            graph.edges.setdefault((kind, sent_kind), site)

    ctx.cache["flowgraph"] = graph
    return graph
