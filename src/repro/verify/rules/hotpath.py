"""Hot-path purity rules: keep the inlined hot regions allocation-free.

PRs 4 and 6 hand-inlined the event engine, the calendar queue, the
fabric's per-hop path, the coded cache kernels, and the CAESAR hooks for
a ~1.6x combined speedup; the express-transit PR fused the per-hop path
into a quiescent-window loop (DESIGN.md §12) and added the queues'
``head_bound``/``next_time`` lookahead to the same tier.  Nothing at
runtime stops a refactor from
quietly reintroducing a dict display, a closure, or an attribute-chain
re-lookup into those regions — benchmarks only catch it after the fact.
These rules are the static gate, scoped to the exact (module, function)
regions listed in :data:`HOT_REGIONS`.

* **P-ALLOC** — list/dict/set displays, comprehensions, generator
  expressions, f-strings, and calls to allocating builtins inside a hot
  region.  Tuples are exempt (constant-folded or stack-built), as is
  everything inside a ``raise`` statement (error paths are cold by
  definition) and inside a tracer guard (``if tracer is not None:`` —
  tracing is off in measured runs).
* **P-CLOSURE** — ``lambda`` or nested ``def`` inside a hot region:
  closure cells defeat the engine's event free list.
* **P-ATTR** — the same ≥2-hop attribute chain (``self.sim.now``) loaded
  more than once in a hot function: each re-lookup is two dict probes
  that a local hoist removes (the idiom every inlined region already
  uses).
* **P-NOSLOTS** — instantiating a class that does not declare
  ``__slots__`` inside a hot region (enums, exceptions, and dataclasses
  are exempt, mirroring the determinism lint's H rule).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Set, Tuple

from ..framework import AnalysisContext, Finding, Rule, dotted_name, register

#: module -> the Class.method regions the perf PRs inlined (gate scope)
HOT_REGIONS: Dict[str, FrozenSet[str]] = {
    "sim/engine.py": frozenset({
        "Simulator.call_at", "Simulator.step", "Simulator.run",
        "Simulator.run_while", "Simulator.run_until_stop",
        "Simulator._recycle", "HeapQueue.push", "HeapQueue.pop",
        "HeapQueue.next_time",
    }),
    "sim/calqueue.py": frozenset({
        "CalendarQueue.push", "CalendarQueue.pop", "CalendarQueue.peek",
        "CalendarQueue._min_bucket", "CalendarQueue.next_time",
    }),
    "network/fabric.py": frozenset({
        "Fabric.inject", "Fabric._arrive", "Fabric._forward",
        "Fabric._deliver",
    }),
    "network/message.py": frozenset({
        "MessagePool.make", "MessagePool.release",
    }),
    "cache/array.py": frozenset({
        "CacheArray.probe_data", "CacheArray.probe_state",
        "CacheArray.lookup_data", "CacheArray.lookup_state",
        "CacheArray.write_owned", "CacheArray.set_data",
        "CacheArray.downgrade_owned", "CacheArray.insert",
        "CacheArray.invalidate",
    }),
    "core/caesar.py": frozenset({
        "CaesarEngine.snoop", "CaesarEngine.try_deposit",
        "CaesarEngine.try_intercept",
    }),
    # the processor front end: the generator dispatch loop and its
    # compiled twin (integer-coded op chunks, DESIGN.md §13)
    "node/processor.py": frozenset({
        "Processor._run", "Processor._run_compiled",
    }),
}

#: builtins whose call allocates a container / sorted copy
ALLOC_CALLS: FrozenSet[str] = frozenset({
    "list", "dict", "set", "frozenset", "sorted", "bytearray", "deque",
    "defaultdict", "OrderedDict", "Counter",
})

#: AST display nodes that allocate (tuples deliberately excluded)
_ALLOC_NODES = (
    ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp,
    ast.GeneratorExp, ast.JoinedStr,
)


def _is_tracer_guard(test: ast.AST) -> bool:
    """``if tracer is not None:`` / ``if self._tracer is not None:`` /
    ``if trace_values:`` — observability is off in measured runs, so
    the guarded branch is cold by definition."""
    if isinstance(test, (ast.Name, ast.Attribute)):
        chain = dotted_name(test)
        return chain is not None and "trace" in chain.rsplit(".", 1)[-1]
    if not (isinstance(test, ast.Compare) and len(test.ops) == 1
            and isinstance(test.ops[0], ast.IsNot)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None):
        return False
    chain = dotted_name(test.left)
    return chain is not None and "tracer" in chain.rsplit(".", 1)[-1]


class _ClassIndex:
    """Slots status of every class defined in the scanned tree."""

    __slots__ = ("slotted", "exempt")

    def __init__(self, ctx: AnalysisContext) -> None:
        self.slotted: Set[str] = set()
        self.exempt: Set[str] = set()
        for module in ctx.modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                if self._is_exempt(node):
                    self.exempt.add(node.name)
                elif any(
                    isinstance(stmt, ast.Assign) and any(
                        isinstance(t, ast.Name) and t.id == "__slots__"
                        for t in stmt.targets
                    )
                    for stmt in node.body
                ):
                    self.slotted.add(node.name)
                else:
                    # defined somewhere without slots; a same-named
                    # slotted definition elsewhere must not mask it
                    self.slotted.discard(node.name)

    @staticmethod
    def _is_exempt(node: ast.ClassDef) -> bool:
        for base in node.bases:
            name = (dotted_name(base) or "").rsplit(".", 1)[-1]
            if name.endswith(("Enum", "Error", "Exception", "Flag")):
                return True
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            if (dotted_name(target) or "").startswith("dataclass"):
                return True
        return False

    def lacks_slots(self, name: str) -> bool:
        return name not in self.slotted and name not in self.exempt

    def is_class(self, name: str, ctx: AnalysisContext) -> bool:
        if name in self.slotted or name in self.exempt:
            return True
        for module in ctx.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef) and node.name == name:
                    return True
        return False


def _class_index(ctx: AnalysisContext) -> _ClassIndex:
    cached = ctx.cache.get("hotpath-classes")
    if isinstance(cached, _ClassIndex):
        return cached
    index = _ClassIndex(ctx)
    ctx.cache["hotpath-classes"] = index
    return index


class _HotScan(ast.NodeVisitor):
    """One walk of one hot function, skipping raise/tracer-guard regions."""

    def __init__(self, rel_path: str, qualname: str,
                 classes: _ClassIndex) -> None:
        self.rel_path = rel_path
        self.qualname = qualname
        self.classes = classes
        self.allocs: List[Tuple[int, str]] = []
        self.closures: List[Tuple[int, str]] = []
        self.noslots: List[Tuple[int, str]] = []
        #: maximal ≥2-hop attribute chains -> load sites
        self.chains: Dict[str, List[int]] = {}

    # -- region skips ---------------------------------------------------
    def visit_Raise(self, node: ast.Raise) -> None:
        pass  # error paths are cold: nothing inside a raise is scanned

    def visit_If(self, node: ast.If) -> None:
        if _is_tracer_guard(node.test):
            for stmt in node.orelse:
                self.visit(stmt)
            return
        self.generic_visit(node)

    # -- P-CLOSURE ------------------------------------------------------
    def visit_Lambda(self, node: ast.Lambda) -> None:
        self.closures.append((node.lineno, "lambda"))
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.closures.append((node.lineno, f"nested def {node.name}"))
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.closures.append((node.lineno, f"nested def {node.name}"))
        self.generic_visit(node)

    # -- P-ALLOC / P-NOSLOTS --------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name):
            name = node.func.id
            if name in ALLOC_CALLS:
                self.allocs.append((node.lineno, f"{name}(...) call"))
            elif name[:1].isupper() and self.classes.lacks_slots(name):
                self.noslots.append((node.lineno, name))
        self.generic_visit(node)

    def generic_visit(self, node: ast.AST) -> None:
        if isinstance(node, _ALLOC_NODES):
            label = type(node).__name__
            if isinstance(node, ast.JoinedStr):
                label = "f-string"
            self.allocs.append((node.lineno, f"{label} display"))
        super().generic_visit(node)

    # -- P-ATTR ---------------------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            chain = dotted_name(node)
            if chain is not None:
                if chain.count(".") >= 2:
                    self.chains.setdefault(chain, []).append(node.lineno)
                return  # a pure chain: do not re-count its sub-chains
        self.generic_visit(node)


def _iter_hot_functions(
    ctx: AnalysisContext,
) -> List[Tuple[str, str, ast.FunctionDef]]:
    """(rel_path, qualname, node) for every configured hot region found."""
    out: List[Tuple[str, str, ast.FunctionDef]] = []
    for rel_path in sorted(HOT_REGIONS):
        module = ctx.module(rel_path)
        if module is None:
            continue
        regions = HOT_REGIONS[rel_path]
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            for item in node.body:
                if (isinstance(item, ast.FunctionDef)
                        and f"{node.name}.{item.name}" in regions):
                    out.append((rel_path, f"{node.name}.{item.name}", item))
    return out


def _scan_all(ctx: AnalysisContext) -> List[Tuple[str, str, _HotScan]]:
    cached = ctx.cache.get("hotpath-scans")
    if isinstance(cached, list):
        return cached
    classes = _class_index(ctx)
    scans: List[Tuple[str, str, _HotScan]] = []
    for rel_path, qualname, fn_node in _iter_hot_functions(ctx):
        scan = _HotScan(rel_path, qualname, classes)
        for stmt in fn_node.body:
            scan.visit(stmt)
        scans.append((rel_path, qualname, scan))
    ctx.cache["hotpath-scans"] = scans
    return scans


class HotAllocRule(Rule):
    id = "P-ALLOC"
    title = "no allocations inside inlined hot regions"

    def run(self, ctx: AnalysisContext) -> List[Finding]:
        findings: List[Finding] = []
        for rel_path, qualname, scan in _scan_all(ctx):
            for line, what in scan.allocs:
                findings.append(Finding(
                    "P-ALLOC", rel_path, line,
                    f"{what} in hot region {qualname} — hoist it out "
                    f"of the per-event path or pool it",
                ))
        return findings


class HotClosureRule(Rule):
    id = "P-CLOSURE"
    title = "no closure creation inside inlined hot regions"

    def run(self, ctx: AnalysisContext) -> List[Finding]:
        findings: List[Finding] = []
        for rel_path, qualname, scan in _scan_all(ctx):
            for line, what in scan.closures:
                findings.append(Finding(
                    "P-CLOSURE", rel_path, line,
                    f"{what} in hot region {qualname} — pass the bound "
                    f"method and arguments closure-free instead",
                ))
        return findings


class HotAttrRule(Rule):
    id = "P-ATTR"
    title = "no repeated attribute-chain lookups inside hot regions"

    def run(self, ctx: AnalysisContext) -> List[Finding]:
        findings: List[Finding] = []
        for rel_path, qualname, scan in _scan_all(ctx):
            for chain in sorted(scan.chains):
                lines = scan.chains[chain]
                if len(lines) >= 2:
                    findings.append(Finding(
                        "P-ATTR", rel_path, lines[1],
                        f"attribute chain {chain!r} loaded "
                        f"{len(lines)}x in hot region {qualname} — "
                        f"hoist it to a local",
                    ))
        return findings


class HotNoSlotsRule(Rule):
    id = "P-NOSLOTS"
    title = "hot regions only instantiate __slots__ classes"

    def run(self, ctx: AnalysisContext) -> List[Finding]:
        classes = _class_index(ctx)
        findings: List[Finding] = []
        for rel_path, qualname, scan in _scan_all(ctx):
            for line, name in scan.noslots:
                if classes.is_class(name, ctx):
                    findings.append(Finding(
                        "P-NOSLOTS", rel_path, line,
                        f"instantiating {name} (no __slots__) in hot "
                        f"region {qualname} — give it __slots__ or "
                        f"build it off the hot path",
                    ))
        return findings


register(HotAllocRule())
register(HotClosureRule())
register(HotAttrRule())
register(HotNoSlotsRule())
