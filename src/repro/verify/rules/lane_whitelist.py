"""Intentionally cyclic / non-monotonic protocol-flow edges.

The lane rules (:mod:`repro.verify.rules.lanes`) demand that handling a
message only ever generates messages on a strictly *later* lane
(request < forward < reply) — the classic sufficient condition for
deadlock freedom in a CC-NUMA fabric.  The edges below are deliberate
exceptions; every entry must say why the edge cannot contribute to a
buffer-dependency deadlock.  Anything not listed here fails C-SAMELANE /
C-BACKWARD / C-CYCLE.

Audit trail for the PR 2 race-fix edges (the DIR_UPDATE/corrective-INV
family) requested by ISSUE 7:

* ``DIR_UPDATE -> INV`` (corrective invalidation on a stale switch
  serve) is request -> forward, i.e. strictly *increasing* lane order —
  it needs **no** whitelist entry and gets none, so any refactor that
  turns it into a reply-lane dependency will fail the gate.
* ``READ -> DIR_UPDATE`` (the intercepted worm continuing to the home)
  is the one same-lane edge the race fix relies on; its justification
  is below.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: (source kind, generated kind) -> justification.  Keep justifications
#: to one line; they are echoed by ``flowcheck --list-whitelist``.
WHITELIST: Dict[Tuple[str, str], str] = {
    # -- switch-cache interception (PR 2 race-fix family) --------------
    ("READ", "DIR_UPDATE"):
        "same-lane request->request: the intercepted READ worm itself "
        "continues as the 1-flit DIR_UPDATE on the same path — no new "
        "injection, the worm strictly shrinks, so it consumes no "
        "additional request-lane buffering",
    # -- ack/recall completion fan-in (reply -> reply) -----------------
    ("INV_ACK", "UPGR_ACK"):
        "reply->reply: each INV_ACK decrements acks_needed and only the "
        "final ack emits the UPGR_ACK that closes the transaction — "
        "bounded by the sharer count, no reply-lane cycle can sustain",
    ("INV_ACK", "DATA_X"):
        "reply->reply: same final-ack completion as UPGR_ACK but for a "
        "write miss; one DATA_X per transaction, strictly consuming",
    ("RECALL_REPLY", "DATA_S"):
        "reply->reply: exactly one recall is outstanding per "
        "transaction; its reply releases the single buffered DATA_S",
    ("RECALL_REPLY", "DATA_X"):
        "reply->reply: ownership-recall completion, one DATA_X per "
        "transaction",
    ("RECALL_REPLY", "UPGR_ACK"):
        "reply->reply: an upgrade that found the line modified recalls "
        "first; the recall reply releases the single UPGR_ACK",
    # -- eviction spill on reply fill (reply -> request, backward) -----
    ("DATA_S", "WRITEBACK"):
        "reply->request backward: filling a reply may evict a dirty "
        "victim whose WRITEBACK is fire-and-forget through the NI send "
        "buffer — consuming the reply never blocks on the spill",
    ("DATA_X", "WRITEBACK"):
        "reply->request backward: same eviction spill as DATA_S, for "
        "exclusive fills",
    ("DATA_E", "WRITEBACK"):
        "reply->request backward: same eviction spill as DATA_S, for "
        "MESI clean-exclusive fills",
}
