"""Lane-dependency rules: static deadlock-freedom over the flow graph.

Every :class:`MsgKind` is assigned a virtual *lane* — request (0),
forward (1), or reply (2) — mirroring the virtual-channel classes a
CC-NUMA fabric needs for protocol-level deadlock freedom.  The
sufficient condition checked here is the classic one: **handling a
message on lane L may only generate messages on lanes > L**.  If every
edge is strictly increasing, a full reply buffer can always drain
without waiting on requests, so no buffer-dependency cycle exists.

* **C-NOLANE** — a declared kind missing from the lane table (the table
  must stay total or the other rules silently skip edges).
* **C-SAMELANE** — a handler generates a message on its own lane.
* **C-BACKWARD** — a handler generates a message on an *earlier* lane
  (reply -> request is the textbook deadlock ingredient).
* **C-CYCLE** — a cycle in the kind-dependency graph after whitelisted
  edges are removed (strongly connected component of size > 1, or a
  self-loop).

Intentional exceptions (NACK/retry-style edges, the switch-cache
DIR_UPDATE continuation) live in
:mod:`repro.verify.rules.lane_whitelist`, each with a one-line
justification; whitelisted edges are excluded from all three checks.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..framework import AnalysisContext, Finding, Rule, register
from .flowgraph import FlowGraph, build_flowgraph
from .lane_whitelist import WHITELIST

#: lane priorities: handling lane L may only generate lanes > L
LANE_ORDER: Dict[str, int] = {"request": 0, "forward": 1, "reply": 2}

#: the total kind -> lane assignment (C-NOLANE keeps it total)
LANE_BY_KIND: Dict[str, str] = {
    "READ": "request",
    "READX": "request",
    "UPGRADE": "request",
    "WRITEBACK": "request",
    "DIR_UPDATE": "request",
    "INV": "forward",
    "RECALL": "forward",
    "RECALL_X": "forward",
    "DATA_S": "reply",
    "DATA_X": "reply",
    "DATA_E": "reply",
    "UPGR_ACK": "reply",
    "INV_ACK": "reply",
    "RECALL_REPLY": "reply",
    "WB_ACK": "reply",
}


def _checked_edges(
    graph: FlowGraph,
) -> List[Tuple[str, str, Tuple[str, int]]]:
    """Non-whitelisted edges with lanes assigned, in kind-code order."""
    order = {kind: i for i, kind in enumerate(graph.kinds)}
    edges = [
        (src, dst, site)
        for (src, dst), site in graph.edges.items()
        if (src, dst) not in WHITELIST
        and src in LANE_BY_KIND and dst in LANE_BY_KIND
    ]
    edges.sort(key=lambda e: (order.get(e[0], 99), order.get(e[1], 99)))
    return edges


class UnknownLaneRule(Rule):
    id = "C-NOLANE"
    title = "every declared MsgKind has a lane assignment"

    def run(self, ctx: AnalysisContext) -> List[Finding]:
        graph = build_flowgraph(ctx)
        return [
            Finding(
                "C-NOLANE", graph.enum_path, graph.kind_lines[kind],
                f"MsgKind.{kind} has no lane assignment in "
                f"LANE_BY_KIND (verify/rules/lanes.py) — the "
                f"deadlock-freedom rules cannot classify its edges",
            )
            for kind in graph.kinds
            if kind not in LANE_BY_KIND
        ]


class SameLaneRule(Rule):
    id = "C-SAMELANE"
    title = "handlers only generate messages on later lanes (no same-lane)"

    def run(self, ctx: AnalysisContext) -> List[Finding]:
        graph = build_flowgraph(ctx)
        findings: List[Finding] = []
        for src, dst, (path, line) in _checked_edges(graph):
            src_lane = LANE_BY_KIND[src]
            if src_lane == LANE_BY_KIND[dst]:
                findings.append(Finding(
                    "C-SAMELANE", path, line,
                    f"handling MsgKind.{src} generates MsgKind.{dst} on "
                    f"the same {src_lane} lane — whitelist the edge "
                    f"with a justification or move one kind to another "
                    f"lane",
                ))
        return findings


class BackwardLaneRule(Rule):
    id = "C-BACKWARD"
    title = "handlers never generate messages on earlier lanes"

    def run(self, ctx: AnalysisContext) -> List[Finding]:
        graph = build_flowgraph(ctx)
        findings: List[Finding] = []
        for src, dst, (path, line) in _checked_edges(graph):
            src_lane, dst_lane = LANE_BY_KIND[src], LANE_BY_KIND[dst]
            if LANE_ORDER[dst_lane] < LANE_ORDER[src_lane]:
                findings.append(Finding(
                    "C-BACKWARD", path, line,
                    f"handling MsgKind.{src} ({src_lane} lane) "
                    f"generates MsgKind.{dst} ({dst_lane} lane) — a "
                    f"backward lane dependency, the classic CC-NUMA "
                    f"deadlock ingredient",
                ))
        return findings


class LaneCycleRule(Rule):
    id = "C-CYCLE"
    title = "the kind-dependency graph is acyclic outside the whitelist"

    def run(self, ctx: AnalysisContext) -> List[Finding]:
        graph = build_flowgraph(ctx)
        adjacency: Dict[str, List[str]] = {}
        sites: Dict[Tuple[str, str], Tuple[str, int]] = {}
        for src, dst, site in _checked_edges(graph):
            adjacency.setdefault(src, []).append(dst)
            sites[(src, dst)] = site
        findings: List[Finding] = []
        for cycle in _cycles(graph.kinds, adjacency):
            first_edge = (cycle[0], cycle[1 % len(cycle)])
            path, line = sites.get(first_edge, (graph.enum_path, 0))
            loop = " -> ".join(cycle + [cycle[0]])
            findings.append(Finding(
                "C-CYCLE", path, line,
                f"message-dependency cycle {loop}: a full buffer on "
                f"any kind in the cycle can block its own drain — "
                f"break the cycle or whitelist every edge with a "
                f"justification",
            ))
        return findings


def _cycles(
    kinds: List[str], adjacency: Dict[str, List[str]]
) -> List[List[str]]:
    """Cyclic strongly connected components (Tarjan, deterministic)."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    out: List[List[str]] = []

    def strongconnect(node: str) -> None:
        index[node] = lowlink[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for succ in adjacency.get(node, []):
            if succ not in index:
                strongconnect(succ)
                lowlink[node] = min(lowlink[node], lowlink[succ])
            elif succ in on_stack:
                lowlink[node] = min(lowlink[node], index[succ])
        if lowlink[node] == index[node]:
            component: List[str] = []
            while True:
                popped = stack.pop()
                on_stack.discard(popped)
                component.append(popped)
                if popped == node:
                    break
            component.reverse()
            if (len(component) > 1
                    or component[0] in adjacency.get(component[0], [])):
                out.append(component)

    for kind in kinds:
        if kind in adjacency and kind not in index:
            strongconnect(kind)
    return out


register(UnknownLaneRule())
register(SameLaneRule())
register(BackwardLaneRule())
register(LaneCycleRule())
