"""Handler-exhaustiveness rules over the extracted message-flow graph.

* **F-UNHANDLED** — a kind is sent somewhere, but the dispatch path it
  would take has no arm for it.  With per-node routers (``_dispatch``)
  present, each sent kind is pushed through every router: the first arm
  whose guard covers the kind decides where it lands (a forwarded
  ``<recv>.receive(...)`` target must have an arm for it; a local
  ``self._on_x`` arm counts as handled; a raising else rejects it).
  Without routers, any receiver arm anywhere suffices.
* **F-ORPHAN** — a kind has a handler arm but is never sent: the arm is
  unreachable protocol surface (usually a leftover from a removed
  transition).
* **F-DEAD** — a kind is declared in ``MsgKind`` but neither sent nor
  handled.  Declared-but-unused kinds keep the header type space honest;
  intentional placeholders carry a ``# repro: allow[F-DEAD]``.
* **F-NOELSE** — a terminal ``receive`` dispatcher whose guard chain can
  fall through silently (no else arm, or an else that does not raise):
  an unexpected worm must fail loudly, not vanish.
"""

from __future__ import annotations

from typing import List, Optional

from ..framework import AnalysisContext, Finding, Rule, register
from .flowgraph import (
    RECEIVER_ATTRS,
    FlowGraph,
    FuncInfo,
    Site,
    build_flowgraph,
)


def _route_findings(
    graph: FlowGraph, router: FuncInfo, kind: str
) -> List[Finding]:
    """Findings for one sent kind pushed through one router."""
    for arm in router.arms:
        if arm.kinds is not None and kind not in arm.kinds:
            continue
        # the first arm whose guard covers the kind (or the else arm)
        # decides, mirroring the runtime elif chain
        if arm.router_targets:
            findings: List[Finding] = []
            for attr, _line in arm.router_targets:
                cls = RECEIVER_ATTRS.get(attr)
                receiver = graph.receivers.get(cls) if cls is not None else None
                if receiver is None:
                    continue  # unverifiable target: assume handled
                fn, arm_kinds = receiver
                if kind not in arm_kinds:
                    findings.append(Finding(
                        "F-UNHANDLED", fn.rel_path, fn.lineno,
                        f"MsgKind.{kind} is sent and routed to "
                        f"{fn.qualname} by {router.qualname}, but no "
                        f"arm handles it",
                    ))
            return findings
        if arm.calls or arm.sends:
            return []  # handled locally by the router's own arm
        if arm.kinds is None and arm.raises:
            return [Finding(
                "F-UNHANDLED", router.rel_path, router.lineno,
                f"MsgKind.{kind} is sent but {router.qualname} rejects "
                f"it (falls into the raising else arm)",
            )]
        return []
    return [Finding(
        "F-UNHANDLED", router.rel_path, router.lineno,
        f"MsgKind.{kind} is sent but no arm of {router.qualname} "
        f"covers it",
    )]


class UnhandledKindRule(Rule):
    id = "F-UNHANDLED"
    title = "every sent MsgKind reaches a handler arm"

    def run(self, ctx: AnalysisContext) -> List[Finding]:
        graph = build_flowgraph(ctx)
        if not graph.kinds:
            return []
        handled = graph.handled_kinds()
        findings: List[Finding] = []
        for kind in graph.kinds:
            sites = graph.sends.get(kind)
            if not sites:
                continue
            if graph.routers:
                for router in graph.routers:
                    findings.extend(_route_findings(graph, router, kind))
            elif kind not in handled:
                path, line = sites[0]
                findings.append(Finding(
                    "F-UNHANDLED", path, line,
                    f"MsgKind.{kind} is sent but no receiver arm "
                    f"handles it",
                ))
        return findings


class OrphanKindRule(Rule):
    id = "F-ORPHAN"
    title = "every handled MsgKind is actually sent"

    def run(self, ctx: AnalysisContext) -> List[Finding]:
        graph = build_flowgraph(ctx)
        findings: List[Finding] = []
        for kind in graph.kinds:
            if kind in graph.sends:
                continue
            site: Optional[Site] = graph.handled_kinds().get(kind)
            if site is not None:
                path, line = site
                findings.append(Finding(
                    "F-ORPHAN", path, line,
                    f"MsgKind.{kind} has a handler arm but is never "
                    f"sent (dead protocol surface)",
                ))
        return findings


class DeadKindRule(Rule):
    id = "F-DEAD"
    title = "every declared MsgKind is sent or handled"

    def run(self, ctx: AnalysisContext) -> List[Finding]:
        graph = build_flowgraph(ctx)
        handled = graph.handled_kinds()
        findings: List[Finding] = []
        for kind in graph.kinds:
            if kind in graph.sends or kind in handled:
                continue
            findings.append(Finding(
                "F-DEAD", graph.enum_path, graph.kind_lines[kind],
                f"MsgKind.{kind} is declared but never sent nor "
                f"handled",
            ))
        return findings


class NoElseRule(Rule):
    id = "F-NOELSE"
    title = "terminal receive dispatchers reject unknown kinds loudly"

    def run(self, ctx: AnalysisContext) -> List[Finding]:
        graph = build_flowgraph(ctx)
        findings: List[Finding] = []
        for _cls, (fn, _arm_kinds) in sorted(graph.receivers.items()):
            else_arms = [a for a in fn.arms if a.kinds is None]
            if not else_arms:
                findings.append(Finding(
                    "F-NOELSE", fn.rel_path, fn.lineno,
                    f"{fn.qualname} has no else arm: an unexpected "
                    f"kind would be dropped silently",
                ))
            elif not any(a.raises for a in else_arms):
                findings.append(Finding(
                    "F-NOELSE", fn.rel_path, fn.lineno,
                    f"{fn.qualname}'s else arm does not raise: an "
                    f"unexpected kind would be consumed silently",
                ))
        return findings


register(UnhandledKindRule())
register(OrphanKindRule())
register(DeadKindRule())
register(NoElseRule())
