"""SCSan: opt-in runtime invariant layer for live simulations.

The model checker (:mod:`repro.verify.modelcheck`) proves the protocol
sound on a small abstract configuration; SCSan re-checks the same
invariants on the *real* component models while a full simulation runs,
plus the kernel-level properties the abstraction cannot see:

* **SWMR** — after every message delivery, at most one processor stack
  holds an owned (MODIFIED/EXCLUSIVE) copy of the delivered block, and
  no switch-cache copy runs ahead of the home directory's image.
* **Flit conservation** — every worm injected into (or fabricated
  inside) the fabric is delivered exactly once; nothing is dropped or
  duplicated.  Checked with a ledger keyed on message identity.
* **Engine integrity** — event times never move the clock backwards and
  the O(1) live-event counter (``Simulator.pending``) periodically
  agrees with an O(n) recount of the queue.
* **Drain-before-release** — a processor arriving at a barrier or
  releasing a lock must have an empty write buffer (the fence semantics
  :mod:`repro.node.processor` promises).
* **Final audit** — at end of run the ledger is empty, write buffers
  are empty, and the whole-system coherence audit
  (:meth:`~repro.system.machine.Machine.check_coherence`) is clean.

Enable with ``Machine(config, sanitize=True)``, ``--sanitize`` on the
``repro-sim``/``repro-experiments`` CLIs, or ``REPRO_SANITIZE=1`` in the
environment (the pytest hook).  Violations raise
:class:`~repro.errors.SanitizerError` at the detection point, so the
offending event is at the top of the traceback.

The fabric ledger covers the message-granularity :class:`Fabric`; the
flit-granularity reference model (``network_model="flit"``) runs with
the coherence, engine, and sync checks only.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import SanitizerError
from ..network.fabric import Fabric
from ..network.message import Message
from ..sim.engine import Event, Simulator

#: fired events between O(n) engine queue audits
AUDIT_PERIOD = 2048


class Sanitizer:
    """Shared state for one machine's runtime checks.

    One instance is threaded through the sanitized engine, the sanitized
    fabric, and the wrappers installed on the machine's NIs and sync
    managers.  ``violations`` keeps everything detected (for reporting);
    detection also raises immediately so the failing event is on the
    stack.
    """

    def __init__(self) -> None:
        self.violations: List[str] = []
        self.events_checked = 0
        self.deliveries_checked = 0
        self.sync_checks = 0
        self._machine = None

    # ------------------------------------------------------------------
    # violation sink
    # ------------------------------------------------------------------
    def violation(self, kind: str, message: str) -> None:
        report = f"[{kind}] {message}"
        self.violations.append(report)
        raise SanitizerError(f"SCSan: {report}")

    # ------------------------------------------------------------------
    # machine hookup
    # ------------------------------------------------------------------
    def attach_machine(self, machine) -> None:
        """Install delivery and sync wrappers on a fully built machine."""
        self._machine = machine
        for node in machine.nodes:
            self._wrap_dispatch(node)
        self._wrap_sync(machine)

    def _wrap_dispatch(self, node) -> None:
        original = node.ni._dispatch
        if original is None:  # pragma: no cover - nodes attach in __init__
            return

        def checked(msg: Message, _orig=original) -> None:
            _orig(msg)
            self.deliveries_checked += 1
            self.check_block(msg.addr)

        node.ni._dispatch = checked

    def _wrap_sync(self, machine) -> None:
        stacks = {stack.proc_id: stack for stack in machine.stacks()}

        def require_drained(proc_id: int, action: str) -> None:
            self.sync_checks += 1
            stack = stacks.get(proc_id)
            if stack is not None and not stack.write_buffer.is_empty():
                blocks = ", ".join(
                    f"{b:#x}" for b in sorted(stack.write_buffer.pending_blocks())
                )
                self.violation(
                    "sync",
                    f"proc {proc_id} {action} with non-empty write buffer "
                    f"({blocks})",
                )

        barrier_arrive = machine.barriers.arrive

        def arrive(barrier_id: int, node_id: int, resume,
                   _orig=barrier_arrive) -> None:
            require_drained(node_id, f"arrived at barrier {barrier_id}")
            _orig(barrier_id, node_id, resume)

        machine.barriers.arrive = arrive

        lock_release = machine.locks.release

        def release(lock_id: int, node_id: int, _orig=lock_release) -> None:
            require_drained(node_id, f"released lock {lock_id}")
            _orig(lock_id, node_id)

        machine.locks.release = release

    # ------------------------------------------------------------------
    # per-delivery block check
    # ------------------------------------------------------------------
    def check_block(self, addr: int) -> None:
        """SWMR + switch-copy freshness for one block, valid mid-flight."""
        machine = self._machine
        bs = machine.config.block_size
        block = (addr // bs) * bs
        owners = []
        for node in machine.nodes:
            for stack in node.stacks:
                line = stack.hierarchy.l2.probe(block)
                if line is not None and line.state.owned():
                    owners.append(stack.proc_id)
        if len(owners) > 1:
            self.violation(
                "swmr",
                f"block {block:#x}: owned copies at procs {owners}",
            )
        # a switch-cache copy is deposited from a DATA_S carrying the home
        # image, so it may lag the directory (a purge INV is in flight)
        # but must never run ahead of it
        home = machine.nodes[machine.space.home_of(block)]
        entry = home.directory.peek(block)
        if entry is None:
            return
        for switch in machine.fabric.switches.values():
            engine = switch.cache_engine
            if engine is None:
                continue
            line = engine.array.probe(block)
            if line is not None and line.data > entry.version:
                self.violation(
                    "switch",
                    f"block {block:#x}: switch {switch.id} copy "
                    f"v{line.data} ahead of home image v{entry.version}",
                )

    # ------------------------------------------------------------------
    # end-of-run audit
    # ------------------------------------------------------------------
    def final_check(self, machine) -> None:
        """Ledger, write-buffer, engine, and coherence audit at quiescence."""
        problems: List[str] = []
        fabric = machine.fabric
        if isinstance(fabric, SanitizedFabric):
            for msg in fabric.in_flight():
                problems.append(
                    f"[fabric] {msg.kind.name} for {msg.addr:#x} "
                    f"({msg.src}->{msg.dst}, {msg.flits} flits) never delivered"
                )
        for stack in machine.stacks():
            if not stack.write_buffer.is_empty():
                problems.append(
                    f"[sync] proc {stack.proc_id} finished with a non-empty "
                    f"write buffer"
                )
        sim = machine.sim
        if isinstance(sim, SanitizedSimulator):
            drift = sim.counter_drift()
            if drift is not None:
                problems.append(f"[engine] {drift}")
        problems.extend(
            f"[coherence] {problem}" for problem in machine.check_coherence()
        )
        if problems:
            self.violations.extend(problems)
            raise SanitizerError(
                "SCSan: end-of-run audit failed:\n  " + "\n  ".join(problems)
            )


class SanitizedSimulator(Simulator):
    """Engine overlay: monotonic clock + periodic live-counter audits.

    Re-implements the run loops in terms of a checked single step.  The
    base class inlines these loops for speed; the sanitized variant
    trades that for a check per event, preserving the exact pop/drop
    semantics of :meth:`Simulator.run` (``until=None`` stops at a
    beyond-horizon head, ``until=X`` drops beyond-horizon events and
    pushes back the first event beyond ``until``).
    """

    def __init__(self, sanitizer: Sanitizer,
                 horizon: Optional[int] = None) -> None:
        super().__init__(horizon)
        self._san = sanitizer

    # -- checked firing -------------------------------------------------
    def _fire(self, event: Event) -> None:
        san = self._san
        if event.time < self.now:
            san.violation(
                "engine",
                f"event t={event.time} would move the clock backwards "
                f"from {self.now}",
            )
        self.now = event.time
        self._events_fired += 1
        san.events_checked += 1
        if san.events_checked % AUDIT_PERIOD == 0:
            self.audit()
        event.callback(*event.args)

    def audit(self) -> None:
        """O(n) recount of live events vs the O(1) ``pending`` counter."""
        drift = self.counter_drift()
        if drift is not None:
            self._san.violation("engine", drift)

    def counter_drift(self) -> Optional[str]:
        live = sum(1 for event in self._queue if not event.cancelled)
        if live != self.pending:
            return (
                f"live-event counter drift: pending={self.pending} "
                f"but {live} live events queued"
            )
        return None

    # -- run loops (same external semantics as the base class) ----------
    # These go through the engine-agnostic queue interface (push/pop/
    # iterate), so the sanitizer works identically over the calendar
    # queue and the reference heap.  Events are deliberately never
    # recycled here: a stale free-list reuse would be exactly the kind
    # of bug SCSan exists to catch, so the sanitized engine keeps every
    # fired event distinct.
    def step(self) -> bool:
        queue = self._queue
        while True:
            event = queue.pop()
            if event is None:
                return False
            event._sim = None
            if event.cancelled:
                self._cancelled_queued -= 1
                continue
            if self.horizon is not None and event.time > self.horizon:
                return False
            self._fire(event)
            return True

    def run(self, until: Optional[int] = None) -> int:
        if until is None:
            while self.step():
                pass
            return self.now
        queue = self._queue
        while True:
            event = queue.pop()
            if event is None:
                break
            if event.cancelled:
                event._sim = None
                self._cancelled_queued -= 1
                continue
            if event.time > until:
                queue.push(event)  # not ours to fire
                break
            event._sim = None
            if self.horizon is not None and event.time > self.horizon:
                continue  # beyond the horizon: drop, as the base run() does
            self._fire(event)
        self.now = max(self.now, until)
        return self.now

    def run_while(self, predicate: Callable[[], bool]) -> int:
        while predicate() and self.step():
            pass
        return self.now


class SanitizedFabric(Fabric):
    """Fabric overlay: a conservation ledger over every worm.

    A worm is registered when it enters the fabric — through
    :meth:`inject`, or at first :meth:`_forward` for replies the
    switch-cache service fabricates mid-network — and must be delivered
    exactly once.  The ledger holds strong references, so ``id(msg)``
    cannot be reused while an entry is outstanding.
    """

    def __init__(self, sanitizer: Sanitizer, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._san = sanitizer
        self._ledger: Dict[int, Message] = {}
        # the base fabric records the per-hop route trace only when a
        # tracer is attached; sanitized runs force it on so violation
        # reports and the end-of-run audit can show where a worm has been
        self._record_route = True

    def in_flight(self) -> List[Message]:
        return list(self._ledger.values())

    def inject(self, msg: Message) -> None:
        if id(msg) in self._ledger:
            self._san.violation(
                "fabric",
                f"{msg.kind.name} for {msg.addr:#x} ({msg.src}->{msg.dst}) "
                f"injected while already in flight",
            )
        self._ledger[id(msg)] = msg
        super().inject(msg)

    def _forward(self, msg: Message, hop: int, header_at: int) -> None:
        # fabricated switch replies enter the network here, not via inject
        self._ledger.setdefault(id(msg), msg)
        super()._forward(msg, hop, header_at)

    def _deliver(self, msg: Message) -> None:
        if self._ledger.pop(id(msg), None) is None:
            self._san.violation(
                "fabric",
                f"{msg.kind.name} for {msg.addr:#x} ({msg.src}->{msg.dst}) "
                f"delivered twice or never injected",
            )
        super()._deliver(msg)
