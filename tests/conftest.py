"""Shared test fixtures and helpers."""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence

import pytest

from repro.apps.base import Application, Op
from repro.system.config import SystemConfig
from repro.system.machine import Machine


class ScriptedApp(Application):
    """An application defined by explicit per-processor op lists.

    The workhorse of the protocol tests: lets a test drive exact access
    interleavings (reads, writes, barriers) per processor.  Addresses may
    be given symbolically as ``("blk", i)`` pairs, resolved at setup time
    against blocks allocated with the requested placement.
    """

    name = "scripted"

    def __init__(
        self,
        scripts: Dict[int, Sequence[Op]],
        blocks: int = 8,
        home: int = None,
        interleave: bool = True,
    ) -> None:
        self.scripts = scripts
        self.n_blocks = blocks
        self.home = home
        self.interleave = interleave if home is None else False
        self.block_addrs: List[int] = []

    def setup(self, machine) -> None:
        block = machine.config.block_size
        base = machine.space.alloc(
            self.n_blocks * block, home=self.home, interleave=self.interleave
        )
        self.block_addrs = [base + i * block for i in range(self.n_blocks)]

    def _resolve(self, op: Op) -> Op:
        if len(op) >= 2 and isinstance(op[1], tuple) and op[1][0] == "blk":
            return (op[0], self.block_addrs[op[1][1]]) + tuple(op[2:])
        return op

    def ops(self, proc_id: int, machine) -> Iterator[Op]:
        for op in self.scripts.get(proc_id, ()):
            yield self._resolve(op)


def tiny_config(**overrides) -> SystemConfig:
    """A 4-node machine with small caches (fast protocol tests)."""
    defaults = dict(
        num_nodes=4,
        l1_size=1024,
        l2_size=4096,
        quantum=100,
        trace_values=True,
    )
    defaults.update(overrides)
    return SystemConfig(**defaults)


def run_scripted(
    scripts: Dict[int, Sequence[Op]],
    config: SystemConfig = None,
    **app_kwargs,
):
    """Run a ScriptedApp; returns (machine, stats)."""
    config = config if config is not None else tiny_config()
    machine = Machine(config)
    stats = machine.run(ScriptedApp(scripts, **app_kwargs))
    return machine, stats


def all_barrier(procs: int, bid: int) -> Dict[int, List[Op]]:
    return {p: [("barrier", bid)] for p in range(procs)}


def assert_coherent(machine: Machine) -> None:
    problems = machine.check_coherence()
    assert problems == [], problems


def assert_monotonic_reads(machine: Machine) -> None:
    """Per (processor, block), observed versions never go backward."""
    for node in machine.stacks():
        last: Dict[int, int] = {}
        block = machine.config.block_size
        for _op, addr, version, _time in node.processor.value_trace:
            key = (addr // block) * block
            if version is None:
                continue
            previous = last.get(key, -1)
            assert version >= previous, (
                f"proc {node.node_id} read v{version} after v{previous} "
                f"at block {key:#x}"
            )
            last[key] = version


@pytest.fixture
def machine4() -> Machine:
    return Machine(tiny_config())
