"""Fixture: WB_ACK is declared but never sent nor handled (F-DEAD)."""


class MsgKind:
    READ = "read"
    DATA_S = "data_s"
    WB_ACK = "wb_ack"


class HomeController:
    def receive(self, msg):
        if msg.kind == MsgKind.READ:
            self.send(MsgKind.DATA_S, msg.src)
        else:
            raise ValueError(msg)


class NodeController:
    def receive(self, msg):
        if msg.kind == MsgKind.DATA_S:
            self.fill(msg)
        else:
            raise ValueError(msg)

    def fill(self, msg):
        self.count += 1


def boot(home):
    home.send(MsgKind.READ, 0)
