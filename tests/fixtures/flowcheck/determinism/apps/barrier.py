"""Fixture: a salted-hash-derived identifier in a kernel package (N)."""


class Sequencer:
    def __init__(self, name):
        self.base = hash(name) % 1000
