"""Fixture: a Set-typed sharer field in a coherence module (B)."""

from typing import Set


class Directory:
    sharers: Set[int]
