"""Fixture: bare-set iteration in an order-sensitive module (S)."""


def fanout(sharers):
    order = []
    for node in set(sharers):
        order.append(node)
    return order
