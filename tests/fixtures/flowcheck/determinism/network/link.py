"""Fixture: a hot-module class without __slots__ (H)."""


class Link:
    def __init__(self):
        self.busy_until = 0
