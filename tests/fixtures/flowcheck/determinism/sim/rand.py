"""Fixture: unseeded global randomness in a kernel module (R)."""

import random


def pick(items):
    return random.choice(items)
