"""Fixture: a lambda scheduled through the event engine (L)."""


class Retimer:
    __slots__ = ("sim",)

    def go(self):
        self.sim.call(5, lambda: 0)
