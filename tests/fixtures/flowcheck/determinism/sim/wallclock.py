"""Fixture: wall-clock use in a kernel module (W, twice: import + call)."""

import time


def stamp():
    return time.time()
