"""Fixture: a list display inside a hot region (P-ALLOC)."""


class Simulator:
    __slots__ = ("_queue",)

    def step(self):
        pending = [self._queue]
        return pending
