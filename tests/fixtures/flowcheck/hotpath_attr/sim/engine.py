"""Fixture: the same 2-hop attribute chain loaded twice (P-ATTR)."""


class Simulator:
    __slots__ = ("clock",)

    def step(self):
        first = self.clock.now
        second = self.clock.now
        return first + second
