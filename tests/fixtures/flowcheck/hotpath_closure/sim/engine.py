"""Fixture: a nested def inside a hot region (P-CLOSURE)."""


class Simulator:
    __slots__ = ("_queue",)

    def run(self):
        def tick():
            return 0
        return tick
