"""Fixture: instantiating a slot-less class in a hot region (P-NOSLOTS)."""

from sim.types import Event


class Simulator:
    __slots__ = ()

    def _recycle(self):
        return Event()
