"""Fixture support: a class without __slots__ (outside the hot modules)."""


class Event:
    def __init__(self):
        self.fn = None
