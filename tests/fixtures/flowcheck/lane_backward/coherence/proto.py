"""Fixture: a DATA_S handler generates READ, reply -> request (C-BACKWARD).

The backward edge also closes READ -> DATA_S -> READ, so C-CYCLE fires
on the same component.
"""


class MsgKind:
    READ = "read"
    DATA_S = "data_s"


class HomeController:
    def receive(self, msg):
        if msg.kind == MsgKind.READ:
            self.send(MsgKind.DATA_S, msg.src)
        else:
            raise ValueError(msg)


class NodeController:
    def receive(self, msg):
        if msg.kind == MsgKind.DATA_S:
            self.send(MsgKind.READ, 0)
        else:
            raise ValueError(msg)


def boot(home):
    home.send(MsgKind.READ, 0)
