"""Fixture: READ -> READX -> READ message-dependency cycle (C-CYCLE).

Both edges are request->request, so C-SAMELANE fires on each edge and
C-CYCLE on the strongly connected component they form.
"""


class MsgKind:
    READ = "read"
    READX = "readx"


class HomeController:
    def receive(self, msg):
        if msg.kind == MsgKind.READ:
            self.send(MsgKind.READX, msg.src)
        elif msg.kind == MsgKind.READX:
            self.send(MsgKind.READ, msg.src)
        else:
            raise ValueError(msg)


def boot(home):
    home.send(MsgKind.READ, 0)
