"""Fixture: PING has no entry in LANE_BY_KIND (C-NOLANE)."""


class MsgKind:
    PING = "ping"


class HomeController:
    def receive(self, msg):
        if msg.kind == MsgKind.PING:
            self.note(msg)
        else:
            raise ValueError(msg)

    def note(self, msg):
        self.count += 1


def boot(home):
    home.send(MsgKind.PING, 0)
