"""Fixture: DATA_S is sent but no receiver arm handles it (F-UNHANDLED)."""


class MsgKind:
    READ = "read"
    DATA_S = "data_s"


class HomeController:
    def receive(self, msg):
        if msg.kind == MsgKind.READ:
            self.reply(msg)
        else:
            raise ValueError(msg)

    def reply(self, msg):
        self.send(MsgKind.DATA_S, msg.src)


def boot(home):
    home.send(MsgKind.READ, 0)
