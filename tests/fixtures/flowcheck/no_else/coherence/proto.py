"""Fixture: a receiver whose guard chain can fall through (F-NOELSE)."""


class MsgKind:
    READ = "read"


class HomeController:
    def receive(self, msg):
        if msg.kind == MsgKind.READ:
            self.note(msg)

    def note(self, msg):
        self.count += 1


def boot(home):
    home.send(MsgKind.READ, 0)
