"""Fixture: WB_ACK has a handler arm but is never sent (F-ORPHAN)."""


class MsgKind:
    READ = "read"
    DATA_S = "data_s"
    WB_ACK = "wb_ack"


class HomeController:
    def receive(self, msg):
        if msg.kind == MsgKind.READ:
            self.send(MsgKind.DATA_S, msg.src)
        elif msg.kind == MsgKind.WB_ACK:
            self.finish(msg)
        else:
            raise ValueError(msg)

    def finish(self, msg):
        self.count += 1


class NodeController:
    def receive(self, msg):
        if msg.kind == MsgKind.DATA_S:
            self.fill(msg)
        else:
            raise ValueError(msg)

    def fill(self, msg):
        self.count += 1


def boot(home):
    home.send(MsgKind.READ, 0)
