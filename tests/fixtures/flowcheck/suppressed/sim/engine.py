"""Fixture: an inline ``# repro: allow[...]`` silences a finding."""


class Simulator:
    __slots__ = ("_queue",)

    def step(self):
        pending = [self._queue]  # repro: allow[P-ALLOC]
        return pending
