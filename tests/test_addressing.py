"""Unit tests for the shared address space and array helpers."""

import pytest

from repro.errors import ConfigError
from repro.system.addressing import AddressSpace, Matrix, Vector


class TestAddressSpace:
    def test_fixed_home(self):
        space = AddressSpace(4, 64)
        base = space.alloc(256, home=2)
        for offset in range(0, 256, 64):
            assert space.home_of(base + offset) == 2

    def test_interleaved_round_robin(self):
        space = AddressSpace(4, 64)
        base = space.alloc(64 * 8, interleave=True)
        homes = [space.home_of(base + i * 64) for i in range(8)]
        assert homes == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_allocations_do_not_overlap(self):
        space = AddressSpace(4, 64)
        a = space.alloc(100, home=0)
        b = space.alloc(100, home=1)
        assert b >= a + 128  # rounded up to blocks

    def test_block_rounding(self):
        space = AddressSpace(4, 64)
        space.alloc(1, home=0)
        assert space.bytes_allocated == 64

    def test_home_and_interleave_mutually_exclusive(self):
        space = AddressSpace(4, 64)
        with pytest.raises(ConfigError):
            space.alloc(64, home=1, interleave=True)

    def test_home_out_of_range(self):
        space = AddressSpace(4, 64)
        with pytest.raises(ConfigError):
            space.alloc(64, home=4)

    def test_zero_alloc_rejected(self):
        space = AddressSpace(4, 64)
        with pytest.raises(ConfigError):
            space.alloc(0)

    def test_unmapped_addresses_interleave_globally(self):
        space = AddressSpace(4, 64)
        assert space.home_of(10_000_000) == (10_000_000 // 64) % 4

    def test_home_is_block_uniform(self):
        space = AddressSpace(4, 64)
        base = space.alloc(128, interleave=True)
        assert space.home_of(base) == space.home_of(base + 63)

    def test_memoization_consistent(self):
        space = AddressSpace(4, 64)
        base = space.alloc(256, home=3)
        assert space.home_of(base) == space.home_of(base)


class TestMatrix:
    def test_row_major_addresses(self):
        space = AddressSpace(4, 64)
        m = Matrix(space, 4, 4, elem_bytes=8)
        assert m.addr(0, 1) - m.addr(0, 0) == 8
        assert m.addr(1, 0) - m.addr(0, 0) == 32

    def test_row_home_policy(self):
        space = AddressSpace(4, 64)
        m = Matrix(space, 8, 8, row_home=lambda i: i % 4)
        for i in range(8):
            assert space.home_of(m.addr(i, 0)) == i % 4

    def test_rows_are_disjoint(self):
        space = AddressSpace(4, 64)
        m = Matrix(space, 4, 8, row_home=lambda i: 0)
        addrs = {m.addr(i, j) for i in range(4) for j in range(8)}
        assert len(addrs) == 32

    def test_row_addr(self):
        space = AddressSpace(4, 64)
        m = Matrix(space, 2, 4)
        assert m.row_addr(1) == m.addr(1, 0)


class TestVector:
    def test_fixed_home_vector(self):
        space = AddressSpace(4, 64)
        v = Vector(space, 32, home=1)
        assert space.home_of(v.addr(0)) == 1
        assert space.home_of(v.addr(31)) == 1

    def test_interleaved_vector(self):
        space = AddressSpace(4, 64)
        v = Vector(space, 64)
        homes = {space.home_of(v.addr(i)) for i in range(64)}
        assert homes == {0, 1, 2, 3}

    def test_element_addresses(self):
        space = AddressSpace(4, 64)
        v = Vector(space, 8, elem_bytes=16)
        assert v.addr(2) - v.addr(0) == 32
