"""Tests of the six paper kernels: stream well-formedness, barrier
structure, sharing character, and full runs on a small machine."""

import pytest

from repro.apps import (
    PAPER_APPS,
    FloydWarshall,
    GaussianElimination,
    GramSchmidt,
    MatrixMultiply,
    RedBlackSOR,
    SixStepFFT,
)
from repro.apps.base import block_partition, cyclic_partition, owner_of_row
from repro.errors import ConfigError
from repro.system.machine import Machine

from conftest import assert_coherent, tiny_config

SMALL_APPS = {
    "FWA": lambda: FloydWarshall(n=8),
    "GS": lambda: GramSchmidt(n_vectors=6, length=8),
    "GE": lambda: GaussianElimination(n=8),
    "MM": lambda: MatrixMultiply(n=8),
    "SOR": lambda: RedBlackSOR(n=12, iterations=1),
    "FFT": lambda: SixStepFFT(m=8),
}


class TestPartitionHelpers:
    def test_block_partition_covers_everything(self):
        seen = []
        for p in range(4):
            seen.extend(block_partition(10, p, 4))
        assert sorted(seen) == list(range(10))

    def test_block_partition_balanced(self):
        sizes = [len(block_partition(10, p, 4)) for p in range(4)]
        assert max(sizes) - min(sizes) <= 1

    def test_cyclic_partition_covers_everything(self):
        seen = []
        for p in range(4):
            seen.extend(cyclic_partition(10, p, 4))
        assert sorted(seen) == list(range(10))

    def test_owner_of_row_matches_block_partition(self):
        for n_rows in (7, 8, 16, 23):
            for p in range(4):
                for row in block_partition(n_rows, p, 4):
                    assert owner_of_row(row, n_rows, 4) == p


class TestStreamWellFormedness:
    @pytest.mark.parametrize("name", list(SMALL_APPS))
    def test_ops_are_valid(self, name):
        machine = Machine(tiny_config())
        app = SMALL_APPS[name]()
        app.setup(machine)
        valid_codes = {"r", "w", "work", "barrier", "lock", "unlock"}
        for proc in range(4):
            for op in app.ops(proc, machine):
                assert op[0] in valid_codes
                if op[0] in ("r", "w"):
                    assert op[1] > 0
                if op[0] == "work":
                    assert op[1] >= 0

    @pytest.mark.parametrize("name", list(SMALL_APPS))
    def test_barrier_sequences_agree_across_procs(self, name):
        machine = Machine(tiny_config())
        app = SMALL_APPS[name]()
        app.setup(machine)
        sequences = []
        for proc in range(4):
            barriers = [op[1] for op in app.ops(proc, machine)
                        if op[0] == "barrier"]
            sequences.append(barriers)
        assert all(seq == sequences[0] for seq in sequences)

    @pytest.mark.parametrize("name", list(SMALL_APPS))
    def test_addresses_within_allocations(self, name):
        machine = Machine(tiny_config())
        app = SMALL_APPS[name]()
        app.setup(machine)
        limit = machine.space.bytes_allocated + machine.config.block_size
        for proc in range(4):
            for op in app.ops(proc, machine):
                if op[0] in ("r", "w"):
                    assert op[1] < limit


class TestFullRuns:
    @pytest.mark.parametrize("name", list(SMALL_APPS))
    def test_runs_coherently_on_base(self, name):
        machine = Machine(tiny_config())
        stats = machine.run(SMALL_APPS[name]())
        assert stats.exec_time > 0
        assert stats.total_reads() > 0
        assert_coherent(machine)

    @pytest.mark.parametrize("name", list(SMALL_APPS))
    def test_runs_coherently_with_switch_caches(self, name):
        machine = Machine(tiny_config(switch_cache_size=1024))
        stats = machine.run(SMALL_APPS[name]())
        assert stats.exec_time > 0
        assert_coherent(machine)


class TestSharingCharacter:
    def test_fwa_is_widely_shared(self):
        machine = Machine(tiny_config())
        stats = machine.run(FloydWarshall(n=8))
        assert stats.mean_sharing_degree() > 3.0

    def test_fft_has_no_read_sharing(self):
        machine = Machine(tiny_config())
        stats = machine.run(SixStepFFT(m=8))
        # every remote block is read by exactly one processor
        assert stats.mean_sharing_degree() == pytest.approx(1.0)

    def test_sor_is_nearest_neighbor(self):
        machine = Machine(tiny_config())
        stats = machine.run(RedBlackSOR(n=16, iterations=1))
        assert stats.mean_sharing_degree() <= 2.5

    def test_ge_pivot_rows_shared_by_all(self):
        machine = Machine(tiny_config())
        stats = machine.run(GaussianElimination(n=12))
        hist = stats.sharing_histogram(4)
        assert hist[4] > 0  # some blocks read by every processor


class TestAppParameters:
    def test_fft_odd_m_rejected(self):
        with pytest.raises(ConfigError):
            SixStepFFT(m=9)

    def test_paper_apps_registry_complete(self):
        assert set(PAPER_APPS) == {"FWA", "GS", "GE", "MM", "SOR", "FFT"}

    def test_mm_b_matrix_is_interleaved(self):
        machine = Machine(tiny_config())
        app = MatrixMultiply(n=8)
        app.setup(machine)
        homes = {machine.space.home_of(app.b.addr(i, 0)) for i in range(8)}
        assert len(homes) > 1

    def test_ge_rows_homed_cyclically(self):
        machine = Machine(tiny_config())
        app = GaussianElimination(n=8)
        app.setup(machine)
        for i in range(8):
            assert machine.space.home_of(app.a.addr(i, 0)) == i % 4
