"""Tests for application-framework helpers and stats export."""

import json

from repro.apps.base import (
    BarrierSequencer,
    read_row,
    touch_every_block,
)
from repro.stats.counters import MachineStats
from repro.system.addressing import AddressSpace, Matrix


class TestBarrierSequencer:
    def test_monotonic_unique_ids(self):
        seq = BarrierSequencer("GE")
        ids = [seq.next() for _ in range(5)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 5

    def test_identical_construction_yields_identical_sequences(self):
        a = BarrierSequencer("GE")
        b = BarrierSequencer("GE")
        assert [a.next() for _ in range(4)] == [b.next() for _ in range(4)]

    def test_different_apps_do_not_collide(self):
        a = BarrierSequencer("GE")
        b = BarrierSequencer("FWA")
        a_ids = {a.next() for _ in range(10)}
        b_ids = {b.next() for _ in range(10)}
        assert not a_ids & b_ids


class TestOpGenerators:
    def test_read_row_covers_row(self):
        space = AddressSpace(4, 64)
        matrix = Matrix(space, 2, 4)
        ops = list(read_row(matrix, 1, 4))
        assert all(op[0] == "r" for op in ops)
        assert [op[1] for op in ops] == [matrix.addr(1, j) for j in range(4)]

    def test_touch_every_block(self):
        ops = list(touch_every_block(0x1000, 256, 64))
        assert [op[1] for op in ops] == [0x1000, 0x1040, 0x1080, 0x10C0]


class TestStatsExport:
    def test_to_dict_is_json_serializable(self):
        stats = MachineStats(4)
        stats.record_read_hit(0, "l1")
        stats.record_finish(0, 10)
        stats.record_finish(1, 20)
        stats.record_finish(2, 20)
        stats.record_finish(3, 25)
        payload = stats.to_dict()
        text = json.dumps(payload)
        parsed = json.loads(text)
        assert parsed["exec_time"] == 25
        assert parsed["read_counts"]["l1"] == 1

    def test_to_dict_from_real_run(self):
        from repro.apps import GaussianElimination
        from repro.system.config import SystemConfig
        from repro.system.machine import Machine

        machine = Machine(SystemConfig(num_nodes=4, l1_size=1024,
                                       l2_size=4096, switch_cache_size=512))
        stats = machine.run(GaussianElimination(n=10))
        payload = stats.to_dict()
        assert payload["total_reads"] == stats.total_reads()
        assert payload["exec_time"] == stats.exec_time
        json.dumps(payload)  # must not raise
