"""Tests for the engine perf-trajectory harness (repro.experiments.bench)."""

import json

import pytest

from repro.apps.synthetic import SharedReaders
from repro.experiments import bench
from repro.system.presets import base_config


@pytest.fixture
def tiny_workloads(monkeypatch):
    monkeypatch.setattr(bench, "_workloads", lambda: [
        ("tiny", lambda: base_config(4),
         lambda: SharedReaders(nbytes=1024, rounds=1)),
    ])


def test_run_bench_measures_both_engines(tiny_workloads):
    payload = bench.run_bench(repeat=1)
    entry = payload["workloads"]["tiny"]
    assert entry["cycles"] > 0 and entry["events"] > 0
    for engine in bench.ENGINES:
        assert entry[engine]["events_per_s"] > 0
        assert entry[engine]["peak_pending"] > 0
    assert entry["speedup"] > 0
    assert payload["geomean_speedup"] == entry["speedup"]


def test_run_bench_measures_state_kernels(tiny_workloads):
    payload = bench.run_bench(repeat=1)
    assert payload["schema"] == bench.SCHEMA_VERSION
    assert payload["state_models"] == list(bench.STATE_MODELS)
    entry = payload["workloads"]["tiny"]
    for state in bench.STATE_MODELS:
        kernel = entry["kernels"][state]
        assert kernel["events_per_s"] > 0
        assert "peak_pending" not in kernel  # engine property, not state
    assert entry["kernel_speedup"] > 0
    assert payload["geomean_kernel_speedup"] == entry["kernel_speedup"]
    report = bench.format_report(payload)
    assert "geomean kernel speedup" in report


def test_run_bench_measures_express_transit(tiny_workloads):
    payload = bench.run_bench(repeat=1)
    assert payload["express_modes"] == list(bench.EXPRESS_MODES)
    entry = payload["workloads"]["tiny"]
    for mode in bench.EXPRESS_MODES:
        cell = entry["express"][mode]
        assert cell["wall_s"] >= 0 and cell["events"] > 0
    # fusion only removes events, never adds them
    assert entry["express"]["on"]["events"] <= entry["express"]["off"]["events"]
    # the engine A/B section runs with express off, so its events count
    # is the unfused one
    assert entry["events"] == entry["express"]["off"]["events"]
    assert entry["express_speedup"] > 0
    assert payload["geomean_express_speedup"] == entry["express_speedup"]
    report = bench.format_report(payload)
    assert "geomean express speedup" in report


def test_check_against_accepts_itself(tiny_workloads):
    payload = bench.run_bench(repeat=1)
    assert bench.check_against(payload, payload) == []


def test_check_against_flags_timing_drift_and_regression(tiny_workloads):
    payload = bench.run_bench(repeat=1)
    drifted = json.loads(json.dumps(payload))
    drifted["workloads"]["tiny"]["cycles"] += 1
    problems = bench.check_against(drifted, payload)
    assert any("drifted" in p for p in problems)

    slower = json.loads(json.dumps(payload))
    slower["workloads"]["tiny"]["speedup"] = (
        payload["workloads"]["tiny"]["speedup"] * 0.5
    )
    problems = bench.check_against(slower, payload, threshold=0.25)
    assert any("regressed" in p for p in problems)

    slow_kernel = json.loads(json.dumps(payload))
    slow_kernel["workloads"]["tiny"]["kernel_speedup"] = (
        payload["workloads"]["tiny"]["kernel_speedup"] * 0.5
    )
    problems = bench.check_against(slow_kernel, payload, threshold=0.25)
    assert any("kernel speedup regressed" in p for p in problems)

    slow_express = json.loads(json.dumps(payload))
    slow_express["workloads"]["tiny"]["express_speedup"] = (
        payload["workloads"]["tiny"]["express_speedup"] * 0.5
    )
    problems = bench.check_against(slow_express, payload, threshold=0.25)
    assert any("express-transit speedup regressed" in p for p in problems)


def test_check_against_tolerates_schema1_baseline(tiny_workloads):
    # a schema-1 baseline has no kernels section; the kernel gate must
    # simply not fire rather than KeyError
    payload = bench.run_bench(repeat=1)
    old = json.loads(json.dumps(payload))
    for entry in old["workloads"].values():
        entry.pop("kernels", None)
        entry.pop("kernel_speedup", None)
    assert bench.check_against(payload, old) == []


def test_check_against_tolerates_schema2_baseline(tiny_workloads):
    # a schema-2 baseline predates the express A/B; the express gate
    # must simply not fire rather than KeyError
    payload = bench.run_bench(repeat=1)
    old = json.loads(json.dumps(payload))
    for entry in old["workloads"].values():
        entry.pop("express", None)
        entry.pop("express_speedup", None)
    assert bench.check_against(payload, old) == []


def test_check_against_flags_workload_set_changes(tiny_workloads):
    payload = bench.run_bench(repeat=1)
    renamed = json.loads(json.dumps(payload))
    renamed["workloads"] = {"other": payload["workloads"]["tiny"]}
    problems = bench.check_against(renamed, payload)
    assert any("missing from the committed baseline" in p for p in problems)
    assert any("no longer benched" in p for p in problems)


def test_bench_command_preserves_trajectory(tiny_workloads, tmp_path, capsys):
    out = tmp_path / "BENCH_engine.json"
    assert bench.bench_command(output=str(out), baseline=str(out)) == 0
    payload = json.loads(out.read_text())
    history = [{"label": "seed", "events_per_s": {"tiny": 123}}]
    payload["trajectory"] = history
    out.write_text(json.dumps(payload))

    # regeneration (and --check against the committed file) keeps history
    assert bench.bench_command(
        output=str(out), baseline=str(out), check=True
    ) == 0
    regenerated = json.loads(out.read_text())
    assert regenerated["trajectory"] == history
    assert "perf-smoke ok" in capsys.readouterr().out
