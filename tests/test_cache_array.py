"""Unit and property tests for the set-associative cache array."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.array import CacheArray
from repro.cache.states import LineState
from repro.errors import ConfigError


class TestGeometry:
    def test_basic_shape(self):
        array = CacheArray(2048, 64, 2)
        assert array.num_sets == 16
        assert array.assoc == 2

    def test_direct_mapped(self):
        array = CacheArray(1024, 64, 1)
        assert array.num_sets == 16

    @pytest.mark.parametrize("size", [0, -64, 100])
    def test_bad_size_rejected(self, size):
        with pytest.raises(ConfigError):
            CacheArray(size, 64, 2)

    def test_non_power_of_two_block_rejected(self):
        with pytest.raises(ConfigError):
            CacheArray(2048, 48, 2)

    def test_zero_assoc_rejected(self):
        with pytest.raises(ConfigError):
            CacheArray(2048, 64, 0)

    def test_non_power_of_two_sets_rejected(self):
        # 3 sets: 3 * 64 * 1 = 192 bytes
        with pytest.raises(ConfigError):
            CacheArray(192, 64, 1)


class TestLookupInsert:
    def test_miss_on_empty(self):
        array = CacheArray(1024, 64, 2)
        assert array.lookup(0) is None
        assert array.misses == 1

    def test_insert_then_hit(self):
        array = CacheArray(1024, 64, 2)
        array.insert(0x100, LineState.SHARED, 7)
        line = array.lookup(0x100)
        assert line is not None
        assert line.data == 7
        assert line.state is LineState.SHARED

    def test_whole_block_hits(self):
        array = CacheArray(1024, 64, 2)
        array.insert(0x100, LineState.SHARED, 1)
        assert array.lookup(0x100 + 63) is not None
        assert array.lookup(0x100 + 64) is None

    def test_insert_same_block_updates_in_place(self):
        array = CacheArray(1024, 64, 2)
        array.insert(0x40, LineState.SHARED, 1)
        victim = array.insert(0x40, LineState.MODIFIED, 2)
        assert victim is None
        line = array.probe(0x40)
        assert line.state is LineState.MODIFIED
        assert line.data == 2
        assert array.occupancy() == 1

    def test_probe_does_not_touch_stats_or_lru(self):
        array = CacheArray(1024, 64, 2)
        array.insert(0x40, LineState.SHARED, 1)
        array.probe(0x40)
        array.probe(0x999999)
        assert array.hits == 0
        assert array.misses == 0


class TestEvictionLru:
    def _fill_one_set(self, array):
        """Insert assoc blocks that all map to set 0."""
        stride = array.num_sets * array.block_size
        addrs = [i * stride for i in range(array.assoc)]
        for i, addr in enumerate(addrs):
            array.insert(addr, LineState.SHARED, i)
        return addrs, stride

    def test_eviction_of_lru_line(self):
        array = CacheArray(512, 64, 2)  # 4 sets
        addrs, stride = self._fill_one_set(array)
        array.lookup(addrs[0])  # make addrs[0] MRU
        victim = array.insert(array.assoc * stride, LineState.SHARED, 99)
        assert victim is not None
        victim_addr, victim_state, victim_data = victim
        assert victim_addr == addrs[1]
        assert victim_data == 1

    def test_eviction_returns_state_and_data(self):
        array = CacheArray(512, 64, 2)
        addrs, stride = self._fill_one_set(array)
        array.insert(addrs[0], LineState.MODIFIED, 42)
        array.lookup(addrs[1])
        victim = array.insert(99 * stride, LineState.SHARED, 0)
        assert victim == (addrs[0], LineState.MODIFIED, 42)

    def test_no_cross_set_eviction(self):
        array = CacheArray(512, 64, 2)
        array.insert(0 * 64, LineState.SHARED, 0)  # set 0
        array.insert(1 * 64, LineState.SHARED, 1)  # set 1
        array.insert(2 * 64, LineState.SHARED, 2)  # set 2
        assert array.occupancy() == 3
        assert array.evictions == 0

    def test_eviction_counter(self):
        array = CacheArray(128, 64, 1)  # 2 sets, direct mapped
        array.insert(0, LineState.SHARED, 0)
        array.insert(128, LineState.SHARED, 1)  # same set 0
        assert array.evictions == 1


class TestInvalidate:
    def test_invalidate_present(self):
        array = CacheArray(1024, 64, 2)
        array.insert(0x80, LineState.MODIFIED, 5)
        assert array.invalidate(0x80) == (LineState.MODIFIED, 5)
        assert array.probe(0x80) is None
        assert array.invalidations == 1

    def test_invalidate_absent_returns_none(self):
        array = CacheArray(1024, 64, 2)
        assert array.invalidate(0x80) is None
        assert array.invalidations == 0

    def test_set_state(self):
        array = CacheArray(1024, 64, 2)
        array.insert(0x80, LineState.MODIFIED, 5)
        array.set_state(0x80, LineState.SHARED)
        assert array.probe(0x80).state is LineState.SHARED

    def test_set_state_missing_raises(self):
        array = CacheArray(1024, 64, 2)
        with pytest.raises(KeyError):
            array.set_state(0x80, LineState.SHARED)

    def test_clear(self):
        array = CacheArray(1024, 64, 2)
        for i in range(4):
            array.insert(i * 64, LineState.SHARED, i)
        array.clear()
        assert array.occupancy() == 0


class TestIntrospection:
    def test_resident_blocks_roundtrip(self):
        array = CacheArray(1024, 64, 2)
        inserted = {i * 64: i for i in range(5)}
        for addr, data in inserted.items():
            array.insert(addr, LineState.SHARED, data)
        resident = {addr: line.data for addr, line in array.resident_blocks()}
        assert resident == inserted

    def test_hit_rate(self):
        array = CacheArray(1024, 64, 2)
        array.insert(0, LineState.SHARED, 0)
        array.lookup(0)
        array.lookup(64)
        assert array.hit_rate() == 0.5

    def test_hit_rate_empty(self):
        assert CacheArray(1024, 64, 2).hit_rate() == 0.0


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "lookup", "invalidate"]),
            st.integers(min_value=0, max_value=63),
        ),
        max_size=200,
    )
)
def test_property_occupancy_never_exceeds_capacity(ops):
    """Occupancy <= sets*assoc and a model dict agrees on membership."""
    array = CacheArray(512, 64, 2)  # 4 sets x 2 ways
    capacity = array.num_sets * array.assoc
    for op, block in ops:
        addr = block * 64
        if op == "insert":
            array.insert(addr, LineState.SHARED, block)
        elif op == "lookup":
            array.lookup(addr)
        else:
            array.invalidate(addr)
        assert array.occupancy() <= capacity
        # per-set occupancy bound
        for s in range(array.num_sets):
            assert array.set_len(s) <= array.assoc


@settings(max_examples=50, deadline=None)
@given(
    blocks=st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=100)
)
def test_property_most_recent_insert_always_resident(blocks):
    """The block inserted last is always still resident (LRU never evicts MRU)."""
    array = CacheArray(512, 64, 2)
    for block in blocks:
        array.insert(block * 64, LineState.SHARED, block)
        assert array.probe(block * 64) is not None


@settings(max_examples=30, deadline=None)
@given(
    blocks=st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=64),
)
def test_property_data_integrity(blocks):
    """A resident block's payload is the last value inserted for it."""
    array = CacheArray(2048, 64, 4)
    last = {}
    for i, block in enumerate(blocks):
        array.insert(block * 64, LineState.SHARED, i)
        last[block] = i
    for addr, line in array.resident_blocks():
        assert line.data == last[addr // 64]


class TestReplacementPolicies:
    def _fill_set(self, array):
        stride = array.num_sets * array.block_size
        addrs = [i * stride for i in range(array.assoc)]
        for i, addr in enumerate(addrs):
            array.insert(addr, LineState.SHARED, i)
        return addrs, stride

    def test_fifo_ignores_hits(self):
        array = CacheArray(512, 64, 2, replacement="fifo")
        addrs, stride = self._fill_set(array)
        array.lookup(addrs[0])  # would refresh under LRU; FIFO ignores it
        victim = array.insert(99 * stride, LineState.SHARED, 0)
        assert victim[0] == addrs[0]  # oldest insertion evicted anyway

    def test_lru_respects_hits(self):
        array = CacheArray(512, 64, 2, replacement="lru")
        addrs, stride = self._fill_set(array)
        array.lookup(addrs[0])
        victim = array.insert(99 * stride, LineState.SHARED, 0)
        assert victim[0] == addrs[1]

    def test_random_is_deterministic_per_seed(self):
        def victims(seed):
            array = CacheArray(512, 64, 1, replacement="random", seed=seed)
            out = []
            for i in range(8):
                victim = array.insert(i * 4 * 64, LineState.SHARED, i)
                out.append(victim)
            return out

        assert victims(1) == victims(1)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            CacheArray(512, 64, 2, replacement="plru")

    def test_machine_accepts_replacement_config(self):
        from repro.system.config import SystemConfig

        cfg = SystemConfig(
            num_nodes=4, switch_cache_size=512,
            switch_cache_replacement="fifo",
        )
        from repro.system.machine import Machine

        machine = Machine(cfg)
        engine = next(iter(machine.fabric.switches.values())).cache_engine
        assert engine.array.replacement == "fifo"

    def test_bad_replacement_config_rejected(self):
        from repro.errors import ConfigError as CE
        from repro.system.config import SystemConfig

        with pytest.raises(CE):
            SystemConfig(switch_cache_replacement="mru")
