"""Unit tests for the CAESAR cache engine (fabric hooks + policy)."""

from repro.core.caesar import CaesarEngine
from repro.core.policy import CachingPolicy
from repro.core.switchcache import SwitchCacheGeometry
from repro.network.message import Message, MsgKind
from repro.sim.engine import Simulator


def make_engine(sim=None, policy=None, **geo_kw):
    sim = sim if sim is not None else Simulator()
    geo = SwitchCacheGeometry(size=2048, **geo_kw)
    return CaesarEngine(sim, (1, 0), geo, policy=policy)


def reply(addr, data=1):
    return Message(MsgKind.DATA_S, 15, 0, addr, 9, data=data)


def read(addr, src=2):
    return Message(MsgKind.READ, src, 15, addr, 1)


def inv(addr):
    return Message(MsgKind.INV, 15, 0, addr, 1)


class TestDeposit:
    def test_deposit_stores_block(self):
        engine = make_engine()
        assert engine.try_deposit(reply(0x40, data=9))
        assert engine.deposits == 1
        line = engine.array.probe(0x40)
        assert line is not None and line.data == 9

    def test_deposit_skipped_when_bank_backed_up(self):
        engine = make_engine(policy=CachingPolicy(deposit_threshold=0))
        engine.try_deposit(reply(0x40))
        # the first deposit occupied the data bank; the next must skip
        assert not engine.try_deposit(reply(0x80))
        assert engine.deposit_skips == 1

    def test_deposit_disabled_stage(self):
        engine = make_engine(policy=CachingPolicy(enabled_stages={0, 2, 3}))
        # engine is at stage 1 which is excluded
        assert not engine.try_deposit(reply(0x40))
        assert engine.array.occupancy() == 0


class TestIntercept:
    def test_miss_returns_none(self):
        engine = make_engine()
        assert engine.try_intercept(read(0x40)) is None
        assert engine.misses == 1

    def test_hit_returns_data_and_ready_time(self):
        sim = Simulator()
        engine = make_engine(sim)
        engine.try_deposit(reply(0x40, data=3))
        sim.now += 100  # let the ports drain
        served = engine.try_intercept(read(0x40))
        assert served is not None
        data, ready = served
        assert data == 3
        # tag (1 cycle) + data stream (8 cycles at 64-bit width)
        assert ready == sim.now + 1 + 8

    def test_bypass_when_tag_port_congested(self):
        sim = Simulator()
        engine = make_engine(sim, policy=CachingPolicy(bypass_threshold=0))
        engine.try_deposit(reply(0x40))
        # deposit reserved the tag port; a read arriving in the same cycle
        # sees backlog > 0 and bypasses rather than queueing
        assert engine.try_intercept(read(0x40)) is None
        assert engine.bypasses == 1
        assert engine.lookups == 0

    def test_disabled_stage_never_intercepts(self):
        engine = make_engine(policy=CachingPolicy(enabled_stages=set()))
        engine.try_deposit(reply(0x40))
        assert engine.try_intercept(read(0x40)) is None


class TestSnoop:
    def test_snoop_purges_matching_block(self):
        engine = make_engine()
        engine.try_deposit(reply(0x40))
        engine.snoop(inv(0x40))
        assert engine.purges == 1
        assert engine.array.probe(0x40) is None

    def test_snoop_miss_harmless(self):
        engine = make_engine()
        engine.snoop(inv(0x80))
        assert engine.snoops == 1
        assert engine.purges == 0

    def test_snoop_never_skipped_even_when_busy(self):
        sim = Simulator()
        engine = make_engine(sim, policy=CachingPolicy(bypass_threshold=0,
                                                       deposit_threshold=0))
        engine.try_deposit(reply(0x40))
        # ports are busy, yet the snoop must still purge (correctness)
        engine.snoop(inv(0x40))
        assert engine.array.probe(0x40) is None

    def test_snooped_block_no_longer_served(self):
        sim = Simulator()
        engine = make_engine(sim)
        engine.try_deposit(reply(0x40, data=5))
        engine.snoop(inv(0x40))
        sim.now += 100
        assert engine.try_intercept(read(0x40)) is None


class TestStats:
    def test_hit_rate(self):
        sim = Simulator()
        engine = make_engine(sim)
        engine.try_deposit(reply(0x40))
        sim.now += 100
        engine.try_intercept(read(0x40))
        sim.now += 100
        engine.try_intercept(read(0x999940))
        assert engine.hit_rate() == 0.5

    def test_hit_rate_empty(self):
        assert make_engine().hit_rate() == 0.0


class TestPolicy:
    def test_defaults_enable_all_stages(self):
        policy = CachingPolicy()
        for stage in range(4):
            assert policy.stage_enabled(stage)

    def test_should_check_threshold(self):
        policy = CachingPolicy(bypass_threshold=4)
        assert policy.should_check(4)
        assert not policy.should_check(5)

    def test_should_deposit_threshold(self):
        policy = CachingPolicy(deposit_threshold=16)
        assert policy.should_deposit(16)
        assert not policy.should_deposit(17)

    def test_stage_filter(self):
        policy = CachingPolicy(enabled_stages={2, 3})
        assert not policy.stage_enabled(0)
        assert policy.stage_enabled(3)
