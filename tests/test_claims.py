"""End-to-end assertions of the paper's qualitative claims (DESIGN.md C1-C7).

These run the six kernels at the quick scale on the paper's 16-node
machine; runs are memoized across tests, so the module costs roughly one
base + one NC + one SC sweep.  Shapes — who wins and in what direction —
must match the paper; absolute magnitudes are recorded in EXPERIMENTS.md.
"""

import pytest

from repro.experiments.common import run
from repro.system.config import KB
from repro.system.presets import base_config, netcache_config, switch_cache_config

HIGH_SHARING = ("FWA", "GS", "GE", "MM")


def improvement(app: str, config) -> float:
    base = run(app, "quick", base_config())
    other = run(app, "quick", config)
    return 1 - other.exec_time / base.exec_time


def remote_reduction(app: str, config) -> float:
    base = run(app, "quick", base_config()).stats.reads_at_remote_memory()
    other = run(app, "quick", config).stats.reads_at_remote_memory()
    return 1 - other / base if base else 0.0


class TestClaimC1RemoteReadReduction:
    @pytest.mark.parametrize("app", HIGH_SHARING)
    def test_substantial_reduction_for_sharing_apps(self, app):
        assert remote_reduction(app, switch_cache_config(size=2 * KB)) > 0.40

    def test_fft_unaffected(self):
        assert remote_reduction("FFT", switch_cache_config(size=2 * KB)) == 0.0


class TestClaimC2ExecutionTime:
    @pytest.mark.parametrize("app", HIGH_SHARING)
    def test_sharing_apps_speed_up(self, app):
        assert improvement(app, switch_cache_config(size=2 * KB)) > 0.01

    def test_no_app_slows_down_materially(self):
        for app in ("FWA", "GS", "GE", "MM", "SOR", "FFT"):
            assert improvement(app, switch_cache_config(size=2 * KB)) > -0.01


class TestClaimC3ReadStall:
    @pytest.mark.parametrize("app", HIGH_SHARING)
    def test_read_stall_reduced(self, app):
        base = run(app, "quick", base_config()).stats.total_read_stall()
        sc = run(app, "quick", switch_cache_config(size=2 * KB)).stats.total_read_stall()
        assert sc < base


class TestClaimC4SmallCacheSufficient:
    @pytest.mark.parametrize("app", HIGH_SHARING)
    def test_512b_achieves_most_of_the_benefit(self, app):
        small = improvement(app, switch_cache_config(size=512))
        large = improvement(app, switch_cache_config(size=4 * KB))
        assert small > 0
        assert small >= 0.6 * large


class TestClaimC5C6SharingDetermination:
    def test_fft_gets_no_switch_hits(self):
        record = run("FFT", "quick", switch_cache_config(size=2 * KB))
        assert record.stats.read_counts["switch"] == 0

    @pytest.mark.parametrize("app", HIGH_SHARING)
    def test_sharing_apps_get_switch_hits(self, app):
        record = run(app, "quick", switch_cache_config(size=2 * KB))
        assert record.stats.read_counts["switch"] > 0

    def test_benefit_ranking_follows_sharing_degree(self):
        fwa = improvement("FWA", switch_cache_config(size=2 * KB))
        fft = improvement("FFT", switch_cache_config(size=2 * KB))
        assert fwa > fft


class TestClaimC7SwitchBeatsNetworkCache:
    @pytest.mark.parametrize("app", HIGH_SHARING)
    def test_switch_cache_outperforms_network_cache(self, app):
        sc = improvement(app, switch_cache_config(size=2 * KB))
        nc = improvement(app, netcache_config())
        assert sc > nc


class TestRunHealth:
    @pytest.mark.parametrize("app", ("FWA", "GS", "GE", "MM", "SOR", "FFT"))
    @pytest.mark.parametrize("config_fn", (base_config,
                                           lambda: switch_cache_config(size=2 * KB)))
    def test_every_run_is_coherent(self, app, config_fn):
        record = run(app, "quick", config_fn())
        assert record.coherence_violations == 0
