"""Tests for bus-based clusters (procs_per_node > 1).

The directory tracks nodes; the cluster bus snoops siblings before a
miss leaves the node (DASH-style hierarchical coherence [14]).
"""

import pytest

from repro.cache.states import DirState, LineState
from repro.errors import ConfigError
from repro.system.config import SystemConfig
from repro.system.machine import Machine

from conftest import ScriptedApp, assert_coherent, assert_monotonic_reads


def cluster_config(nodes=2, ppn=2, **overrides):
    defaults = dict(
        num_nodes=nodes,
        procs_per_node=ppn,
        l1_size=1024,
        l2_size=4096,
        quantum=100,
        trace_values=True,
    )
    defaults.update(overrides)
    return SystemConfig(**defaults)


def run_app(scripts, config, **app_kwargs):
    machine = Machine(config)
    app = ScriptedApp(scripts, **app_kwargs)
    stats = machine.run(app)
    return machine, app, stats


class TestShape:
    def test_proc_and_node_counts(self):
        machine = Machine(cluster_config(nodes=4, ppn=4))
        assert machine.num_procs == 16
        assert len(machine.nodes) == 4
        assert len(machine.nodes[0].stacks) == 4

    def test_proc_to_node_mapping(self):
        machine = Machine(cluster_config(nodes=2, ppn=4))
        assert machine.node_of_proc(0) == 0
        assert machine.node_of_proc(3) == 0
        assert machine.node_of_proc(4) == 1

    def test_global_proc_ids(self):
        machine = Machine(cluster_config(nodes=2, ppn=2))
        assert [s.proc_id for s in machine.stacks()] == [0, 1, 2, 3]

    def test_ppn_must_be_positive(self):
        with pytest.raises(ConfigError):
            SystemConfig(procs_per_node=0)


class TestSiblingService:
    def test_sibling_read_served_on_bus(self):
        # procs 0 and 1 are in node 0; block is homed remotely (node 1)
        scripts = {
            0: [("r", ("blk", 0)), ("barrier", 1)],
            1: [("barrier", 1), ("r", ("blk", 0))],
            2: [("barrier", 1)],
            3: [("barrier", 1)],
        }
        machine, app, stats = run_app(
            scripts, cluster_config(), blocks=1, home=1
        )
        assert stats.read_counts["cluster"] == 1
        assert stats.read_counts["remote_mem"] == 1  # only the first read
        assert machine.nodes[0].bus.sibling_reads == 1
        assert_coherent(machine)

    def test_sibling_service_returns_correct_version(self):
        scripts = {
            2: [("w", ("blk", 0)), ("barrier", 1), ("barrier", 2)],  # node 1
            0: [("barrier", 1), ("r", ("blk", 0)), ("barrier", 2)],
            1: [("barrier", 1), ("barrier", 2), ("r", ("blk", 0))],
            3: [("barrier", 1), ("barrier", 2)],
        }
        machine, app, stats = run_app(
            scripts, cluster_config(), blocks=1, home=1
        )
        block = app.block_addrs[0]
        for proc in (0, 1):
            stack = list(machine.stacks())[proc]
            reads = [v for _o, a, v, _t in stack.processor.value_trace
                     if a == block]
            assert reads == [1]
        assert_monotonic_reads(machine)
        assert_coherent(machine)

    def test_owned_copy_migrates_on_sibling_read(self):
        # proc 0 writes (M); proc 1 (same node) reads: the owned copy
        # must migrate so the node can still answer a recall
        scripts = {
            0: [("w", ("blk", 0)), ("barrier", 1)],
            1: [("barrier", 1), ("r", ("blk", 0))],
            2: [("barrier", 1)],
            3: [("barrier", 1)],
        }
        machine, app, stats = run_app(
            scripts, cluster_config(), blocks=1, home=1
        )
        block = app.block_addrs[0]
        stacks = machine.nodes[0].stacks
        assert stacks[0].hierarchy.state_of(block) is LineState.INVALID
        assert stacks[1].hierarchy.state_of(block) is LineState.MODIFIED
        entry = machine.nodes[1].directory.peek(block)
        assert entry.state is DirState.MODIFIED and entry.owner == 0
        assert_coherent(machine)

    def test_recall_after_intra_node_migration(self):
        scripts = {
            0: [("w", ("blk", 0)), ("barrier", 1), ("barrier", 2)],
            1: [("barrier", 1), ("r", ("blk", 0)), ("barrier", 2)],
            2: [("barrier", 1), ("barrier", 2), ("r", ("blk", 0))],
            3: [("barrier", 1), ("barrier", 2)],
        }
        machine, app, stats = run_app(
            scripts, cluster_config(), blocks=1, home=1
        )
        block = app.block_addrs[0]
        reads_2 = [v for _o, a, v, _t in
                   list(machine.stacks())[2].processor.value_trace
                   if a == block]
        assert reads_2 == [1]
        assert_coherent(machine)

    def test_write_transfer_between_siblings(self):
        scripts = {
            0: [("w", ("blk", 0)), ("barrier", 1)],
            1: [("barrier", 1), ("w", ("blk", 0))],
            2: [("barrier", 1)],
            3: [("barrier", 1)],
        }
        machine, app, stats = run_app(
            scripts, cluster_config(), blocks=1, home=1
        )
        block = app.block_addrs[0]
        assert machine.nodes[0].bus.sibling_transfers == 1
        stacks = machine.nodes[0].stacks
        assert stacks[1].hierarchy.l2.probe(block).data == 2
        # no extra directory transaction was needed for the second write
        entry = machine.nodes[1].directory.peek(block)
        assert entry.owner == 0
        assert_coherent(machine)


class TestNodeLevelInvalidation:
    def test_inv_purges_every_stack(self):
        scripts = {
            0: [("r", ("blk", 0)), ("barrier", 1), ("barrier", 2)],
            1: [("barrier", 1), ("r", ("blk", 0)), ("barrier", 2)],
            2: [("barrier", 1), ("barrier", 2), ("w", ("blk", 0))],
            3: [("barrier", 1), ("barrier", 2)],
        }
        machine, app, stats = run_app(
            scripts, cluster_config(), blocks=1, home=1
        )
        block = app.block_addrs[0]
        for stack in machine.nodes[0].stacks:
            assert stack.hierarchy.state_of(block) is LineState.INVALID
        assert machine.nodes[0].invs_received >= 1
        assert_coherent(machine)

    def test_upgrade_purges_sibling_shared_copies(self):
        scripts = {
            0: [("r", ("blk", 0)), ("barrier", 1), ("barrier", 2)],
            1: [("barrier", 1), ("r", ("blk", 0)), ("barrier", 2),
                ("w", ("blk", 0))],
            2: [("barrier", 1), ("barrier", 2)],
            3: [("barrier", 1), ("barrier", 2)],
        }
        machine, app, stats = run_app(
            scripts, cluster_config(), blocks=1, home=1
        )
        block = app.block_addrs[0]
        stacks = machine.nodes[0].stacks
        assert stacks[0].hierarchy.state_of(block) is LineState.INVALID
        assert stacks[1].hierarchy.state_of(block) is LineState.MODIFIED
        assert_coherent(machine)


class TestClusterWithExtras:
    def test_netcache_serves_cluster_capacity_misses(self):
        config = cluster_config(
            netcache_size=8192, l2_size=512, l2_assoc=1, l1_size=256
        )
        # proc 0 streams blocks (evicting constantly); proc 1 then reads
        # them: siblings have evicted, the shared NC still holds them
        scripts = {
            0: [("r", ("blk", i)) for i in range(16)] + [("barrier", 1)],
            1: [("barrier", 1)] + [("r", ("blk", i)) for i in range(16)],
            2: [("barrier", 1)],
            3: [("barrier", 1)],
        }
        machine, app, stats = run_app(scripts, config, blocks=16, home=1)
        assert stats.read_counts["netcache"] > 0
        assert_coherent(machine)

    def test_switch_caches_with_clusters(self):
        config = cluster_config(nodes=4, ppn=2, switch_cache_size=1024)
        scripts = {
            0: [("r", ("blk", 0)), ("barrier", 1)],
            # proc 4 lives in node 2: its read crosses the network
            4: [("barrier", 1), ("r", ("blk", 0))],
        }
        for p in range(8):
            scripts.setdefault(p, [("barrier", 1)])
        machine, app, stats = run_app(scripts, config, blocks=1, home=1)
        assert stats.read_counts["switch"] >= 1
        assert_coherent(machine)

    def test_paper_apps_run_on_clusters(self):
        from repro.apps import GaussianElimination

        machine = Machine(cluster_config(nodes=2, ppn=4))
        machine.run(GaussianElimination(n=16))
        assert_coherent(machine)
        assert_monotonic_reads(machine)

    def test_mesi_with_clusters(self):
        from repro.apps import GaussianElimination

        machine = Machine(cluster_config(nodes=2, ppn=2, protocol="mesi"))
        machine.run(GaussianElimination(n=12))
        assert_coherent(machine)

    def test_barriers_count_all_processors(self):
        scripts = {p: [("barrier", 1), ("work", 10)] for p in range(8)}
        machine, _app, stats = run_app(
            scripts, cluster_config(nodes=2, ppn=4), blocks=1
        )
        assert len(stats.finish_times) == 8


class TestBusSerialization:
    def test_synchronous_resubmit_queues_behind_promoted_op(self):
        """Regression: a completion callback that immediately submits a
        new op to the same block (read completes -> processor resumes ->
        write-buffer drain issues a write) must queue behind the op
        promoted from the block's FIFO, not race it.  The old ordering
        let the resubmission slip into the vacated active slot and be
        clobbered by the promotion, crashing on the write's completion.
        """
        config = cluster_config(nodes=2, ppn=2, switch_cache_size=512)
        scripts = {
            2: [("r", ("blk", 0)), ("w", ("blk", 0))],
            3: [("r", ("blk", 0))],
        }
        machine, _app, stats = run_app(scripts, config, blocks=6, home=0)
        assert_coherent(machine)
        assert_monotonic_reads(machine)
        assert stats.writes_completed + stats.upgrades_completed == 1
