"""Kitchen-sink configurations: every feature enabled at once.

The paper evaluates designs separately; a library must also be correct
when users combine them.  Every combination below must complete, stay
coherent, and keep per-processor version monotonicity.
"""

import pytest

from repro.apps import GaussianElimination, HotBlock, UniformRandom
from repro.system.config import SystemConfig
from repro.system.machine import Machine

from conftest import assert_coherent, assert_monotonic_reads

COMBOS = {
    "sc+nc": dict(switch_cache_size=1024, netcache_size=4096),
    "sc+mesi": dict(switch_cache_size=1024, protocol="mesi"),
    "nc+mesi": dict(netcache_size=4096, protocol="mesi"),
    "sc+cluster": dict(switch_cache_size=1024, num_nodes=2,
                       procs_per_node=2),
    "nc+cluster": dict(netcache_size=4096, num_nodes=2, procs_per_node=2),
    "everything": dict(switch_cache_size=512, netcache_size=2048,
                       num_nodes=2, procs_per_node=2, protocol="mesi",
                       switch_cache_banks=2,
                       switch_cache_replacement="fifo"),
}


def build(label, **extra):
    params = dict(num_nodes=4, l1_size=1024, l2_size=4096,
                  trace_values=True, quantum=100)
    params.update(COMBOS[label])
    params.update(extra)
    return Machine(SystemConfig(**params))


@pytest.mark.parametrize("label", sorted(COMBOS))
class TestCombinations:
    def test_ge_runs_coherently(self, label):
        machine = build(label)
        stats = machine.run(GaussianElimination(n=12))
        assert stats.exec_time > 0
        assert_coherent(machine)
        assert_monotonic_reads(machine)

    def test_random_traffic_coherent(self, label):
        machine = build(label)
        machine.run(UniformRandom(ops_per_proc=100, nbytes=4096, seed=3))
        assert_coherent(machine)
        assert_monotonic_reads(machine)

    def test_hot_block_churn_coherent(self, label):
        machine = build(label)
        machine.run(HotBlock(rounds=4))
        assert_coherent(machine)
        assert_monotonic_reads(machine)


class TestQuantumSensitivity:
    """The fast-forward quantum is a performance knob, not a semantic one."""

    @pytest.mark.parametrize("quantum", [1, 50, 5000])
    def test_extreme_quanta_stay_coherent(self, quantum):
        machine = Machine(SystemConfig(
            num_nodes=4, l1_size=1024, l2_size=4096,
            switch_cache_size=1024, quantum=quantum, trace_values=True,
        ))
        machine.run(GaussianElimination(n=12))
        assert_coherent(machine)
        assert_monotonic_reads(machine)

    def test_quantum_one_equals_serial_reference_counts(self):
        """At quantum=1 there is no causality skew at all; the read
        totals must match a large-quantum run exactly (same streams)."""
        totals = []
        for quantum in (1, 500):
            machine = Machine(SystemConfig(
                num_nodes=4, l1_size=1024, l2_size=4096, quantum=quantum,
            ))
            stats = machine.run(GaussianElimination(n=10))
            totals.append(stats.total_reads())
        assert totals[0] == totals[1]


class TestDesignInteractions:
    def test_nc_and_sc_both_serve(self):
        # capacity-pressured L2s: the NC catches re-fetches, the switch
        # caches catch sharing; both service classes should be non-zero
        machine = Machine(SystemConfig(
            num_nodes=4, l1_size=512, l2_size=1024, l2_assoc=1,
            switch_cache_size=2048, netcache_size=8192,
        ))
        from repro.apps import MatrixMultiply

        stats = machine.run(MatrixMultiply(n=16))
        assert stats.read_counts["switch"] > 0
        assert stats.read_counts["netcache"] > 0
        assert_coherent(machine)

    def test_mesi_cluster_silent_upgrade_stays_node_local(self):
        machine = Machine(SystemConfig(
            num_nodes=2, procs_per_node=2, l1_size=1024, l2_size=4096,
            protocol="mesi",
        ))
        from conftest import ScriptedApp

        app = ScriptedApp(
            {0: [("r", ("blk", 0)), ("w", ("blk", 0))]}, blocks=1, home=1
        )
        machine.run(app)
        # E-grant then silent upgrade: no upgrade transaction was issued
        upgrades = sum(
            n.l2ctrl.upgrades_issued for n in machine.nodes
        )
        assert upgrades == 0
        assert_coherent(machine)
