"""Tests for SystemConfig validation and the canonical presets."""

import pytest

from repro.errors import ConfigError
from repro.system.config import KB, SystemConfig
from repro.system.presets import (
    base_config,
    caesar_plus_config,
    netcache_config,
    switch_cache_config,
)


class TestValidation:
    def test_defaults_match_paper_table2(self):
        cfg = SystemConfig()
        assert cfg.num_nodes == 16
        assert cfg.l1_size == 16 * KB
        assert cfg.l2_size == 128 * KB
        assert cfg.memory_access_cycles == 40
        assert cfg.memory_access_cycles + 2 * cfg.memory_bus_cycles > 50
        assert cfg.switch_delay == 4
        assert cfg.cycles_per_flit == 4
        assert cfg.write_buffer_entries == 8

    @pytest.mark.parametrize("n", [0, 1, 3, 6])
    def test_bad_node_counts(self, n):
        with pytest.raises(ConfigError):
            SystemConfig(num_nodes=n)

    def test_block_must_be_flit_multiple(self):
        with pytest.raises(ConfigError):
            SystemConfig(block_size=20)

    def test_negative_cache_sizes_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(switch_cache_size=-1)
        with pytest.raises(ConfigError):
            SystemConfig(netcache_size=-1)

    def test_quantum_positive(self):
        with pytest.raises(ConfigError):
            SystemConfig(quantum=0)

    def test_replaced_creates_modified_copy(self):
        cfg = SystemConfig()
        other = cfg.replaced(switch_cache_size=512)
        assert other.switch_cache_size == 512
        assert cfg.switch_cache_size == 0


class TestPresets:
    def test_base_has_no_extra_caches(self):
        cfg = base_config()
        assert not cfg.switch_caches_enabled
        assert not cfg.netcache_enabled
        assert cfg.label() == "base"

    def test_netcache_preset(self):
        cfg = netcache_config()
        assert cfg.netcache_enabled
        assert cfg.label().startswith("NC-")

    def test_switch_cache_preset(self):
        cfg = switch_cache_config(size=512)
        assert cfg.switch_caches_enabled
        assert cfg.switch_cache_size == 512
        assert "CAESAR-512B" in cfg.label()

    def test_caesar_plus_preset(self):
        cfg = caesar_plus_config()
        assert cfg.switch_cache_banks == 2
        assert "CAESAR+" in cfg.label()

    def test_presets_accept_overrides(self):
        cfg = switch_cache_config(size=1024, num_nodes=4, quantum=50)
        assert cfg.num_nodes == 4
        assert cfg.quantum == 50

    def test_stage_restriction_passthrough(self):
        cfg = switch_cache_config(stages={2, 3})
        assert cfg.switch_cache_stages == {2, 3}
