"""Reproducibility: identical configurations produce identical runs.

The simulator is advertised as a pure function of (config, workload) —
deterministic event ordering, seeded randomness only.  These tests run
the same machine twice and require bit-identical statistics.
"""

import pytest

from repro.apps import GaussianElimination, UniformRandom
from repro.system.config import SystemConfig
from repro.system.machine import Machine


def snapshot(stats):
    return (
        stats.exec_time,
        dict(stats.read_counts),
        dict(stats.read_latency),
        dict(stats.switch_hits_by_stage),
        stats.writes_completed,
        stats.upgrades_completed,
        dict(stats.finish_times),
    )


CONFIGS = {
    "base": dict(num_nodes=4, l1_size=1024, l2_size=4096),
    "switch-cache": dict(num_nodes=4, l1_size=1024, l2_size=4096,
                         switch_cache_size=1024),
    "netcache": dict(num_nodes=4, l1_size=1024, l2_size=4096,
                     netcache_size=4096),
    "cluster": dict(num_nodes=2, procs_per_node=2, l1_size=1024,
                    l2_size=4096),
    "mesi": dict(num_nodes=4, l1_size=1024, l2_size=4096, protocol="mesi"),
    "random-replacement": dict(num_nodes=4, l1_size=1024, l2_size=4096,
                               switch_cache_size=512,
                               switch_cache_replacement="random"),
}


@pytest.mark.parametrize("label", sorted(CONFIGS))
def test_ge_runs_identically_twice(label):
    runs = []
    for _ in range(2):
        machine = Machine(SystemConfig(**CONFIGS[label]))
        stats = machine.run(GaussianElimination(n=12))
        runs.append(snapshot(stats))
    assert runs[0] == runs[1]


def test_seeded_random_workload_is_deterministic():
    runs = []
    for _ in range(2):
        machine = Machine(SystemConfig(num_nodes=4, l1_size=1024,
                                       l2_size=4096, switch_cache_size=512))
        stats = machine.run(UniformRandom(ops_per_proc=80, nbytes=4096,
                                          seed=7))
        runs.append(snapshot(stats))
    assert runs[0] == runs[1]


def test_different_seeds_differ():
    results = []
    for seed in (1, 2):
        machine = Machine(SystemConfig(num_nodes=4, l1_size=1024,
                                       l2_size=4096))
        stats = machine.run(UniformRandom(ops_per_proc=80, nbytes=4096,
                                          seed=seed))
        results.append(snapshot(stats))
    assert results[0] != results[1]


def test_event_counts_match_across_runs():
    counts = []
    for _ in range(2):
        machine = Machine(SystemConfig(num_nodes=4, l1_size=1024,
                                       l2_size=4096, switch_cache_size=1024))
        machine.run(GaussianElimination(n=10))
        counts.append(machine.sim.events_fired)
    assert counts[0] == counts[1]


# ---------------------------------------------------------------------------
# cross-process determinism
# ---------------------------------------------------------------------------
#
# The in-process tests above cannot see per-process hash salting:
# builtin hash() of a str changes with PYTHONHASHSEED, which is fixed
# at interpreter start.  BarrierSequencer once derived barrier ids from
# hash(app_name), so two processes disagreed on every artifact that
# records them.  This regression test runs the same workload in
# subprocesses with different hash seeds and requires byte-identical
# fingerprints (it fails on the hash()-based id scheme).

_FINGERPRINT_SCRIPT = """
import json
import sys

from repro.apps import GaussianElimination
from repro.apps.base import BarrierSequencer
from repro.system.config import SystemConfig
from repro.system.machine import Machine

machine = Machine(
    SystemConfig(num_nodes=4, l1_size=1024, l2_size=4096,
                 switch_cache_size=512)
)
app = GaussianElimination(n=10)
stats = machine.run(app)
traces = {}
for stack in machine.stacks():
    traces[str(stack.proc_id)] = [
        list(entry) for entry in stack.processor.value_trace
    ]
fingerprint = {
    "barrier_base": BarrierSequencer(app.name)._base,
    "exec_time": stats.exec_time,
    "events": machine.sim.events_fired,
    "finish_times": sorted(stats.finish_times.items()),
    "payload": stats.to_payload(),
    "traces": traces,
}
json.dump(fingerprint, sys.stdout, sort_keys=True, default=repr)
"""


def _fingerprint_with_hash_seed(seed):
    import os
    import subprocess
    import sys

    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(seed)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    proc = subprocess.run(
        [sys.executable, "-c", _FINGERPRINT_SCRIPT],
        capture_output=True, text=True, timeout=300, env=env,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_run_fingerprint_survives_hash_seed_changes():
    fingerprints = {
        _fingerprint_with_hash_seed(seed) for seed in (0, 1, 4242)
    }
    assert len(fingerprints) == 1, (
        "run artifacts depend on PYTHONHASHSEED — some id or ordering "
        "still flows through builtin hash()"
    )
