"""Unit tests for the full-map directory."""

import pytest

from repro.cache.states import DirState
from repro.coherence.directory import Directory
from repro.errors import ProtocolError


def make_dir():
    return Directory(node_id=0, block_size=64)


def test_entries_default_unowned():
    d = make_dir()
    entry = d.entry(0x100)
    assert entry.state is DirState.UNOWNED
    assert entry.sharers == set()
    assert entry.owner is None
    assert entry.version == 0


def test_entry_is_block_granular():
    d = make_dir()
    d.entry(0x100).version = 5
    assert d.entry(0x100 + 63).version == 5
    assert d.entry(0x100 + 64).version == 0


def test_peek_does_not_create():
    d = make_dir()
    assert d.peek(0x100) is None
    d.entry(0x100)
    assert d.peek(0x100) is not None


def test_add_sharer_moves_to_shared():
    d = make_dir()
    d.add_sharer(0x100, 3)
    entry = d.entry(0x100)
    assert entry.state is DirState.SHARED
    assert entry.sharers == {3}


def test_add_multiple_sharers():
    d = make_dir()
    for node in (1, 2, 5):
        d.add_sharer(0x100, node)
    assert d.entry(0x100).sharers == {1, 2, 5}


def test_add_sharer_on_modified_raises():
    d = make_dir()
    d.set_owner(0x100, 4)
    with pytest.raises(ProtocolError):
        d.add_sharer(0x100, 3)


def test_set_owner_clears_sharers():
    d = make_dir()
    d.add_sharer(0x100, 1)
    d.add_sharer(0x100, 2)
    d.set_owner(0x100, 7, version=3)
    entry = d.entry(0x100)
    assert entry.state is DirState.MODIFIED
    assert entry.owner == 7
    assert entry.sharers == set()
    assert entry.version == 3


def test_set_owner_preserves_version_when_none():
    d = make_dir()
    d.entry(0x100).version = 9
    d.set_owner(0x100, 2)
    assert d.entry(0x100).version == 9


def test_writeback_from_owner():
    d = make_dir()
    d.set_owner(0x100, 2)
    d.writeback(0x100, 2, version=10)
    entry = d.entry(0x100)
    assert entry.state is DirState.UNOWNED
    assert entry.owner is None
    assert entry.version == 10


def test_writeback_from_non_owner_raises():
    d = make_dir()
    d.set_owner(0x100, 2)
    with pytest.raises(ProtocolError):
        d.writeback(0x100, 3, version=10)


def test_writeback_on_shared_raises():
    d = make_dir()
    d.add_sharer(0x100, 1)
    with pytest.raises(ProtocolError):
        d.writeback(0x100, 1, version=10)


def test_clear_sharers():
    d = make_dir()
    d.add_sharer(0x100, 1)
    d.add_sharer(0x100, 2)
    cleared = d.clear_sharers(0x100)
    assert cleared == {1, 2}
    entry = d.entry(0x100)
    assert entry.state is DirState.UNOWNED
    assert entry.sharers == set()


def test_entries_iteration():
    d = make_dir()
    d.add_sharer(0x100, 1)
    d.add_sharer(0x200, 2)
    blocks = {block for block, _e in d.entries()}
    assert blocks == {0x100, 0x200}


def test_version_of():
    d = make_dir()
    d.entry(0x140).version = 4
    assert d.version_of(0x150) == 4
