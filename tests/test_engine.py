"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


def test_initial_state():
    sim = Simulator()
    assert sim.now == 0
    assert sim.pending == 0
    assert sim.events_fired == 0


def test_schedule_and_run_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(10, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [10]
    assert sim.now == 10


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(30, lambda: order.append("c"))
    sim.schedule(10, lambda: order.append("a"))
    sim.schedule(20, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_cycle_events_fire_in_schedule_order():
    sim = Simulator()
    order = []
    for tag in "abcde":
        sim.schedule(5, lambda t=tag: order.append(t))
    sim.run()
    assert order == list("abcde")


def test_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.at(42, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [42]


def test_at_in_past_raises():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(5, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(10, lambda: fired.append("no"))
    event.cancel()
    sim.run()
    assert fired == []
    assert sim.events_fired == 0


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(10, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()


def test_cancel_one_of_several():
    sim = Simulator()
    fired = []
    sim.schedule(1, lambda: fired.append(1))
    e2 = sim.schedule(2, lambda: fired.append(2))
    sim.schedule(3, lambda: fired.append(3))
    e2.cancel()
    sim.run()
    assert fired == [1, 3]


def test_nested_scheduling_from_callback():
    sim = Simulator()
    trail = []

    def first():
        trail.append(("first", sim.now))
        sim.schedule(5, lambda: trail.append(("second", sim.now)))

    sim.schedule(3, first)
    sim.run()
    assert trail == [("first", 3), ("second", 8)]


def test_step_returns_false_on_empty_queue():
    sim = Simulator()
    assert sim.step() is False


def test_step_fires_exactly_one_event():
    sim = Simulator()
    fired = []
    sim.schedule(1, lambda: fired.append("a"))
    sim.schedule(2, lambda: fired.append("b"))
    assert sim.step() is True
    assert fired == ["a"]


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(5, lambda: fired.append(5))
    sim.schedule(50, lambda: fired.append(50))
    sim.run(until=10)
    assert fired == [5]
    assert sim.now == 10
    sim.run()
    assert fired == [5, 50]


def test_run_while_predicate():
    sim = Simulator()
    count = []

    def tick():
        count.append(sim.now)
        sim.schedule(1, tick)

    sim.schedule(0, tick)
    sim.run_while(lambda: len(count) < 5)
    assert len(count) == 5


def test_horizon_stops_run():
    sim = Simulator(horizon=100)
    fired = []
    sim.schedule(50, lambda: fired.append(50))
    sim.schedule(150, lambda: fired.append(150))
    sim.run()
    assert fired == [50]


def test_pending_counts_live_events_only():
    sim = Simulator()
    sim.schedule(1, lambda: None)
    e = sim.schedule(2, lambda: None)
    e.cancel()
    assert sim.pending == 1


def test_next_event_time():
    sim = Simulator()
    assert sim.next_event_time() is None
    sim.schedule(7, lambda: None)
    assert sim.next_event_time() == 7


def test_next_event_time_skips_cancelled():
    sim = Simulator()
    e = sim.schedule(3, lambda: None)
    sim.schedule(9, lambda: None)
    e.cancel()
    assert sim.next_event_time() == 9


def test_events_fired_counter():
    sim = Simulator()
    for i in range(4):
        sim.schedule(i, lambda: None)
    sim.run()
    assert sim.events_fired == 4


def test_zero_delay_fires_at_current_time():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    fired = []
    sim.schedule(0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [10]


def test_determinism_across_identical_runs():
    def build_and_run():
        sim = Simulator()
        trail = []

        def spawn(depth):
            trail.append((sim.now, depth))
            if depth < 4:
                sim.schedule(2, lambda: spawn(depth + 1))
                sim.schedule(2, lambda: spawn(depth + 1))

        sim.schedule(0, lambda: spawn(0))
        sim.run()
        return trail

    assert build_and_run() == build_and_run()


def test_callback_exception_propagates():
    sim = Simulator()
    sim.schedule(1, lambda: (_ for _ in ()).throw(ValueError("boom")))
    with pytest.raises(ValueError):
        sim.run()


def test_pending_exact_through_cancellation_storm():
    """The O(1) live-event counter stays exact across every path a
    cancelled event can take: cancelled-then-popped, double-cancelled,
    cancelled after firing, and events pushed back by run(until)."""
    sim = Simulator()
    events = [sim.schedule(t, lambda: None) for t in range(1, 11)]
    assert sim.pending == 10
    for e in events[::2]:
        e.cancel()
        e.cancel()  # idempotent: must not double-count
    assert sim.pending == 5
    sim.run(until=6)  # fires 2,4,6; discards cancelled 1,3,5
    assert sim.pending == 2  # 8 and 10 still live (7, 9 cancelled)
    fired = events[1]
    fired.cancel()  # cancelling an already-fired event is a no-op
    assert sim.pending == 2
    sim.run()
    assert sim.pending == 0


def test_run_until_event_pushed_back_survives_cancel():
    """An event beyond `until` is reinserted; cancelling it afterwards
    must still be honoured (and keep the pending count exact)."""
    sim = Simulator()
    fired = []
    late = sim.schedule(100, lambda: fired.append("late"))
    sim.run(until=50)
    assert sim.now == 50 and sim.pending == 1
    late.cancel()
    assert sim.pending == 0
    sim.run()
    assert fired == []
