"""Differential tests: calendar queue vs reference heap engine.

The calendar queue (`repro.sim.calqueue`) must be *observationally
identical* to the reference binary heap — same firing order, same clock,
same pending counts — because the whole reproduction study rests on
bit-identical simulations under either engine (DESIGN.md §9).

The core test replays a seeded random op-script through both engines in
lockstep and compares every observable after every op.  The script is
adversarial on purpose: same-cycle bursts (seq tie-break), cancellation
storms (lazy deletion), huge time jumps (bucket-ring wrap + sparse-queue
direct search + width re-estimation on resize), and peek-then-schedule-
earlier (the scan-rewind path).
"""

import random

import pytest

from repro.errors import SimulationError
from repro.sim.calqueue import CalendarQueue, MIN_BUCKETS
from repro.sim.engine import ENGINE_ENV, HeapQueue, Simulator

ENGINES = ("heap", "calendar")


# ----------------------------------------------------------------------
# lockstep fuzz
# ----------------------------------------------------------------------
class _Recorder:
    """Collects (label, fire_time) pairs; the differential observable."""

    def __init__(self):
        self.fired = []

    def make(self, sim, label):
        def callback():
            self.fired.append((label, sim.now))
        return callback


def _lockstep(seed, ops=400):
    """Replay one op-script through both engines, comparing every step."""
    rng = random.Random(seed)
    script = []
    for _ in range(ops):
        roll = rng.random()
        if roll < 0.45:
            script.append(("schedule", rng.choice((0, 1, 1, 2, 4, 4, 8, 30))))
        elif roll < 0.55:
            # same-cycle burst: seq must break the tie identically
            delay = rng.choice((0, 2, 4))
            script.extend(("schedule", delay) for _ in range(rng.randint(2, 5)))
        elif roll < 0.62:
            # huge jump: forces ring wrap, direct search, resize widths
            script.append(("schedule", rng.choice((10_000, 100_000))))
        elif roll < 0.72:
            script.append(("cancel", rng.randrange(1 << 30)))
        elif roll < 0.80:
            # peek advances nothing but positions the calendar scan;
            # follow with an earlier schedule to hit the rewind path
            script.append(("peek_then_earlier", rng.choice((0, 1, 2))))
        elif roll < 0.92:
            script.append(("step", rng.randint(1, 8)))
        else:
            script.append(("run_while", rng.randint(1, 30)))

    sims = {engine: Simulator(engine=engine) for engine in ENGINES}
    recs = {engine: _Recorder() for engine in ENGINES}
    handles = {engine: [] for engine in ENGINES}
    label = 0

    def compare(op_idx, op):
        ref = sims["heap"]
        cal = sims["calendar"]
        context = f"op {op_idx} {op}: heap vs calendar"
        assert recs["heap"].fired == recs["calendar"].fired, context
        assert ref.now == cal.now, context
        assert ref.pending == cal.pending, context
        assert len(ref._queue) == len(cal._queue), context
        assert ref.events_fired == cal.events_fired, context
        assert ref.next_event_time() == cal.next_event_time(), context
        # express-transit lookahead: the heap's next_time is exact, the
        # calendar's is a monotonic lower bound — never an overshoot
        heap_nt = ref._queue.next_time()
        cal_nt = cal._queue.next_time()
        if heap_nt is None:
            assert cal_nt is None, context
        else:
            assert cal_nt is not None and cal_nt <= heap_nt, context

    for op_idx, (kind, arg) in enumerate(script):
        for engine, sim in sims.items():
            rec, hs = recs[engine], handles[engine]
            if kind == "schedule":
                hs.append(sim.schedule(arg, rec.make(sim, label)))
            elif kind == "cancel":
                live = [e for e in hs if not e.cancelled]
                if live:
                    live[arg % len(live)].cancel()
            elif kind == "peek_then_earlier":
                sim.next_event_time()
                hs.append(sim.schedule(arg, rec.make(sim, label)))
            elif kind == "step":
                for _ in range(arg):
                    sim.step()
            elif kind == "run_while":
                budget = [arg]

                def more(budget=budget):
                    budget[0] -= 1
                    return budget[0] >= 0

                sim.run_while(more)
        if kind in ("schedule", "peek_then_earlier"):
            label += 1
        compare(op_idx, (kind, arg))

    for sim in sims.values():
        sim.run()
    compare(len(script), ("drain", None))
    assert recs["heap"].fired  # the script actually fired something


@pytest.mark.parametrize("seed", range(8))
def test_lockstep_fuzz(seed):
    _lockstep(seed)


def test_lockstep_fuzz_long():
    _lockstep(seed=1234, ops=1500)


# ----------------------------------------------------------------------
# targeted calendar-queue mechanics (via the public queue interface)
# ----------------------------------------------------------------------
def _drain(queue):
    order = []
    while True:
        event = queue.pop()
        if event is None:
            return order
        order.append((event.time, event.seq))


def _events(times):
    sim = Simulator(engine="heap")  # any factory for Event objects
    return [sim.call_at(t, lambda: None) for t in times]


def test_queues_agree_on_total_order():
    times = [5, 5, 5, 0, 131072, 17, 17, 3, 99999, 64, 64, 64, 64, 2]
    expected = sorted((t, seq) for seq, t in enumerate(times, start=1))
    heap, cal = HeapQueue(), CalendarQueue()
    for event in _events(times):
        heap.push(event)
        cal.push(event)
    assert _drain(heap) == _drain(cal) == expected


def test_calendar_resize_grows_and_shrinks():
    cal = CalendarQueue()
    events = _events(range(0, 4 * MIN_BUCKETS * 3, 3))
    for event in events:
        cal.push(event)
    assert cal._nbuckets > MIN_BUCKETS  # grew past the initial ring
    assert _drain(cal) == [(e.time, e.seq) for e in events]
    assert cal._nbuckets == MIN_BUCKETS  # shrank back as it drained


def test_calendar_sparse_direct_search():
    # two events a ring-length apart: the year scan wraps fruitlessly
    # and the direct-search fallback must still find the later one
    cal = CalendarQueue()
    early, late = _events([1, 10_000_000])
    cal.push(early)
    cal.push(late)
    assert cal.pop() is early
    assert cal.pop() is late
    assert cal.pop() is None


def test_calendar_rewind_after_peek():
    cal = CalendarQueue()
    far, = _events([5_000])
    cal.push(far)
    assert cal.peek() is far  # positions the scan at cycle 5000's year
    near, = _events([3])
    near.seq = far.seq + 1
    cal.push(near)  # must rewind the scan
    assert cal.pop() is near
    assert cal.pop() is far


def test_heap_next_time_is_exact():
    heap = HeapQueue()
    assert heap.next_time() is None
    for event in _events([7, 3, 9]):
        heap.push(event)
    assert heap.next_time() == 3


def test_calendar_next_time_never_moves_the_scan():
    # the lookahead exists so a peek-per-hop fast path cannot thrash the
    # scan position (peek advances it; push then rewinds it): next_time
    # must leave (_cur, _top) untouched and still lower-bound the head
    cal = CalendarQueue()
    assert cal.next_time() is None
    far, = _events([5_000])
    cal.push(far)
    position = (cal._cur, cal._top)
    bound = cal.next_time()
    assert bound is not None and bound <= 5_000
    assert (cal._cur, cal._top) == position
    near, = _events([3])
    near.seq = far.seq + 1
    cal.push(near)  # an earlier push lowers the cached bound
    assert cal.next_time() <= 3
    assert cal.pop() is near
    assert cal.next_time() <= 5_000  # raised by pop, still a lower bound
    assert cal.pop() is far
    assert cal.next_time() is None


# ----------------------------------------------------------------------
# engine selection and closure-free scheduling API
# ----------------------------------------------------------------------
def test_engine_selection_kwarg():
    assert isinstance(Simulator(engine="heap")._queue, HeapQueue)
    assert isinstance(Simulator(engine="calendar")._queue, CalendarQueue)


def test_engine_selection_env(monkeypatch):
    monkeypatch.setenv(ENGINE_ENV, "heap")
    assert isinstance(Simulator()._queue, HeapQueue)
    monkeypatch.delenv(ENGINE_ENV)
    assert isinstance(Simulator()._queue, CalendarQueue)  # default


def test_unknown_engine_rejected():
    with pytest.raises(SimulationError):
        Simulator(engine="wheel")


@pytest.mark.parametrize("engine", ENGINES)
def test_call_passes_arguments(engine):
    sim = Simulator(engine=engine)
    seen = []
    sim.call(3, seen.append, "a")
    sim.call_at(5, lambda x, y: seen.append((x, y)), 1, 2)
    sim.run()
    assert seen == ["a", (1, 2)]
    assert sim.now == 5


@pytest.mark.parametrize("engine", ENGINES)
def test_peak_pending_high_water(engine):
    sim = Simulator(engine=engine)
    for t in (4, 1, 9, 2):
        sim.call_at(t, lambda: None)
    sim.run()
    assert sim.peak_pending == 4
    assert sim.pending == 0


@pytest.mark.parametrize("engine", ENGINES)
def test_free_list_recycles_unreferenced_events(engine):
    sim = Simulator(engine=engine)
    for _ in range(50):
        sim.call(1, int)  # handle dropped immediately -> recyclable
        sim.run()
    assert len(sim._free) >= 1
    before = len(sim._free)
    sim.call(1, int)
    assert len(sim._free) == before - 1  # scheduling reuses the pool


def test_kept_handle_is_never_recycled():
    sim = Simulator()
    kept = sim.call(1, int)
    sim.run()
    assert kept not in sim._free  # a held reference blocks recycling
    kept.cancel()  # stale handle stays inert (event already fired)
    sim.call(1, int)
    sim.run()
    assert sim.events_fired == 2


# ----------------------------------------------------------------------
# whole-machine cross-engine identity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("express", ("off", "on"))
def test_machine_cycle_identical_across_engines(monkeypatch, express):
    from repro.apps.synthetic import SharedReaders
    from repro.network.fabric import EXPRESS_ENV
    from repro.system.machine import Machine
    from repro.system.presets import switch_cache_config

    monkeypatch.setenv(EXPRESS_ENV, express)
    results = {}
    for engine in ENGINES:
        monkeypatch.setenv(ENGINE_ENV, engine)
        machine = Machine(switch_cache_config(4), sanitize=False)
        stats = machine.run(SharedReaders(nbytes=2048, rounds=2))
        results[engine] = (
            stats.exec_time,
            machine.sim.events_fired,
            machine.sim.now,
        )
    heap, cal = results["heap"], results["calendar"]
    if express == "off":
        assert heap == cal
    else:
        # with express transit the engines fuse different hop counts (the
        # calendar's next_time bound is conservative where the heap's is
        # exact), so events_fired is engine-dependent — timing is not
        assert (heap[0], heap[2]) == (cal[0], cal[2])
