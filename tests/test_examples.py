"""Smoke tests for the runnable examples (the cheap ones).

Each example is imported and its ``main()`` executed with stdout
captured; the slow full-size examples (`compare_designs`, `size_sweep`)
are exercised indirectly by the experiment harness instead.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def load_example(name):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_directory_complete():
    present = {p.stem for p in EXAMPLES.glob("*.py")}
    assert {"quickstart", "compare_designs", "size_sweep",
            "custom_workload", "network_anatomy", "clusters",
            "protocol_study"} <= present


def test_network_anatomy_runs(capsys):
    load_example("network_anatomy").main()
    out = capsys.readouterr().out
    assert "Uncontended worm latencies" in out
    assert "Hottest links" in out


def test_clusters_example_runs(capsys):
    load_example("clusters").main()
    out = capsys.readouterr().out
    assert "cluster organizations" in out
    assert "16 x 1" in out


def test_custom_workload_runs(capsys):
    load_example("custom_workload").main()
    out = capsys.readouterr().out
    assert "read service distribution" in out
    assert "switch hits by stage" in out


@pytest.mark.parametrize("name", ["quickstart", "compare_designs",
                                  "size_sweep", "protocol_study"])
def test_slow_examples_are_importable(name):
    """Import (without running main) to catch syntax/API drift cheaply."""
    module = load_example(name)
    assert callable(module.main)
