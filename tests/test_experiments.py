"""Tests for the experiment harness (registry, static tables, CLI)."""

import pytest

from repro.experiments import APP_ORDER, APP_SCALES, EXPERIMENTS, make_app, run_experiment
from repro.experiments.cli import build_parser, main
from repro.experiments.common import RunRecord, run
from repro.system.presets import base_config


class TestRegistry:
    def test_all_design_md_experiments_present(self):
        expected = {"T1", "T2", "F3", "F4", "F5",
                    "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9",
                    "A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8"}
        assert set(EXPERIMENTS) == expected

    def test_every_entry_has_title_and_runner(self):
        for exp_id, (title, runner) in EXPERIMENTS.items():
            assert title
            assert callable(runner)

    def test_app_scales_cover_all_apps(self):
        for scale in ("quick", "full"):
            assert set(APP_SCALES[scale]) == set(APP_ORDER)

    def test_make_app_instantiates(self):
        app = make_app("GE", "quick")
        assert app.name == "GE"
        assert app.n == APP_SCALES["quick"]["GE"]["n"]


class TestStaticExperiments:
    def test_t1_rows(self):
        result = run_experiment("T1")
        assert result.exp_id == "T1"
        assert "snoop" in result.text
        # wider output width -> fewer cycles
        hits = {r[1]: r[3] for r in result.data["rows"] if r[0] == "regular read hit"}
        assert hits["256-bit"] < hits["128-bit"] < hits["64-bit"]

    def test_t2_lists_all_apps(self):
        result = run_experiment("T2")
        for name in APP_ORDER:
            assert name in result.text
        assert "release consistency" in result.text


class TestRunMemoization:
    def test_run_returns_record(self):
        record = run("GE", "quick", base_config())
        assert isinstance(record, RunRecord)
        assert record.exec_time > 0
        assert record.coherence_violations == 0

    def test_run_is_memoized(self):
        first = run("GE", "quick", base_config())
        second = run("GE", "quick", base_config())
        assert first is second


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E5" in out and "T2" in out

    def test_run_requires_selection(self, capsys):
        assert main(["run"]) == 2

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["run", "--exp", "E99"]) == 2

    def test_run_single_static(self, capsys):
        assert main(["run", "--exp", "T1"]) == 0
        out = capsys.readouterr().out
        assert "CAESAR" in out

    def test_parser_scale_choices(self):
        parser = build_parser()
        args = parser.parse_args(["run", "--all", "--scale", "full"])
        assert args.scale == "full"
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "--scale", "huge"])
