"""Differential tests: express transit (event fusion) vs plain routing.

The express-transit PR (DESIGN.md §12) lets a worm's remaining hops be
processed inline — without scheduling per-hop events — whenever the
event queue's next pending time is provably later than the worm's
worst-case transit.  The optimisation must be *invisible*: with
``REPRO_EXPRESS=off`` every hop goes through the event queue exactly as
before, and the two modes must agree on every timestamp, statistic, and
trace byte.  Only ``events_fired`` may differ (fusion removes events;
that is the point).

These tests hold the two modes together:

* full machines run every paper app under both modes and must agree on
  cycle counts and every statistics counter (``events_fired`` excluded);
* the MSI/MESI × switch-cache on/off configuration matrix agrees too,
  so fusion is sound with and without mid-route CAESAR intercepts;
* a traced run must produce a bit-identical tracer event stream;
* a seeded fuzzer injects bursty cross-traffic that forces mid-route
  bailouts and compares every per-message timestamp;
* targeted tests pin the two fusion mechanisms (mid-route bailout on a
  planted event; delivery fusion's clock warp on a quiescent queue).
"""

import random

import pytest

from repro.errors import ConfigError
from repro.network.fabric import (
    EXPRESS_ENV,
    EXPRESS_MODES,
    Fabric,
    express_enabled,
)
from repro.network.message import Message, MsgKind, flits_for
from repro.network.topology import BminTopology
from repro.sim.engine import Simulator
from repro.trace import Tracer

SIX_APPS = ("FWA", "GS", "GE", "MM", "SOR", "FFT")


# ----------------------------------------------------------------------
# mode selection
# ----------------------------------------------------------------------
def test_express_env_selection(monkeypatch):
    monkeypatch.delenv(EXPRESS_ENV, raising=False)
    assert express_enabled()  # fusion is the default
    for mode in EXPRESS_MODES:
        monkeypatch.setenv(EXPRESS_ENV, mode)
        assert express_enabled() == (mode == "on")
    monkeypatch.setenv(EXPRESS_ENV, "fast")
    with pytest.raises(ConfigError):
        express_enabled()


def test_horizon_disables_fusion(monkeypatch):
    # a horizon plants a stop event the fabric cannot see coming, so a
    # bounded simulator must never fuse past it
    monkeypatch.setenv(EXPRESS_ENV, "on")
    sim = Simulator(horizon=10_000)
    fabric = Fabric(sim, BminTopology(4))
    assert not fabric._express
    assert Fabric(Simulator(), BminTopology(4))._express


# ----------------------------------------------------------------------
# full machines: the six paper apps, both modes
# ----------------------------------------------------------------------
def _machine_fingerprint(config, app_name, tracer=None):
    """Every machine observable except ``events_fired`` (mode-dependent)."""
    from repro.experiments.common import make_app
    from repro.system.machine import Machine

    machine = Machine(config, sanitize=False, tracer=tracer)
    stats = machine.run(make_app(app_name, "quick"))
    assert machine.check_coherence() == []
    return (
        stats.exec_time,
        machine.sim.now,
        dict(stats.read_counts),
        tuple(stats.per_node_reads),
        machine.fabric.stats.msgs_delivered,
        machine.fabric.stats.switch_hits,
        dict(machine.fabric.stats.hits_by_stage),
        machine.pool._next_id,  # the full message-id stream length
    )


@pytest.mark.parametrize("app_name", SIX_APPS)
def test_machine_identical_across_express_modes(app_name, monkeypatch):
    from repro.system.presets import switch_cache_config

    results = {}
    for mode in EXPRESS_MODES:
        monkeypatch.setenv(EXPRESS_ENV, mode)
        results[mode] = _machine_fingerprint(switch_cache_config(4), app_name)
    assert results["on"] == results["off"]


@pytest.mark.parametrize("protocol", ("msi", "mesi"))
@pytest.mark.parametrize("preset", ("base", "sc"))
def test_config_matrix_identical_across_express_modes(
    protocol, preset, monkeypatch
):
    # with switch caches a worm can be intercepted mid-route (the fused
    # loop must bail out exactly where the evented path would serve it);
    # without them the fused loop runs pure grant arithmetic end to end
    from repro.system.presets import base_config, switch_cache_config

    make = base_config if preset == "base" else switch_cache_config
    results = {}
    for mode in EXPRESS_MODES:
        monkeypatch.setenv(EXPRESS_ENV, mode)
        results[mode] = _machine_fingerprint(
            make(4, protocol=protocol), "GS"
        )
    assert results["on"] == results["off"]


def test_trace_stream_identical_across_express_modes(monkeypatch):
    # the fused loop emits the same tracer instants at the same
    # timestamps in the same order — byte-identical observability
    import itertools

    from repro.coherence import messages
    from repro.system.presets import switch_cache_config

    streams = {}
    for mode in EXPRESS_MODES:
        monkeypatch.setenv(EXPRESS_ENV, mode)
        # transaction ids (used as trace flow ids) come from a global
        # counter; restart it so the two runs' streams are comparable
        monkeypatch.setattr(messages, "_txn_ids", itertools.count())
        tracer = Tracer()
        _machine_fingerprint(switch_cache_config(4), "GS", tracer=tracer)
        streams[mode] = tracer.events
    assert streams["on"] == streams["off"]


# ----------------------------------------------------------------------
# fabric-level fuzzing: bursty cross-traffic forces mid-route bailouts
# ----------------------------------------------------------------------
def _run_fuzzed_fabric(seed, n=16, bursts=40):
    """One seeded bursty run; returns per-message timing + fabric stats.

    Bursts inject several worms in a tight window, so the queue's next
    pending time repeatedly lands *inside* other worms' transit windows:
    the fused loop must bail out mid-route and fall back to per-hop
    events, interleaving with the cross-traffic exactly as the evented
    path would.
    """
    rng = random.Random(seed)
    sim = Simulator()
    fabric = Fabric(sim, BminTopology(n))
    log = []
    for node in range(n):
        fabric.attach_node(
            node, lambda m, nid=node: log.append((nid, m.id, sim.now))
        )

    msgs = []
    when = 0
    next_id = 0
    for _ in range(bursts):
        when += rng.randrange(0, 48)
        for _ in range(rng.randrange(1, 5)):
            src = rng.randrange(n)
            dst = rng.randrange(n)
            if dst == src:
                dst = (src + 1) % n
            kind = rng.choice(
                (MsgKind.READ, MsgKind.DATA_S, MsgKind.INV, MsgKind.INV_ACK)
            )
            msg = Message(
                kind, src, dst, addr=rng.randrange(64) * 64,
                flits=flits_for(kind, 64),
            )
            msg.id = next_id
            next_id += 1
            msgs.append(msg)
            sim.call_at(when + rng.randrange(0, 8), fabric.inject, msg)
    sim.run()

    stats = fabric.stats
    return (
        tuple(log),
        tuple((m.id, m.injected_at, m.delivered_at) for m in msgs),
        sim.now,
        (stats.msgs_injected, stats.msgs_delivered, stats.flits_injected),
    )


@pytest.mark.parametrize("seed", range(8))
def test_fuzzed_cross_traffic_identical_across_express_modes(
    seed, monkeypatch
):
    results = {}
    for mode in EXPRESS_MODES:
        monkeypatch.setenv(EXPRESS_ENV, mode)
        results[mode] = _run_fuzzed_fabric(seed)
    assert results["on"] == results["off"]


# ----------------------------------------------------------------------
# the two fusion mechanisms, pinned
# ----------------------------------------------------------------------
def _lone_worm(monkeypatch, mode, planted_at=None):
    monkeypatch.setenv(EXPRESS_ENV, mode)
    sim = Simulator()
    fabric = Fabric(sim, BminTopology(16))
    delivered = []
    for node in range(16):
        fabric.attach_node(
            node, lambda m, nid=node: delivered.append((nid, sim.now))
        )
    if planted_at is not None:
        sim.call_at(planted_at, lambda: None)
    msg = Message(MsgKind.READ, 0, 13, 0x40, flits_for(MsgKind.READ, 64))
    fabric.inject(msg)
    sim.run()
    return sim, msg, delivered


def test_quiescent_queue_fuses_to_delivery(monkeypatch):
    # with nothing else pending the whole route — including the final
    # delivery — collapses into the inject call: the one fired event is
    # the injection itself, and the clock warps to the delivery time
    off_sim, off_msg, off_log = _lone_worm(monkeypatch, "off")
    on_sim, on_msg, on_log = _lone_worm(monkeypatch, "on")
    assert on_msg.delivered_at == off_msg.delivered_at
    assert on_log == off_log
    assert on_sim.now == off_sim.now == on_msg.delivered_at
    assert on_sim.events_fired < off_sim.events_fired


def test_planted_event_forces_mid_route_bailout(monkeypatch):
    # an event planted inside the worm's transit window caps the fused
    # loop: hops before it fuse, the rest go through the queue — and the
    # observable timing is unchanged
    off_sim, off_msg, off_log = _lone_worm(monkeypatch, "off", planted_at=9)
    on_sim, on_msg, on_log = _lone_worm(monkeypatch, "on", planted_at=9)
    assert on_msg.delivered_at == off_msg.delivered_at
    assert on_log == off_log
    assert on_sim.now == off_sim.now
    # the bailout re-enters the event queue: at least the planted event
    # plus one per-hop event fire alongside the injection
    assert on_sim.events_fired > 2
