"""Tests for the BMIN fabric: timing, tracing, and CAESAR integration."""

import pytest

from repro.core.caesar import CaesarEngine
from repro.core.switchcache import SwitchCacheGeometry
from repro.errors import NetworkError
from repro.network.fabric import Fabric
from repro.network.message import Message, MsgKind, flits_for
from repro.network.topology import BminTopology
from repro.sim.engine import Simulator


def make_fabric(n=16, with_caches=False):
    sim = Simulator()
    fabric = Fabric(sim, BminTopology(n))
    inbox = {node: [] for node in range(n)}
    for node in range(n):
        fabric.attach_node(node, lambda m, nid=node: inbox[nid].append(m))
    if with_caches:
        fabric.install_cache_engines(
            lambda sid: CaesarEngine(sim, sid, SwitchCacheGeometry(size=2048))
        )
    return sim, fabric, inbox


def send(fabric, kind, src, dst, addr=0x40, data=None, block=64):
    msg = Message(kind, src, dst, addr, flits_for(kind, block), data=data)
    fabric.inject(msg)
    return msg


class TestBasicDelivery:
    def test_message_delivered_to_destination(self):
        sim, fabric, inbox = make_fabric()
        msg = send(fabric, MsgKind.READ, 0, 15)
        sim.run()
        assert inbox[15] == [msg]
        assert fabric.stats.msgs_delivered == 1

    def test_local_injection_rejected(self):
        _sim, fabric, _inbox = make_fabric()
        with pytest.raises(NetworkError):
            send(fabric, MsgKind.READ, 3, 3)

    def test_route_trace_not_recorded_by_default(self):
        # the per-hop trace append is pure hot-path overhead when nobody
        # reads it: with no tracer (and no sanitizer) it stays empty
        sim, fabric, _inbox = make_fabric()
        msg = send(fabric, MsgKind.READ, 2, 13)
        sim.run()
        assert msg.trace == []
        assert msg.route == fabric.topo.path(2, 13)

    def test_trace_matches_topology_path(self):
        sim, fabric, _inbox = make_fabric()
        fabric._record_route = True  # as an attached tracer or SCSan would
        msg = send(fabric, MsgKind.READ, 2, 13)
        sim.run()
        assert msg.trace == fabric.topo.path(2, 13)

    def test_uncontended_latency_formula(self):
        sim, fabric, _inbox = make_fabric()
        msg = send(fabric, MsgKind.READ, 0, 1)  # single switch
        sim.run()
        # inject link (1 flit = 4 cyc serialization, header enters switch at
        # 4), switch delay 4, ejection link 1 flit: tail at 8+4 = 12
        assert msg.injected_at == 0
        assert msg.delivered_at == 12

    def test_longer_path_costs_more(self):
        sim, fabric, _inbox = make_fabric()
        near = send(fabric, MsgKind.READ, 0, 1)
        far = send(fabric, MsgKind.READ, 0, 15)
        sim.run()
        assert far.delivered_at > near.delivered_at

    def test_data_message_serialization_dominates(self):
        sim, fabric, _inbox = make_fabric()
        msg = send(fabric, MsgKind.DATA_S, 0, 1, data=1)
        sim.run()
        # 9 flits * 4 cycles on the ejection link alone
        assert msg.delivered_at >= 9 * 4

    def test_missing_handler_raises(self):
        sim = Simulator()
        fabric = Fabric(sim, BminTopology(4))
        send(fabric, MsgKind.READ, 0, 3)
        with pytest.raises(NetworkError):
            sim.run()

    def test_fifo_same_path(self):
        sim, fabric, inbox = make_fabric()
        first = send(fabric, MsgKind.DATA_S, 0, 15, data=1)
        second = send(fabric, MsgKind.READ, 0, 15)
        sim.run()
        assert inbox[15] == [first, second]


class TestSwitchCacheIntegration:
    def test_deposit_then_intercept(self):
        sim, fabric, inbox = make_fabric(with_caches=True)
        # a DATA_S reply from node 15 (acting as home) to node 0 passes
        # through switches and deposits its block
        send(fabric, MsgKind.DATA_S, 15, 0, addr=0x40, data=7)
        sim.run()
        assert fabric.stats.switch_hits == 0
        deposited = fabric.switch_cache_blocks()
        assert any(addr == 0x40 and v == 7 for _sid, addr, v in deposited)
        # a READ for the same block from node 1 toward home 15 now hits
        request = send(fabric, MsgKind.READ, 1, 15, addr=0x40)
        sim.run()
        assert fabric.stats.switch_hits == 1
        # node 1 received a fabricated DATA_S with the deposited payload
        replies = [m for m in inbox[1] if m.kind is MsgKind.DATA_S]
        assert len(replies) == 1
        assert replies[0].data == 7
        assert replies[0].payload["served_by"] == "switch"
        # the original request arrived at the home as a DIR_UPDATE
        updates = [m for m in inbox[15] if m.kind is MsgKind.DIR_UPDATE]
        assert updates == [request]
        assert request.payload["requester"] == 1

    def test_inv_purges_deposited_copies(self):
        sim, fabric, inbox = make_fabric(with_caches=True)
        send(fabric, MsgKind.DATA_S, 15, 0, addr=0x40, data=7)
        sim.run()
        assert fabric.switch_cache_blocks()
        # the home invalidates sharer 0: the INV walks the same path
        send(fabric, MsgKind.INV, 15, 0, addr=0x40)
        sim.run()
        assert fabric.switch_cache_blocks() == []
        # a later read misses everywhere and reaches the home intact
        request = send(fabric, MsgKind.READ, 1, 15, addr=0x40)
        sim.run()
        assert request.kind is MsgKind.READ
        assert request in inbox[15]

    def test_reply_from_switch_deposits_downstream(self):
        sim, fabric, _inbox = make_fabric(with_caches=True)
        send(fabric, MsgKind.DATA_S, 15, 0, addr=0x40, data=7)
        sim.run()
        deposited = {sid for sid, _a, _v in fabric.switch_cache_blocks()}
        # pick a requester whose path to the home joins the deposited tree
        # only after several hops, so the fabricated reply has a tail of
        # switches to walk back through (node 5 for the 16-node butterfly)
        requester = 5
        path = fabric.topo.path(requester, 15)
        first_common = next(i for i, sid in enumerate(path) if sid in deposited)
        assert first_common > 0
        before = len(fabric.switch_cache_blocks())
        send(fabric, MsgKind.READ, requester, 15, addr=0x40)
        sim.run()
        # the reply retraced the request and deposited at every switch of
        # the traversed prefix
        after = len(fabric.switch_cache_blocks())
        assert after == before + first_common

    def test_data_x_never_deposited(self):
        sim, fabric, _inbox = make_fabric(with_caches=True)
        send(fabric, MsgKind.DATA_X, 15, 0, addr=0x40, data=7)
        sim.run()
        assert fabric.switch_cache_blocks() == []

    def test_dir_update_flit_shrink(self):
        sim, fabric, _inbox = make_fabric(with_caches=True)
        send(fabric, MsgKind.DATA_S, 15, 0, addr=0x40, data=7)
        sim.run()
        request = send(fabric, MsgKind.READ, 1, 15, addr=0x40)
        sim.run()
        assert request.kind is MsgKind.DIR_UPDATE
        assert request.flits == 1

    def test_stage_attribution(self):
        sim, fabric, _inbox = make_fabric(with_caches=True)
        send(fabric, MsgKind.DATA_S, 15, 0, addr=0x40, data=7)
        sim.run()
        send(fabric, MsgKind.READ, 1, 15, addr=0x40)
        sim.run()
        assert sum(fabric.stats.hits_by_stage.values()) == 1
        (stage,) = fabric.stats.hits_by_stage
        assert 0 <= stage < fabric.topo.stages

    def test_intercept_only_for_reads(self):
        sim, fabric, inbox = make_fabric(with_caches=True)
        send(fabric, MsgKind.DATA_S, 15, 0, addr=0x40, data=7)
        sim.run()
        readx = send(fabric, MsgKind.READX, 1, 15, addr=0x40)
        sim.run()
        assert readx.kind is MsgKind.READX  # not converted
        assert readx in inbox[15]
        assert fabric.stats.switch_hits == 0


class TestInjectionQueueing:
    def test_injection_link_serializes(self):
        sim, fabric, _inbox = make_fabric()
        a = send(fabric, MsgKind.DATA_S, 0, 15, data=1)
        b = send(fabric, MsgKind.DATA_S, 0, 15, data=2)
        sim.run()
        assert b.injected_at >= a.injected_at + a.flits * 4

    def test_injection_queue_delay_stat(self):
        sim, fabric, _inbox = make_fabric()
        for _ in range(4):
            send(fabric, MsgKind.DATA_S, 0, 15, data=1)
        sim.run()
        assert fabric.injection_queue_delay() > 0
