"""Fabric behaviour under load: hotspots, ordering, utilization."""

from repro.network.fabric import Fabric
from repro.network.message import Message, MsgKind, flits_for
from repro.network.topology import BminTopology
from repro.sim.engine import Simulator


def make_fabric(n=16):
    sim = Simulator()
    fabric = Fabric(sim, BminTopology(n))
    inbox = {node: [] for node in range(n)}
    for node in range(n):
        fabric.attach_node(node, lambda m, nid=node: inbox[nid].append(m))
    return sim, fabric, inbox


def data_msg(src, dst, addr=0x40):
    return Message(MsgKind.DATA_S, src, dst, addr,
                   flits_for(MsgKind.DATA_S, 64), data=0)


class TestHotspot:
    def test_all_to_one_serializes_at_destination(self):
        sim, fabric, inbox = make_fabric()
        for src in range(1, 16):
            fabric.inject(data_msg(src, 0))
        sim.run()
        assert len(inbox[0]) == 15
        arrivals = sorted(m.delivered_at for m in inbox[0])
        # the ejection link serializes: arrivals are spaced at least one
        # worm's serialization time apart once the link saturates
        worm_time = 9 * 4
        late = arrivals[5:]
        gaps = [b - a for a, b in zip(late, late[1:])]
        assert all(gap >= worm_time for gap in gaps)

    def test_hotspot_slower_than_uniform(self):
        sim_h, fabric_h, inbox_h = make_fabric()
        for src in range(1, 16):
            fabric_h.inject(data_msg(src, 0))
        sim_h.run()
        hotspot_done = max(m.delivered_at for m in inbox_h[0])

        sim_u, fabric_u, inbox_u = make_fabric()
        for src in range(1, 16):
            fabric_u.inject(data_msg(src, (src + 8) % 16))
        sim_u.run()
        uniform_done = max(
            m.delivered_at for msgs in inbox_u.values() for m in msgs
        )
        assert hotspot_done > uniform_done

    def test_link_utilization_reported(self):
        sim, fabric, _inbox = make_fabric()
        for src in range(1, 16):
            fabric.inject(data_msg(src, 0))
        sim.run()
        ejection = fabric.switches[(0, 0)].output_to(0)
        assert ejection.utilization() > 0.5


class TestOrdering:
    def test_same_path_fifo_under_load(self):
        sim, fabric, inbox = make_fabric()
        sent = [data_msg(3, 12, addr=i * 64) for i in range(10)]
        for msg in sent:
            fabric.inject(msg)
        sim.run()
        assert inbox[12] == sent

    def test_distinct_paths_can_reorder(self):
        # a long-path message injected first can arrive after a short-path
        # message injected later from another node: no global ordering
        sim, fabric, inbox = make_fabric()
        far = data_msg(15, 0)
        fabric.inject(far)
        near = data_msg(1, 0)
        fabric.inject(near)
        sim.run()
        assert inbox[0][0] is near

    def test_flit_conservation(self):
        sim, fabric, inbox = make_fabric()
        for src in range(1, 16):
            fabric.inject(data_msg(src, 0))
            fabric.inject(
                Message(MsgKind.READ, src, 0, 0x80,
                        flits_for(MsgKind.READ, 64))
            )
        sim.run()
        delivered_flits = sum(m.flits for m in inbox[0])
        assert delivered_flits == fabric.stats.flits_injected
        assert fabric.stats.msgs_delivered == 30


class TestIntermediateStages:
    def test_turnaround_switch_carries_cross_traffic(self):
        sim, fabric, _inbox = make_fabric()
        # traffic between the two halves of the machine must climb to
        # stage 3 switches
        fabric.inject(data_msg(0, 15))
        fabric.inject(data_msg(7, 8))
        sim.run()
        top_traffic = sum(
            sw.msgs_routed
            for sid, sw in fabric.switches.items()
            if sid[0] == 3
        )
        assert top_traffic == 2

    def test_local_traffic_stays_low(self):
        sim, fabric, _inbox = make_fabric()
        fabric.inject(data_msg(0, 1))  # same stage-0 switch
        sim.run()
        for sid, sw in fabric.switches.items():
            if sid[0] > 0:
                assert sw.msgs_routed == 0


class TestUtilizationReports:
    def test_utilization_by_stage_covers_all_stages(self):
        sim, fabric, _inbox = make_fabric()
        fabric.inject(data_msg(0, 15))
        sim.run()
        by_stage = fabric.utilization_by_stage()
        assert set(by_stage) == {0, 1, 2, 3}
        assert all(0.0 <= u <= 1.0 for u in by_stage.values())

    def test_hotspot_concentrates_utilization_low_stages(self):
        sim, fabric, _inbox = make_fabric()
        for src in range(1, 16):
            fabric.inject(data_msg(src, 0))
        sim.run()
        by_stage = fabric.utilization_by_stage()
        # traffic funnels toward node 0: stage-0 links near the sink are
        # the busiest on average? the funnel makes low stages busier
        assert by_stage[0] > by_stage[3]

    def test_hottest_links_sorted_and_bounded(self):
        sim, fabric, _inbox = make_fabric()
        for src in range(1, 16):
            fabric.inject(data_msg(src, 0))
        sim.run()
        hot = fabric.hottest_links(top=3)
        assert len(hot) == 3
        queues = [row[3] for row in hot]
        assert queues == sorted(queues, reverse=True)

    def test_idle_fabric_has_no_hot_links(self):
        _sim, fabric, _inbox = make_fabric()
        assert fabric.hottest_links() == []
