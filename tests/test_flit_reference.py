"""Validation of the message-level fabric against the flit-level reference.

DESIGN.md's wormhole substitution claims the message-granularity model
preserves latency pipelines and hot-spot behaviour.  These tests run the
same microbenchmark workloads on both models and check the claim:

* uncontended latencies agree within one hop's pipeline slack;
* distance ordering and serialization behaviour are identical;
* hot-spot completion times agree within a modest factor.
"""

import pytest

from repro.network.fabric import Fabric
from repro.network.flitref import FlitNetwork
from repro.network.message import Message, MsgKind, flits_for
from repro.network.topology import BminTopology
from repro.sim.engine import Simulator


def run_workload(model_cls, traffic, n=16):
    """Run [(src, dst, kind)] on a fresh network; returns delivered msgs."""
    sim = Simulator()
    network = model_cls(sim, BminTopology(n))
    delivered = []
    for node in range(n):
        network.attach_node(node, delivered.append)
    messages = []
    for src, dst, kind in traffic:
        msg = Message(kind, src, dst, 0x40, flits_for(kind, 64), data=0)
        messages.append(msg)
        network.inject(msg)
    sim.run()
    assert len(delivered) == len(traffic)
    return messages


def latency(msg):
    return msg.delivered_at - msg.created_at


class TestUncontendedAgreement:
    @pytest.mark.parametrize("dst", [1, 2, 5, 15])
    @pytest.mark.parametrize("kind", [MsgKind.READ, MsgKind.DATA_S])
    def test_single_message_latency_close(self, dst, kind):
        (fast,) = run_workload(Fabric, [(0, dst, kind)])
        (ref,) = run_workload(FlitNetwork, [(0, dst, kind)])
        hops = len(BminTopology(16).path(0, dst))
        # allow one pipeline-slack cycle set per hop plus a constant
        tolerance = 2 * hops + 10
        assert abs(latency(fast) - latency(ref)) <= tolerance, (
            f"fabric {latency(fast)} vs reference {latency(ref)}"
        )

    def test_distance_ordering_agrees(self):
        for model in (Fabric, FlitNetwork):
            msgs = run_workload(
                model,
                [(0, 1, MsgKind.DATA_S), (0, 5, MsgKind.DATA_S),
                 (0, 15, MsgKind.DATA_S)],
            )
            lats = [latency(m) for m in msgs]
            assert lats[0] < lats[1] < lats[2], (model.__name__, lats)

    def test_long_worms_cost_serialization_in_both(self):
        for model in (Fabric, FlitNetwork):
            short, long_ = run_workload(
                model, [(0, 15, MsgKind.READ), (0, 15, MsgKind.DATA_S)]
            )
            # the 9-flit worm pays at least 8 extra flit times
            assert latency(long_) >= latency(short) + 8 * 4 - 8, model


class TestContentionAgreement:
    def test_hotspot_completion_times_track(self):
        traffic = [(src, 0, MsgKind.DATA_S) for src in range(1, 16)]
        fast = run_workload(Fabric, traffic)
        ref = run_workload(FlitNetwork, traffic)
        fast_done = max(m.delivered_at for m in fast)
        ref_done = max(m.delivered_at for m in ref)
        # the ejection link's serialization dominates in both models:
        # 15 worms x 36 cycles ~ 540; agreement within 40 %
        assert fast_done <= ref_done  # the reference adds backpressure
        assert ref_done <= 1.4 * fast_done, (fast_done, ref_done)

    def test_hotspot_throughput_bound_respected_in_both(self):
        traffic = [(src, 0, MsgKind.DATA_S) for src in range(1, 16)]
        floor = 15 * 9 * 4  # worms x flits x cycles/flit on the last link
        for model in (Fabric, FlitNetwork):
            msgs = run_workload(model, traffic)
            done = max(m.delivered_at for m in msgs)
            assert done >= floor * 0.9, (model.__name__, done)

    def test_same_path_fifo_in_reference(self):
        sim = Simulator()
        network = FlitNetwork(sim, BminTopology(16))
        delivered = []
        for node in range(16):
            network.attach_node(node, delivered.append)
        sent = []
        for i in range(6):
            msg = Message(MsgKind.DATA_S, 3, 12, i * 64,
                          flits_for(MsgKind.DATA_S, 64), data=0)
            sent.append(msg)
            network.inject(msg)
        sim.run()
        assert delivered == sent


class TestReferenceMechanics:
    def test_backpressure_limits_buffered_flits(self):
        """At no instant may a VC hold more than its depth."""
        sim = Simulator()
        network = FlitNetwork(sim, BminTopology(4), vc_depth=4)
        for node in range(4):
            network.attach_node(node, lambda m: None)
        for src in (1, 2, 3):
            for i in range(3):
                network.inject(
                    Message(MsgKind.DATA_S, src, 0, i * 64,
                            flits_for(MsgKind.DATA_S, 64), data=0)
                )
        overfull = []

        def check():
            for channel in network.channels.values():
                for vc in channel.vcs:
                    if len(vc) > network.vc_depth:
                        overfull.append(len(vc))
            if network.delivered < 9:
                sim.schedule(1, check)

        sim.schedule(1, check)
        sim.run()
        assert network.delivered == 9
        assert overfull == []

    def test_reference_rejects_local_messages(self):
        from repro.errors import NetworkError

        sim = Simulator()
        network = FlitNetwork(sim, BminTopology(4))
        with pytest.raises(NetworkError):
            network.inject(Message(MsgKind.READ, 1, 1, 0, 1))


class TestFlitPacing:
    def test_body_flits_spaced_by_link_rate(self):
        """Flits cross each link at one per cycles_per_flit."""
        sim = Simulator()
        network = FlitNetwork(sim, BminTopology(4))
        delivered = []
        for node in range(4):
            network.attach_node(node, delivered.append)
        msg = Message(MsgKind.DATA_S, 0, 3, 0x40,
                      flits_for(MsgKind.DATA_S, 64), data=0)
        network.inject(msg)
        sim.run()
        assert delivered == [msg]
        # 9 flits at 4 cycles each on the final link alone
        assert msg.delivered_at - msg.injected_at >= 9 * 4

    def test_channel_arrival_accounting(self):
        sim = Simulator()
        network = FlitNetwork(sim, BminTopology(4))
        for node in range(4):
            network.attach_node(node, lambda m: None)
        msg = Message(MsgKind.DATA_S, 0, 3, 0x40,
                      flits_for(MsgKind.DATA_S, 64), data=0)
        network.inject(msg)
        sim.run()
        hops = len(BminTopology(4).path(0, 3)) + 1  # switches + ejection
        total_flit_moves = sum(c.arrivals for c in network.channels.values())
        assert total_flit_moves == msg.flits * hops

    def test_two_vcs_interleave_independent_worms(self):
        sim = Simulator()
        network = FlitNetwork(sim, BminTopology(4), vc_count=2)
        delivered = []
        for node in range(4):
            network.attach_node(node, delivered.append)
        worms = []
        for i in range(2):
            msg = Message(MsgKind.DATA_S, 0, 3, i * 64,
                          flits_for(MsgKind.DATA_S, 64), data=0)
            worms.append(msg)
            network.inject(msg)
        sim.run()
        assert len(delivered) == 2


class TestEndToEndFlitMode:
    """The flit network can drive full machine runs (base configs)."""

    def _run(self, model, app_factory, **extra):
        from repro.system.config import SystemConfig
        from repro.system.machine import Machine

        cfg = SystemConfig(num_nodes=4, l1_size=1024, l2_size=4096,
                           network_model=model, **extra)
        machine = Machine(cfg)
        stats = machine.run(app_factory())
        return machine, stats

    def test_ge_execution_times_agree(self):
        from repro.apps import GaussianElimination

        factory = lambda: GaussianElimination(n=12)
        _m1, fast = self._run("message", factory)
        m2, ref = self._run("flit", factory)
        assert ref.reads_at_remote_memory() == fast.reads_at_remote_memory()
        assert abs(ref.exec_time - fast.exec_time) <= 0.05 * fast.exec_time
        assert m2.check_coherence() == []

    def test_hot_block_agrees(self):
        from repro.apps import HotBlock

        factory = lambda: HotBlock(rounds=4)
        _m1, fast = self._run("message", factory)
        m2, ref = self._run("flit", factory)
        assert abs(ref.exec_time - fast.exec_time) <= 0.10 * fast.exec_time
        assert m2.check_coherence() == []

    def test_flit_mode_accepts_switch_caches(self):
        from repro.system.config import SystemConfig
        from repro.system.machine import Machine

        machine = Machine(SystemConfig(num_nodes=4, network_model="flit",
                                       switch_cache_size=512))
        engines = [slot.cache_engine
                   for slot in machine.fabric.switches.values()]
        assert all(e is not None for e in engines)

    def test_bad_network_model_rejected(self):
        from repro.errors import ConfigError
        from repro.system.config import SystemConfig

        with pytest.raises(ConfigError):
            SystemConfig(network_model="packets")

    def test_netcache_works_under_flit_mode(self):
        from repro.apps import GaussianElimination

        m, stats = self._run("flit", lambda: GaussianElimination(n=10),
                             netcache_size=4096)
        assert stats.exec_time > 0
        assert m.check_coherence() == []


class TestFlitModeSwitchCaches:
    """The paper's contribution validated at flit fidelity."""

    def _run(self, model):
        from repro.apps import GaussianElimination
        from repro.system.config import SystemConfig
        from repro.system.machine import Machine

        cfg = SystemConfig(num_nodes=4, l1_size=1024, l2_size=4096,
                           switch_cache_size=1024, network_model=model,
                           trace_values=True)
        machine = Machine(cfg)
        stats = machine.run(GaussianElimination(n=12))
        return machine, stats

    def test_switch_hit_counts_identical_across_models(self):
        _m1, fast = self._run("message")
        _m2, ref = self._run("flit")
        assert ref.read_counts["switch"] == fast.read_counts["switch"]
        assert ref.reads_at_remote_memory() == fast.reads_at_remote_memory()

    def test_exec_times_agree_with_switch_caches(self):
        _m1, fast = self._run("message")
        _m2, ref = self._run("flit")
        assert abs(ref.exec_time - fast.exec_time) <= 0.05 * fast.exec_time

    def test_flit_mode_switch_caches_coherent(self):
        from conftest import assert_coherent, assert_monotonic_reads

        machine, _stats = self._run("flit")
        assert_coherent(machine)
        assert_monotonic_reads(machine)

    def test_dir_updates_reach_home_in_flit_mode(self):
        machine, stats = self._run("flit")
        updates = sum(n.home_ctrl.dir_updates for n in machine.nodes)
        assert updates == stats.read_counts["switch"]

    def test_hot_block_race_sweep_flit_mode(self):
        """The corrective-invalidation machinery holds under flit timing."""
        from conftest import ScriptedApp, assert_coherent
        from repro.system.config import SystemConfig
        from repro.system.machine import Machine

        for padding in (0, 60, 120, 180):
            app = ScriptedApp(
                {
                    1: [("r", ("blk", 0)), ("barrier", 1)],
                    2: [("barrier", 1), ("w", ("blk", 0))],
                    3: [("barrier", 1), ("work", padding),
                        ("r", ("blk", 0))],
                    0: [("barrier", 1)],
                },
                blocks=1, home=0,
            )
            machine = Machine(SystemConfig(
                num_nodes=4, l1_size=1024, l2_size=4096,
                switch_cache_size=1024, network_model="flit",
                trace_values=True,
            ))
            machine.run(app)
            assert_coherent(machine)
