"""Tests for flowcheck: the rule framework, fixtures, and seeded mutations.

Three layers of evidence that the static gate actually guards the
protocol rather than vacuously passing:

* **golden fixtures** — each mini source tree under
  ``tests/fixtures/flowcheck/`` produces exactly the findings its
  ``expect.json`` lists (and a meta-test proves every registered rule id
  is exercised by at least one fixture);
* **whitelist liveness** — every intentional lane edge in the whitelist
  still exists in the real tree's flow graph, so justifications cannot
  outlive the edge they justify;
* **seeded mutations** — deleting a handler arm, adding a reply->request
  edge, and inserting an allocation into ``Fabric._arrive`` each turn
  the real tree red with the expected rule and a nonzero exit code.
"""

import json
import shutil
from pathlib import Path

import pytest

from repro.verify import flowcheck
from repro.verify.framework import all_rules, load_context, run_rules
from repro.verify.rules.flowgraph import build_flowgraph
from repro.verify.rules.lane_whitelist import WHITELIST
from repro.verify.rules.lanes import LANE_BY_KIND, LANE_ORDER

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "flowcheck"
REPO_SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def _fixture_names():
    return sorted(p.name for p in FIXTURES.iterdir() if p.is_dir())


def _expected(name):
    return json.loads((FIXTURES / name / "expect.json").read_text())


# ----------------------------------------------------------------------
# golden fixtures
# ----------------------------------------------------------------------
class TestFixtures:
    @pytest.mark.parametrize("name", _fixture_names())
    def test_fixture_matches_golden(self, name):
        expected = _expected(name)
        report = run_rules(FIXTURES / name)
        got = sorted((f.rule, f.path) for f in report.findings)
        want = sorted((e["rule"], e["path"]) for e in expected["findings"])
        assert got == want, "\n".join(str(f) for f in report.findings)
        assert report.suppressed == expected["suppressed"]
        # no baseline passed: every finding is new, exit mirrors findings
        assert report.exit_code == (1 if want else 0)

    def test_every_registered_rule_has_a_fixture(self):
        covered = set()
        for name in _fixture_names():
            covered.update(e["rule"] for e in _expected(name)["findings"])
        registered = {rule.id for rule in all_rules()}
        missing = registered - covered
        assert not missing, f"rules without fixture coverage: {missing}"

    def test_suppression_is_counted_not_dropped(self):
        report = run_rules(FIXTURES / "suppressed")
        assert report.findings == []
        assert report.suppressed == 1


# ----------------------------------------------------------------------
# the real tree
# ----------------------------------------------------------------------
class TestRealTree:
    def test_flowcheck_is_clean_against_baseline(self, capsys):
        assert flowcheck.main([str(REPO_SRC)]) == 0
        assert "[ok]" in capsys.readouterr().out

    def test_whitelist_entries_are_live_edges(self):
        graph = build_flowgraph(load_context(REPO_SRC))
        for edge, why in sorted(WHITELIST.items()):
            assert edge in graph.edges, (
                f"stale whitelist entry {edge[0]} -> {edge[1]} "
                f"(justified as: {why}) — the edge no longer exists; "
                f"delete the entry"
            )

    def test_whitelist_only_covers_non_increasing_edges(self):
        # a strictly increasing edge needs no exemption; an entry for one
        # would mask a future regression of that edge
        for src, dst in sorted(WHITELIST):
            assert (
                LANE_ORDER[LANE_BY_KIND[dst]]
                <= LANE_ORDER[LANE_BY_KIND[src]]
            ), f"{src} -> {dst} is lane-increasing; drop the entry"

    def test_lane_table_is_total_over_real_kinds(self):
        graph = build_flowgraph(load_context(REPO_SRC))
        assert set(graph.kinds) == set(LANE_BY_KIND)


# ----------------------------------------------------------------------
# seeded mutations on the real tree
# ----------------------------------------------------------------------
def _mutated_tree(tmp_path, rel, old, new):
    root = tmp_path / "repro"
    shutil.copytree(
        REPO_SRC, root, ignore=shutil.ignore_patterns("__pycache__")
    )
    target = root / rel
    text = target.read_text()
    assert old in text, f"mutation anchor not found in {rel}"
    target.write_text(text.replace(old, new))
    return root


class TestSeededMutations:
    def test_deleting_a_handler_arm_is_caught(self, tmp_path, capsys):
        root = _mutated_tree(
            tmp_path, "coherence/home.py",
            "        elif kind is MsgKind.WRITEBACK:\n"
            "            self._on_writeback(msg)\n",
            "",
        )
        report = run_rules(root)
        assert any(
            f.rule == "F-UNHANDLED" and "WRITEBACK" in f.message
            for f in report.new
        ), "\n".join(str(f) for f in report.findings)
        assert flowcheck.main([str(root)]) == 1
        capsys.readouterr()

    def test_reply_to_request_edge_is_caught(self, tmp_path, capsys):
        root = _mutated_tree(
            tmp_path, "coherence/l2ctrl.py",
            "        self.hierarchy.upgrade(txn.addr)\n",
            "        self.hierarchy.upgrade(txn.addr)\n"
            "        self._probe(MsgKind.READ, msg.src)\n",
        )
        report = run_rules(root)
        assert any(
            f.rule == "C-BACKWARD"
            and "UPGR_ACK" in f.message and "READ" in f.message
            for f in report.new
        ), "\n".join(str(f) for f in report.findings)
        assert flowcheck.main([str(root)]) == 1
        capsys.readouterr()

    def test_allocation_in_fabric_arrive_is_caught(self, tmp_path, capsys):
        root = _mutated_tree(
            tmp_path, "network/fabric.py",
            "    def _arrive(self, msg: Message, hop: int) -> None:\n",
            "    def _arrive(self, msg: Message, hop: int) -> None:\n"
            "        scratch = [msg]\n",
        )
        report = run_rules(root)
        assert any(
            f.rule == "P-ALLOC" and "_arrive" in f.message
            for f in report.new
        ), "\n".join(str(f) for f in report.findings)
        assert flowcheck.main([str(root)]) == 1
        capsys.readouterr()


# ----------------------------------------------------------------------
# framework behaviors
# ----------------------------------------------------------------------
class TestFramework:
    def test_baseline_tolerates_known_findings(self, tmp_path):
        root = FIXTURES / "hotpath_alloc"
        first = run_rules(root)
        assert first.exit_code == 1
        second = run_rules(root, baseline=first.findings)
        assert second.findings == first.findings  # still reported
        assert second.new == []  # but not new
        assert second.exit_code == 0

    def test_cli_update_baseline_roundtrip(self, tmp_path, capsys):
        root = tmp_path / "tree"
        shutil.copytree(FIXTURES / "hotpath_alloc", root)
        baseline = tmp_path / "baseline.json"
        assert flowcheck.main(
            [str(root), "--baseline", str(baseline), "--update-baseline"]
        ) == 0
        assert flowcheck.main(
            [str(root), "--baseline", str(baseline)]
        ) == 0
        assert flowcheck.main(
            [str(root), "--baseline", str(baseline), "--no-baseline"]
        ) == 1
        capsys.readouterr()

    def test_json_report_is_written(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        assert flowcheck.main(
            [str(FIXTURES / "lane_unknown"), "--no-baseline",
             "--json", str(out)]
        ) == 1
        payload = json.loads(out.read_text())
        assert payload["version"] == 1
        assert [f["rule"] for f in payload["findings"]] == ["C-NOLANE"]
        capsys.readouterr()

    def test_rule_ids_are_unique_and_ordered(self):
        ids = [rule.id for rule in all_rules()]
        assert len(ids) == len(set(ids))
        # determinism letters first, then flow, lanes, hot-path
        assert ids[:7] == ["W", "R", "S", "H", "L", "B", "N"]
        assert ids[7:] == [
            "F-UNHANDLED", "F-ORPHAN", "F-DEAD", "F-NOELSE",
            "C-NOLANE", "C-SAMELANE", "C-BACKWARD", "C-CYCLE",
            "P-ALLOC", "P-CLOSURE", "P-ATTR", "P-NOSLOTS",
        ]
