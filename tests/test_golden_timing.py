"""Golden end-to-end timing pins.

These pin the uncontended latency of canonical operations on the default
16-node machine.  They are regression locks on the timing model: any
change to switch delay, flit serialization, memory timing, or protocol
hops will move them and must be a conscious decision.

Derivation of the components (default parameters):

* miss detection through L1+L2: 10 cycles (charged before issue)
* local bus hop: 2 cycles each way (intra-node messages)
* memory: 6 (bus) + 40 (array) + 6 (bus) = 52 cycles
* network per hop: 4 (switch) + 4 (header flit on link); a 9-flit data
  reply serializes 36 cycles on each link
"""

import pytest

from repro.network.fabric import EXPRESS_ENV, EXPRESS_MODES
from repro.system.config import SystemConfig
from repro.system.machine import Machine

from conftest import ScriptedApp

GOLDEN = {
    # (reader, home, switch_cache_size) -> (category, latency)
    "local": 68,          # detect 10 + bus 2 + mem 52 + bus 2 + complete
    "adjacent_remote": 120,   # one switch each way
    "far_remote": 216,        # seven switches each way (turn at stage 3)
}

# the golden pins hold bit-for-bit whether worm hops go through the event
# queue or the express fused loop (DESIGN.md §12)
express_modes = pytest.mark.parametrize("express", EXPRESS_MODES)


def one_read(reader, home, sc_size=0):
    config = SystemConfig(num_nodes=16, switch_cache_size=sc_size)
    machine = Machine(config)
    app = ScriptedApp({reader: [("r", ("blk", 0))]}, blocks=1, home=home)
    stats = machine.run(app)
    return stats


@express_modes
def test_local_read_latency_pinned(express, monkeypatch):
    monkeypatch.setenv(EXPRESS_ENV, express)
    stats = one_read(0, 0)
    assert stats.read_latency["local_mem"] == GOLDEN["local"]


@express_modes
def test_adjacent_remote_read_latency_pinned(express, monkeypatch):
    monkeypatch.setenv(EXPRESS_ENV, express)
    stats = one_read(1, 0)
    assert stats.read_latency["remote_mem"] == GOLDEN["adjacent_remote"]


@express_modes
def test_far_remote_read_latency_pinned(express, monkeypatch):
    monkeypatch.setenv(EXPRESS_ENV, express)
    stats = one_read(15, 0)
    assert stats.read_latency["remote_mem"] == GOLDEN["far_remote"]


def test_distance_ordering():
    local = one_read(0, 0).read_latency["local_mem"]
    near = one_read(1, 0).read_latency["remote_mem"]
    far = one_read(15, 0).read_latency["remote_mem"]
    assert local < near < far


def test_switch_cache_hit_cheaper_than_full_path():
    """A read served at the last switch before the home skips the memory
    subsystem: its latency must undercut the same read served at the
    home by roughly the memory access time."""
    config = SystemConfig(num_nodes=16, switch_cache_size=2048)
    machine = Machine(config)
    scripts = {p: [("barrier", 1)] for p in range(16)}
    scripts[1] = [("r", ("blk", 0)), ("barrier", 1)]
    scripts[5] = [("barrier", 1), ("r", ("blk", 0))]
    app = ScriptedApp(scripts, blocks=1, home=0)
    stats = machine.run(app)
    assert stats.read_counts["switch"] == 1
    hit_latency = stats.read_latency["switch"]

    base = Machine(SystemConfig(num_nodes=16))
    scripts2 = {p: [("barrier", 1)] for p in range(16)}
    scripts2[1] = [("r", ("blk", 0)), ("barrier", 1)]
    scripts2[5] = [("barrier", 1), ("r", ("blk", 0))]
    app2 = ScriptedApp(scripts2, blocks=1, home=0)
    base_stats = base.run(app2)
    memory_served = base_stats.read_latency["remote_mem"] / 2  # two reads
    # saving is roughly the memory subsystem time (52 cycles) minus the
    # switch cache's own tag+stream delay
    assert hit_latency < memory_served


def test_memory_time_dominates_local_read():
    config = SystemConfig(num_nodes=16)
    uncontended = (
        config.memory_access_cycles + 2 * config.memory_bus_cycles
    )
    assert GOLDEN["local"] - uncontended < 20  # overheads are small


def test_write_ownership_roundtrip_close_to_read():
    """An uncontended READX costs the same network+memory path as a READ."""
    config = SystemConfig(num_nodes=16, trace_values=True)
    machine = Machine(config)
    app = ScriptedApp({1: [("w", ("blk", 0))]}, blocks=1, home=0)
    machine.run(app)
    # drain transaction recorded by the stats
    assert machine.stats.writes_completed == 1
    mean_write = machine.stats.write_latency
    assert abs(mean_write - GOLDEN["adjacent_remote"]) < 30
