"""Unit tests for the L1+L2 cache hierarchy."""

import pytest

from repro.cache.hierarchy import CacheHierarchy
from repro.cache.states import LineState


def make_hierarchy():
    return CacheHierarchy(l1_size=512, l2_size=2048, block_size=64)


class TestRead:
    def test_miss_on_empty(self):
        h = make_hierarchy()
        result = h.read(0x100)
        assert result.level == "miss"
        assert not result.hit

    def test_l2_hit_refills_l1(self):
        h = make_hierarchy()
        h.fill(0x100, LineState.SHARED, 3)
        first = h.read(0x100)
        assert first.level == "l2"
        assert first.data == 3
        second = h.read(0x100)
        assert second.level == "l1"
        assert second.data == 3

    def test_l1_hits_within_block(self):
        h = make_hierarchy()
        h.fill(0x100, LineState.SHARED, 3)
        h.read(0x100)
        assert h.read(0x100 + 56).level == "l1"

    def test_modified_line_readable(self):
        h = make_hierarchy()
        h.fill(0x100, LineState.MODIFIED, 9)
        assert h.read(0x100).level == "l2"


class TestWrite:
    def test_write_miss(self):
        h = make_hierarchy()
        assert h.write_probe(0x100).action == "miss"

    def test_write_needs_upgrade_on_shared(self):
        h = make_hierarchy()
        h.fill(0x100, LineState.SHARED, 1)
        assert h.write_probe(0x100).action == "upgrade"

    def test_write_hit_on_modified(self):
        h = make_hierarchy()
        h.fill(0x100, LineState.MODIFIED, 1)
        assert h.write_probe(0x100).action == "hit"

    def test_perform_write_updates_l2_and_l1(self):
        h = make_hierarchy()
        h.fill(0x100, LineState.MODIFIED, 1)
        h.read(0x100)  # pull into L1
        h.perform_write(0x100, 2)
        assert h.read(0x100).data == 2  # L1 hit sees new data
        assert h.l2.probe(0x100).data == 2

    def test_perform_write_without_ownership_raises(self):
        h = make_hierarchy()
        h.fill(0x100, LineState.SHARED, 1)
        with pytest.raises(KeyError):
            h.perform_write(0x100, 2)

    def test_upgrade(self):
        h = make_hierarchy()
        h.fill(0x100, LineState.SHARED, 1)
        h.upgrade(0x100)
        assert h.state_of(0x100) is LineState.MODIFIED


class TestFillVictims:
    def test_clean_victim_dropped_silently(self):
        h = CacheHierarchy(l1_size=128, l2_size=128, block_size=64, l2_assoc=1)
        h.fill(0, LineState.SHARED, 1)
        victim = h.fill(128, LineState.SHARED, 2)  # same direct-mapped set
        assert victim is None
        assert h.state_of(0) is LineState.INVALID

    def test_dirty_victim_returned(self):
        h = CacheHierarchy(l1_size=128, l2_size=128, block_size=64, l2_assoc=1)
        h.fill(0, LineState.MODIFIED, 7)
        victim = h.fill(128, LineState.SHARED, 2)
        assert victim == (0, 7)

    def test_inclusion_l1_purged_on_l2_eviction(self):
        h = CacheHierarchy(l1_size=256, l2_size=128, block_size=64, l2_assoc=1)
        h.fill(0, LineState.SHARED, 1)
        h.read(0)  # now in L1
        h.fill(128, LineState.SHARED, 2)  # evicts block 0 from L2
        assert h.l1.probe(0) is None


class TestProtocolSide:
    def test_invalidate_both_levels(self):
        h = make_hierarchy()
        h.fill(0x100, LineState.SHARED, 1)
        h.read(0x100)
        former = h.invalidate(0x100)
        assert former == (LineState.SHARED, 1)
        assert h.read(0x100).level == "miss"

    def test_invalidate_absent(self):
        h = make_hierarchy()
        assert h.invalidate(0x100) is None

    def test_downgrade_returns_data(self):
        h = make_hierarchy()
        h.fill(0x100, LineState.MODIFIED, 11)
        assert h.downgrade(0x100) == 11
        assert h.state_of(0x100) is LineState.SHARED

    def test_downgrade_without_ownership_raises(self):
        h = make_hierarchy()
        with pytest.raises(KeyError):
            h.downgrade(0x100)

    def test_state_of_absent_is_invalid(self):
        h = make_hierarchy()
        assert h.state_of(0x500) is LineState.INVALID
