"""Direct unit tests of the home controller state machine.

A stub transport captures outgoing messages so each protocol race can be
driven message by message: recalls crossing evictions, writebacks from
the requester itself, upgrade escalation, and directory updates against
every directory state.
"""

import pytest

from repro.cache.states import DirState
from repro.coherence.directory import Directory
from repro.coherence.home import HomeController
from repro.coherence.messages import make_message
from repro.errors import ProtocolError
from repro.memory.dram import MemoryModule
from repro.network.message import MsgKind
from repro.sim.engine import Simulator

HOME = 0
BLOCK = 0x40


class Harness:
    def __init__(self):
        self.sim = Simulator()
        self.directory = Directory(HOME, 64)
        self.memory = MemoryModule(self.sim, HOME)
        self.sent = []
        self.home = HomeController(
            self.sim, HOME, self.directory, self.memory,
            send=lambda msg, at: self.sent.append(msg),
            block_size=64,
        )

    def deliver(self, kind, src, **kw):
        msg = make_message(kind, src, HOME, BLOCK, 64, **kw)
        self.home.receive(msg)
        return msg

    def run(self):
        self.sim.run()

    def sent_kinds(self):
        return [m.kind for m in self.sent]

    def last(self, kind):
        matches = [m for m in self.sent if m.kind is kind]
        assert matches, f"no {kind} sent; sent={self.sent_kinds()}"
        return matches[-1]


class TestReads:
    def test_read_unowned_serves_memory(self):
        h = Harness()
        h.deliver(MsgKind.READ, src=2)
        h.run()
        reply = h.last(MsgKind.DATA_S)
        assert reply.dst == 2
        assert reply.data == 0
        assert h.directory.entry(BLOCK).sharers == {2}

    def test_read_shared_adds_sharer(self):
        h = Harness()
        h.directory.add_sharer(BLOCK, 1)
        h.directory.entry(BLOCK).version = 5
        h.deliver(MsgKind.READ, src=2)
        h.run()
        assert h.last(MsgKind.DATA_S).data == 5
        assert h.directory.entry(BLOCK).sharers == {1, 2}

    def test_read_modified_recalls_owner(self):
        h = Harness()
        h.directory.set_owner(BLOCK, 3)
        h.deliver(MsgKind.READ, src=2)
        h.run()
        recall = h.last(MsgKind.RECALL)
        assert recall.dst == 3
        # owner returns the dirty data
        h.deliver(MsgKind.RECALL_REPLY, src=3, data=7)
        h.run()
        reply = h.last(MsgKind.DATA_S)
        assert reply.data == 7
        assert reply.payload["served_by"] == "owner"
        entry = h.directory.entry(BLOCK)
        assert entry.state is DirState.SHARED
        assert entry.sharers == {2, 3}
        assert entry.version == 7

    def test_read_with_owner_eviction_race(self):
        h = Harness()
        h.directory.set_owner(BLOCK, 3)
        h.deliver(MsgKind.READ, src=2)
        h.run()
        # the owner's writeback was already in flight and arrives first
        h.deliver(MsgKind.WRITEBACK, src=3, data=9)
        h.run()
        # the recall then finds nothing at the ex-owner
        h.deliver(MsgKind.RECALL_REPLY, src=3, payload={"no_data": True})
        h.run()
        reply = h.last(MsgKind.DATA_S)
        assert reply.data == 9
        entry = h.directory.entry(BLOCK)
        assert entry.state is DirState.SHARED
        assert 2 in entry.sharers

    def test_read_no_data_reply_then_writeback(self):
        h = Harness()
        h.directory.set_owner(BLOCK, 3)
        h.deliver(MsgKind.READ, src=2)
        h.run()
        h.deliver(MsgKind.RECALL_REPLY, src=3, payload={"no_data": True})
        h.run()
        # nothing served yet: data still in flight
        assert MsgKind.DATA_S not in h.sent_kinds()
        h.deliver(MsgKind.WRITEBACK, src=3, data=4)
        h.run()
        assert h.last(MsgKind.DATA_S).data == 4

    def test_read_from_own_writeback_race(self):
        # the owner reads its own block whose writeback is in flight
        h = Harness()
        h.directory.set_owner(BLOCK, 2)
        h.deliver(MsgKind.READ, src=2)
        h.run()
        assert MsgKind.RECALL not in h.sent_kinds()
        h.deliver(MsgKind.WRITEBACK, src=2, data=3)
        h.run()
        assert h.last(MsgKind.DATA_S).data == 3


class TestWrites:
    def test_readx_unowned(self):
        h = Harness()
        h.deliver(MsgKind.READX, src=2)
        h.run()
        reply = h.last(MsgKind.DATA_X)
        assert reply.dst == 2
        entry = h.directory.entry(BLOCK)
        assert entry.state is DirState.MODIFIED and entry.owner == 2

    def test_readx_invalidates_all_sharers(self):
        h = Harness()
        for s in (1, 3):
            h.directory.add_sharer(BLOCK, s)
        h.deliver(MsgKind.READX, src=2)
        h.run()
        invs = [m for m in h.sent if m.kind is MsgKind.INV]
        assert {m.dst for m in invs} == {1, 3}
        assert all(not m.payload.get("purge_only") for m in invs)
        # data held until both acks arrive
        assert MsgKind.DATA_X not in h.sent_kinds()
        h.deliver(MsgKind.INV_ACK, src=1)
        h.run()
        assert MsgKind.DATA_X not in h.sent_kinds()
        h.deliver(MsgKind.INV_ACK, src=3)
        h.run()
        assert MsgKind.DATA_X in h.sent_kinds()

    def test_readx_requester_as_stale_sharer_gets_purge_only(self):
        h = Harness()
        h.directory.add_sharer(BLOCK, 2)  # silently evicted earlier
        h.deliver(MsgKind.READX, src=2)
        h.run()
        inv = h.last(MsgKind.INV)
        assert inv.dst == 2
        assert inv.payload["purge_only"]

    def test_readx_modified_recalls_exclusively(self):
        h = Harness()
        h.directory.set_owner(BLOCK, 3)
        h.deliver(MsgKind.READX, src=2)
        h.run()
        assert h.last(MsgKind.RECALL_X).dst == 3
        h.deliver(MsgKind.RECALL_REPLY, src=3, data=6)
        h.run()
        reply = h.last(MsgKind.DATA_X)
        assert reply.data == 6
        entry = h.directory.entry(BLOCK)
        assert entry.owner == 2

    def test_upgrade_happy_path(self):
        h = Harness()
        h.directory.add_sharer(BLOCK, 2)
        h.directory.add_sharer(BLOCK, 3)
        h.deliver(MsgKind.UPGRADE, src=2)
        h.run()
        invs = [m for m in h.sent if m.kind is MsgKind.INV]
        by_dst = {m.dst: m.payload.get("purge_only", False) for m in invs}
        assert by_dst == {2: True, 3: False}
        h.deliver(MsgKind.INV_ACK, src=2)
        h.deliver(MsgKind.INV_ACK, src=3)
        h.run()
        assert MsgKind.UPGR_ACK in h.sent_kinds()
        assert h.directory.entry(BLOCK).owner == 2

    def test_upgrade_escalates_when_copy_lost(self):
        h = Harness()
        h.directory.add_sharer(BLOCK, 3)  # requester 2 is NOT a sharer
        h.deliver(MsgKind.UPGRADE, src=2)
        h.run()
        h.deliver(MsgKind.INV_ACK, src=3)
        h.run()
        assert MsgKind.UPGR_ACK not in h.sent_kinds()
        assert MsgKind.DATA_X in h.sent_kinds()

    def test_upgrade_against_modified_block(self):
        h = Harness()
        h.directory.set_owner(BLOCK, 3)
        h.deliver(MsgKind.UPGRADE, src=2)
        h.run()
        assert MsgKind.RECALL_X in h.sent_kinds()
        h.deliver(MsgKind.RECALL_REPLY, src=3, data=8)
        h.run()
        assert h.last(MsgKind.DATA_X).data == 8

    def test_write_from_own_writeback_race(self):
        h = Harness()
        h.directory.set_owner(BLOCK, 2)
        h.deliver(MsgKind.READX, src=2)
        h.run()
        h.deliver(MsgKind.WRITEBACK, src=2, data=5)
        h.run()
        assert h.last(MsgKind.DATA_X).data == 5


class TestDirUpdate:
    def test_registers_sharer_when_shared(self):
        h = Harness()
        h.directory.add_sharer(BLOCK, 1)
        h.deliver(MsgKind.DIR_UPDATE, src=2, payload={"requester": 2})
        h.run()
        assert h.directory.entry(BLOCK).sharers == {1, 2}
        assert h.home.dir_updates == 1
        assert h.home.corrective_invs == 0

    def test_corrective_inv_when_modified(self):
        h = Harness()
        h.directory.set_owner(BLOCK, 3)
        h.deliver(MsgKind.DIR_UPDATE, src=2, payload={"requester": 2})
        h.run()
        inv = h.last(MsgKind.INV)
        assert inv.dst == 2
        assert inv.payload["no_ack"]
        assert h.home.corrective_invs == 1
        # the requester is NOT registered (its copy is being chased)
        assert 2 not in h.directory.entry(BLOCK).sharers

    def test_queued_behind_pending_write(self):
        h = Harness()
        h.directory.add_sharer(BLOCK, 1)
        h.deliver(MsgKind.READX, src=3)   # pending: waits for ack from 1
        h.deliver(MsgKind.DIR_UPDATE, src=2, payload={"requester": 2})
        h.run()
        # dir update not yet processed
        assert h.home.corrective_invs == 0
        h.deliver(MsgKind.INV_ACK, src=1)
        h.run()
        # write completed (state M), then the update found M -> corrective
        assert h.home.corrective_invs == 1


class TestErrors:
    def test_stray_inv_ack_raises(self):
        h = Harness()
        with pytest.raises(ProtocolError):
            h.deliver(MsgKind.INV_ACK, src=1)

    def test_stray_recall_reply_with_data_raises(self):
        h = Harness()
        with pytest.raises(ProtocolError):
            h.deliver(MsgKind.RECALL_REPLY, src=1, data=1)

    def test_late_no_data_recall_reply_tolerated(self):
        h = Harness()
        h.deliver(MsgKind.RECALL_REPLY, src=1, payload={"no_data": True})

    def test_unexpected_kind_raises(self):
        h = Harness()
        with pytest.raises(ProtocolError):
            h.deliver(MsgKind.DATA_S, src=1, data=0)

    def test_per_block_serialization(self):
        h = Harness()
        h.directory.set_owner(BLOCK, 3)
        h.deliver(MsgKind.READ, src=1)
        h.deliver(MsgKind.READ, src=2)
        h.run()
        # only one recall outstanding; the second read is queued
        assert h.sent_kinds().count(MsgKind.RECALL) == 1
        h.deliver(MsgKind.RECALL_REPLY, src=3, data=1)
        h.run()
        # both reads eventually served
        replies = [m for m in h.sent if m.kind is MsgKind.DATA_S]
        assert {m.dst for m in replies} == {1, 2}


class TestMesiHome:
    def make(self):
        h = Harness()
        h.home.protocol = "mesi"
        return h

    def test_unowned_read_grants_exclusive(self):
        h = self.make()
        h.deliver(MsgKind.READ, src=2)
        h.run()
        reply = h.last(MsgKind.DATA_E)
        assert reply.dst == 2
        entry = h.directory.entry(BLOCK)
        assert entry.state is DirState.MODIFIED and entry.owner == 2
        assert h.home.exclusive_grants == 1

    def test_shared_read_stays_shared(self):
        h = self.make()
        h.directory.add_sharer(BLOCK, 1)
        h.deliver(MsgKind.READ, src=2)
        h.run()
        assert MsgKind.DATA_E not in h.sent_kinds()
        assert MsgKind.DATA_S in h.sent_kinds()

    def test_second_reader_triggers_recall_of_exclusive(self):
        h = self.make()
        h.deliver(MsgKind.READ, src=2)
        h.run()
        h.deliver(MsgKind.READ, src=3)
        h.run()
        assert h.last(MsgKind.RECALL).dst == 2
        h.deliver(MsgKind.RECALL_REPLY, src=2, data=0)
        h.run()
        reply = h.last(MsgKind.DATA_S)
        assert reply.dst == 3
        entry = h.directory.entry(BLOCK)
        assert entry.state is DirState.SHARED
        assert entry.sharers == {2, 3}

    def test_clean_replacement_notification_frees_owner(self):
        h = self.make()
        h.deliver(MsgKind.READ, src=2)
        h.run()
        h.deliver(MsgKind.WRITEBACK, src=2, data=0)
        h.run()
        entry = h.directory.entry(BLOCK)
        assert entry.state is DirState.UNOWNED
        # a later reader gets a fresh exclusive grant
        h.deliver(MsgKind.READ, src=3)
        h.run()
        assert h.last(MsgKind.DATA_E).dst == 3

    def test_msi_harness_never_sends_data_e(self):
        h = Harness()
        h.deliver(MsgKind.READ, src=2)
        h.run()
        assert MsgKind.DATA_E not in h.sent_kinds()
