"""Direct unit tests of the node-side coherence controller."""

import pytest

from repro.cache.hierarchy import CacheHierarchy
from repro.cache.states import LineState
from repro.coherence.l2ctrl import NodeController
from repro.coherence.messages import make_message
from repro.errors import ProtocolError
from repro.memory.netcache import NetworkCache
from repro.memory.nic import NetworkInterface
from repro.network.message import MsgKind
from repro.sim.engine import Simulator

NODE = 1
HOME = 0
BLOCK = 0x40


class Harness:
    def __init__(self, netcache=False):
        self.sim = Simulator()
        self.hierarchy = CacheHierarchy(512, 2048, 64, node_id=NODE)
        self.sent = []
        ni = NetworkInterface.__new__(NetworkInterface)  # transport stub
        ni.sim = self.sim
        ni.node_id = NODE
        ni.send = lambda msg, at=None: self.sent.append(msg)
        nc = NetworkCache(self.sim, NODE) if netcache else None
        self.ctrl = NodeController(
            self.sim, NODE, self.hierarchy, ni,
            home_of=lambda addr: HOME, block_size=64, netcache=nc,
        )
        self.completed = []

    def deliver(self, kind, **kw):
        msg = make_message(kind, HOME, NODE, BLOCK, 64, **kw)
        self.ctrl.receive(msg)
        return msg

    def issue_read(self):
        return self.ctrl.issue_read(BLOCK, self.completed.append)

    def issue_write(self):
        return self.ctrl.issue_write(BLOCK, self.completed.append)


class TestReads:
    def test_read_sends_request_and_fills_on_reply(self):
        h = Harness()
        txn = h.issue_read()
        assert h.sent[0].kind is MsgKind.READ
        h.deliver(MsgKind.DATA_S, data=4, transaction=txn)
        assert h.completed == [txn]
        assert txn.data == 4
        line = h.hierarchy.l2.probe(BLOCK)
        assert line.state is LineState.SHARED and line.data == 4
        # demand fill reaches L1 too
        assert h.hierarchy.l1.probe(BLOCK) is not None

    def test_mshr_conflict_raises(self):
        h = Harness()
        h.issue_read()
        with pytest.raises(ProtocolError):
            h.issue_read()

    def test_unmatched_reply_raises(self):
        h = Harness()
        with pytest.raises(ProtocolError):
            h.deliver(MsgKind.DATA_S, data=1)

    def test_served_by_classification(self):
        h = Harness()
        txn = h.issue_read()
        h.deliver(MsgKind.DATA_S, data=0,
                  payload={"served_by": "switch", "served_stage": 2})
        assert txn.served_by == "switch"
        assert txn.served_stage == 2


class TestLateInvalidation:
    def test_inv_during_pending_read_marks_use_once(self):
        h = Harness()
        txn = h.issue_read()
        h.deliver(MsgKind.INV)
        assert txn.pending_inval
        # the ack went back immediately
        assert h.sent[-1].kind is MsgKind.INV_ACK
        h.deliver(MsgKind.DATA_S, data=3)
        assert h.completed  # processor got its data...
        assert h.hierarchy.l2.probe(BLOCK) is None  # ...but nothing cached
        assert h.ctrl.late_invals == 1

    def test_no_ack_inv_sends_nothing(self):
        h = Harness()
        h.hierarchy.fill(BLOCK, LineState.SHARED, 0)
        h.deliver(MsgKind.INV, payload={"no_ack": True})
        assert h.sent == []
        assert h.hierarchy.l2.probe(BLOCK) is None

    def test_purge_only_inv_keeps_l2_copy(self):
        h = Harness()
        h.hierarchy.fill(BLOCK, LineState.SHARED, 0)
        h.deliver(MsgKind.INV, payload={"purge_only": True})
        assert h.hierarchy.l2.probe(BLOCK) is not None
        assert h.sent[-1].kind is MsgKind.INV_ACK

    def test_purge_only_inv_purges_netcache(self):
        h = Harness(netcache=True)
        h.ctrl.netcache.fill(BLOCK, 0)
        h.hierarchy.fill(BLOCK, LineState.SHARED, 0)
        h.deliver(MsgKind.INV, payload={"purge_only": True})
        assert h.ctrl.netcache.array.probe(BLOCK) is None


class TestWritesAndUpgrades:
    def test_write_miss_issues_readx(self):
        h = Harness()
        h.issue_write()
        assert h.sent[0].kind is MsgKind.READX

    def test_shared_copy_issues_upgrade(self):
        h = Harness()
        h.hierarchy.fill(BLOCK, LineState.SHARED, 2)
        h.issue_write()
        assert h.sent[0].kind is MsgKind.UPGRADE

    def test_upgr_ack_promotes_line(self):
        h = Harness()
        h.hierarchy.fill(BLOCK, LineState.SHARED, 2)
        h.issue_write()
        h.deliver(MsgKind.UPGR_ACK)
        assert h.hierarchy.state_of(BLOCK) is LineState.MODIFIED
        assert h.completed

    def test_upgr_ack_without_copy_raises(self):
        h = Harness()
        h.hierarchy.fill(BLOCK, LineState.SHARED, 2)
        h.issue_write()
        h.hierarchy.invalidate(BLOCK)
        with pytest.raises(ProtocolError):
            h.deliver(MsgKind.UPGR_ACK)

    def test_data_x_fills_modified(self):
        h = Harness()
        h.issue_write()
        h.deliver(MsgKind.DATA_X, data=6)
        line = h.hierarchy.l2.probe(BLOCK)
        assert line.state is LineState.MODIFIED and line.data == 6


class TestRecalls:
    def test_recall_downgrades_and_returns_data(self):
        h = Harness()
        h.hierarchy.fill(BLOCK, LineState.MODIFIED, 9)
        h.deliver(MsgKind.RECALL)
        reply = h.sent[-1]
        assert reply.kind is MsgKind.RECALL_REPLY and reply.data == 9
        assert h.hierarchy.state_of(BLOCK) is LineState.SHARED

    def test_recall_x_invalidates(self):
        h = Harness()
        h.hierarchy.fill(BLOCK, LineState.MODIFIED, 9)
        h.deliver(MsgKind.RECALL_X)
        assert h.hierarchy.state_of(BLOCK) is LineState.INVALID
        assert h.sent[-1].data == 9

    def test_recall_after_eviction_answers_no_data(self):
        h = Harness()
        h.deliver(MsgKind.RECALL)
        reply = h.sent[-1]
        assert reply.kind is MsgKind.RECALL_REPLY
        assert reply.payload["no_data"]


class TestVictimSpill:
    def test_dirty_victim_spills_writeback(self):
        h = Harness()
        # direct-mapped tiny L2 to force conflict
        h.hierarchy = CacheHierarchy(128, 128, 64, l2_assoc=1, node_id=NODE)
        h.ctrl.hierarchy = h.hierarchy
        h.hierarchy.fill(0, LineState.MODIFIED, 5)
        txn = h.ctrl.issue_read(128, h.completed.append)  # same set
        reply = make_message(MsgKind.DATA_S, HOME, NODE, 128, 64, data=0,
                             transaction=txn)
        h.ctrl.receive(reply)
        wbs = [m for m in h.sent if m.kind is MsgKind.WRITEBACK]
        assert len(wbs) == 1
        assert wbs[0].addr == 0 and wbs[0].data == 5


class TestNetcachePath:
    def test_nc_hit_skips_network(self):
        h = Harness(netcache=True)
        h.ctrl.netcache.fill(BLOCK, 3)
        txn = h.issue_read()
        h.sim.run()
        assert h.sent == []  # no READ message left the node
        assert txn.served_by == "netcache"
        assert h.completed == [txn]
        assert h.hierarchy.l2.probe(BLOCK).data == 3

    def test_nc_miss_adds_probe_latency(self):
        h = Harness(netcache=True)
        h.issue_read()
        # the READ was handed to the NI with a deferred send; our stub
        # records it immediately, but the txn must exist in the MSHR
        assert h.ctrl.outstanding == 1

    def test_remote_fill_populates_netcache(self):
        h = Harness(netcache=True)
        h.issue_read()
        h.deliver(MsgKind.DATA_S, data=2)
        assert h.ctrl.netcache.array.probe(BLOCK).data == 2
