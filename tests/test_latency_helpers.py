"""Tests for the latency analysis helpers."""

import pytest

from repro.coherence.messages import Transaction
from repro.stats.counters import MachineStats
from repro.stats.latency import (
    breakdown_table,
    format_bars,
    latency_table,
    service_bars,
    service_latency_rows,
)


def stats_with_reads():
    stats = MachineStats(4)
    stats.record_read_hit(0, "l1")
    stats.record_read_hit(0, "l1")
    txn = Transaction("read", 0x40, 1, 0, 64, 0)
    txn.completed_at = 100
    txn.served_by = "remote_mem"
    txn.data = 0
    stats.record_read_txn(1, txn, stall=100)
    return stats


class TestRows:
    def test_only_non_empty_classes(self):
        rows = service_latency_rows(stats_with_reads())
        categories = [cat for cat, _c, _m in rows]
        assert categories == ["l1", "remote_mem"]

    def test_counts_and_means(self):
        rows = dict(
            (cat, (count, mean))
            for cat, count, mean in service_latency_rows(stats_with_reads())
        )
        assert rows["l1"][0] == 2
        assert rows["remote_mem"] == (1, 100.0)


class TestTables:
    def test_latency_table_renders(self):
        text = latency_table(stats_with_reads())
        assert "remote_mem" in text
        assert "100.0" in text

    def test_breakdown_table_renders_empty(self):
        text = breakdown_table(MachineStats(4))
        assert "memory service" in text

    def test_breakdown_table_with_samples(self):
        stats = stats_with_reads()
        stats.breakdown_sums["mem_service"] = 500
        stats.breakdown_count = 10
        text = breakdown_table(stats)
        assert "50.0" in text


class TestBars:
    def test_bars_scale_to_peak(self):
        text = format_bars(["a", "b"], [10.0, 5.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_bars_zero_values(self):
        text = format_bars(["a"], [0.0])
        assert "#" not in text

    def test_bars_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            format_bars(["a"], [1.0, 2.0])

    def test_service_bars(self):
        text = service_bars(stats_with_reads())
        assert "l1" in text and "#" in text

    def test_unit_suffix(self):
        text = format_bars(["x"], [3.0], unit="cyc")
        assert "3.0cyc" in text
