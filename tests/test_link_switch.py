"""Unit tests for links and the crossbar switch timing model."""

import pytest

from repro.errors import NetworkError
from repro.network.link import Link
from repro.network.switch import Switch
from repro.sim.engine import Simulator


class TestLink:
    def test_serialization_time(self):
        sim = Simulator()
        link = Link(sim, "l", cycles_per_flit=4)
        grant, tail = link.reserve(flits=9, earliest=0)
        assert grant == 0
        assert tail == 36

    def test_fifo_grants(self):
        sim = Simulator()
        link = Link(sim, "l", cycles_per_flit=4)
        g1, t1 = link.reserve(2, earliest=0)
        g2, t2 = link.reserve(2, earliest=0)
        assert (g1, t1) == (0, 8)
        assert (g2, t2) == (8, 16)

    def test_earliest_respected(self):
        sim = Simulator()
        link = Link(sim, "l")
        grant, _tail = link.reserve(1, earliest=100)
        assert grant == 100

    def test_stats(self):
        sim = Simulator()
        link = Link(sim, "l")
        link.reserve(3, earliest=0)
        link.reserve(2, earliest=0)
        assert link.msgs == 2
        assert link.flits == 5


class TestSwitch:
    def test_add_and_get_output(self):
        sim = Simulator()
        sw = Switch(sim, (1, 0))
        link = sw.add_output((2, 0))
        assert sw.output_to((2, 0)) is link
        assert sw.has_output((2, 0))

    def test_duplicate_output_rejected(self):
        sim = Simulator()
        sw = Switch(sim, (1, 0))
        sw.add_output((2, 0))
        with pytest.raises(NetworkError):
            sw.add_output((2, 0))

    def test_missing_output_raises(self):
        sim = Simulator()
        sw = Switch(sim, (1, 0))
        with pytest.raises(NetworkError):
            sw.output_to((9, 9))

    def test_forward_timing_uncontended(self):
        sim = Simulator()
        sw = Switch(sim, (1, 0), switch_delay=4, cycles_per_flit=4)
        sw.add_output((2, 0))
        grant, header_next, tail_done = sw.forward(9, (2, 0), header_at=100)
        # arbitration+crossbar = 4 cycles, then the header takes one flit
        # time to cross; the tail clears after 9 flit times
        assert grant == 104
        assert header_next == 108
        assert tail_done == 104 + 36

    def test_forward_contention_serializes(self):
        sim = Simulator()
        sw = Switch(sim, (1, 0))
        sw.add_output((2, 0))
        g1, _h1, t1 = sw.forward(9, (2, 0), header_at=0)
        g2, _h2, _t2 = sw.forward(9, (2, 0), header_at=0)
        assert g2 == t1  # second worm waits for the first to clear the link

    def test_forward_different_outputs_independent(self):
        sim = Simulator()
        sw = Switch(sim, (1, 0))
        sw.add_output((2, 0))
        sw.add_output((2, 1))
        g1, _h, _t = sw.forward(9, (2, 0), header_at=0)
        g2, _h, _t = sw.forward(9, (2, 1), header_at=0)
        assert g1 == g2 == 4

    def test_stats_accumulate(self):
        sim = Simulator()
        sw = Switch(sim, (1, 0))
        sw.add_output((2, 0))
        sw.forward(9, (2, 0), header_at=0)
        sw.forward(1, (2, 0), header_at=0)
        assert sw.msgs_routed == 2
        assert sw.flits_routed == 10

    def test_node_port_output(self):
        sim = Simulator()
        sw = Switch(sim, (0, 0))
        sw.add_output(1)  # ejection port to node 1
        grant, _h, tail = sw.forward(9, 1, header_at=10)
        assert grant == 14
        assert tail == 14 + 36
