"""Unit tests for links and the crossbar switch timing model."""

import random

import pytest

from repro.errors import NetworkError
from repro.network.link import Link
from repro.network.switch import Switch
from repro.sim.engine import Simulator


class TestLink:
    def test_serialization_time(self):
        sim = Simulator()
        link = Link(sim, "l", cycles_per_flit=4)
        grant, tail = link.reserve(flits=9, earliest=0)
        assert grant == 0
        assert tail == 36

    def test_fifo_grants(self):
        sim = Simulator()
        link = Link(sim, "l", cycles_per_flit=4)
        g1, t1 = link.reserve(2, earliest=0)
        g2, t2 = link.reserve(2, earliest=0)
        assert (g1, t1) == (0, 8)
        assert (g2, t2) == (8, 16)

    def test_earliest_respected(self):
        sim = Simulator()
        link = Link(sim, "l")
        grant, _tail = link.reserve(1, earliest=100)
        assert grant == 100

    def test_stats(self):
        sim = Simulator()
        link = Link(sim, "l")
        link.reserve(3, earliest=0)
        link.reserve(2, earliest=0)
        assert link.msgs == 2
        assert link.flits == 5


class TestSwitch:
    def test_add_and_get_output(self):
        sim = Simulator()
        sw = Switch(sim, (1, 0))
        link = sw.add_output((2, 0))
        assert sw.output_to((2, 0)) is link
        assert sw.has_output((2, 0))

    def test_duplicate_output_rejected(self):
        sim = Simulator()
        sw = Switch(sim, (1, 0))
        sw.add_output((2, 0))
        with pytest.raises(NetworkError):
            sw.add_output((2, 0))

    def test_missing_output_raises(self):
        sim = Simulator()
        sw = Switch(sim, (1, 0))
        with pytest.raises(NetworkError):
            sw.output_to((9, 9))

    def test_forward_timing_uncontended(self):
        sim = Simulator()
        sw = Switch(sim, (1, 0), switch_delay=4, cycles_per_flit=4)
        sw.add_output((2, 0))
        grant, header_next, tail_done = sw.forward(9, (2, 0), header_at=100)
        # arbitration+crossbar = 4 cycles, then the header takes one flit
        # time to cross; the tail clears after 9 flit times
        assert grant == 104
        assert header_next == 108
        assert tail_done == 104 + 36

    def test_forward_contention_serializes(self):
        sim = Simulator()
        sw = Switch(sim, (1, 0))
        sw.add_output((2, 0))
        g1, _h1, t1 = sw.forward(9, (2, 0), header_at=0)
        g2, _h2, _t2 = sw.forward(9, (2, 0), header_at=0)
        assert g2 == t1  # second worm waits for the first to clear the link

    def test_forward_different_outputs_independent(self):
        sim = Simulator()
        sw = Switch(sim, (1, 0))
        sw.add_output((2, 0))
        sw.add_output((2, 1))
        g1, _h, _t = sw.forward(9, (2, 0), header_at=0)
        g2, _h, _t = sw.forward(9, (2, 1), header_at=0)
        assert g1 == g2 == 4

    def test_stats_accumulate(self):
        sim = Simulator()
        sw = Switch(sim, (1, 0))
        sw.add_output((2, 0))
        sw.forward(9, (2, 0), header_at=0)
        sw.forward(1, (2, 0), header_at=0)
        assert sw.msgs_routed == 2
        assert sw.flits_routed == 10

    def test_node_port_output(self):
        sim = Simulator()
        sw = Switch(sim, (0, 0))
        sw.add_output(1)  # ejection port to node 1
        grant, _h, tail = sw.forward(9, 1, header_at=10)
        assert grant == 14
        assert tail == 14 + 36


class TestGrantLockstep:
    """Grant arithmetic lives in hand-inlined copies besides Link.reserve.

    ``Fabric._arrive`` inlines the reservation once for the evented hop
    path and reuses the same block for the express fused loop (fabric.py
    keeps them literally identical; DESIGN.md §12).  These property
    tests drive fuzzed (flits, earliest, free_at) streams through a real
    fabric route and through reference ``Link.reserve`` calls with the
    same tuples, asserting identical (grant, tail_done) timing and
    identical timeline counters — so the copies cannot drift apart
    silently.
    """

    SWITCH_DELAY = 4
    CYCLES_PER_FLIT = 4

    def _reference(self, worms, eject_busy_until=0):
        """Chained Link.reserve over the same (flits, inject_at) stream.

        ``free_at`` on the ejection link is fuzzed two ways: an initial
        planted occupancy (``eject_busy_until``) and, for every later
        worm, the accumulated occupancy left by its predecessors — the
        same contended values the fabric's inlined copies see.
        """
        sim = Simulator()
        inj = Link(sim, "ref-inj", cycles_per_flit=self.CYCLES_PER_FLIT)
        ej = Link(sim, "ref-ej", cycles_per_flit=self.CYCLES_PER_FLIT)
        ej.timeline._free_at = eject_busy_until
        timings = []
        for flits, inject_at in worms:
            g_inj, _ = inj.reserve(flits, earliest=inject_at)
            header_at = g_inj + self.CYCLES_PER_FLIT
            grant, tail = ej.reserve(
                flits, earliest=header_at + self.SWITCH_DELAY
            )
            timings.append((g_inj, grant, tail))
        return timings, self._counters(inj), self._counters(ej)

    @staticmethod
    def _counters(link):
        tl = link.timeline
        return (
            tl._free_at, tl.busy_cycles, tl.reservations, tl.queued_cycles,
            link.msgs, link.flits,
        )

    def _fabric_run(self, worms, mode, monkeypatch, eject_busy_until=0):
        """The same stream through a real single-switch fabric route."""
        from repro.network.fabric import Fabric
        from repro.network.message import Message, MsgKind
        from repro.network.topology import BminTopology

        monkeypatch.setenv("REPRO_EXPRESS", mode)
        sim = Simulator()
        fabric = Fabric(sim, BminTopology(4))
        for node in range(4):
            fabric.attach_node(node, lambda m: None)
        eject = fabric._route_objs[(0, 1)][-1][1]
        eject.timeline._free_at = eject_busy_until
        msgs = []
        for flits, inject_at in worms:
            msg = Message(MsgKind.READ, 0, 1, 0x40, flits)
            msgs.append(msg)
            sim.call_at(inject_at, fabric.inject, msg)
        sim.run()
        inj = fabric._inject_links[0]
        return (
            [(m.injected_at, m.delivered_at - m.flits * self.CYCLES_PER_FLIT,
              m.delivered_at) for m in msgs],
            self._counters(inj),
            self._counters(eject),
        )

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("mode", ("off", "on"))
    def test_fabric_inline_matches_link_reserve(self, seed, mode, monkeypatch):
        rng = random.Random(seed)
        when = 0
        worms = []
        for _ in range(30):
            # bursty gaps: frequent overlap keeps the ejection link
            # contended, so the grant > request_at (queued worm) branch
            # and the idle grant == request_at branch both run
            when += rng.randrange(0, 40)
            worms.append((rng.randrange(1, 12), when))
        busy = rng.randrange(0, 64)  # planted initial occupancy
        want_timing, want_inj, want_ej = self._reference(worms, busy)
        got_timing, got_inj, got_ej = self._fabric_run(
            worms, mode, monkeypatch, busy
        )
        assert got_timing == want_timing
        assert got_inj == want_inj
        assert got_ej == want_ej

    def test_back_to_back_worms_chain_identically(self, monkeypatch):
        # all injected at cycle 0: the inject link serializes them and the
        # ejection link sees strictly ordered, contended requests
        worms = [(f, 0) for f in (1, 9, 2, 9, 1, 5)]
        want = self._reference(worms)
        for mode in ("off", "on"):
            assert self._fabric_run(worms, mode, monkeypatch) == want
