"""Tests of machine assembly, the coherence audit, and failure modes."""

import pytest

from repro.cache.states import LineState
from repro.errors import DeadlockError
from repro.system.machine import Machine

from conftest import ScriptedApp, run_scripted, tiny_config


class TestAssembly:
    def test_node_count_and_wiring(self):
        machine = Machine(tiny_config())
        assert len(machine.nodes) == 4
        assert len(machine.fabric.switches) == 2 * 2  # 2 stages x 2 rows

    def test_switch_caches_installed_only_when_enabled(self):
        base = Machine(tiny_config())
        assert all(s.cache_engine is None for s in base.fabric.switches.values())
        sc = Machine(tiny_config(switch_cache_size=512))
        assert all(s.cache_engine is not None for s in sc.fabric.switches.values())

    def test_netcache_installed_only_when_enabled(self):
        base = Machine(tiny_config())
        assert all(n.netcache is None for n in base.nodes)
        nc = Machine(tiny_config(netcache_size=4096))
        assert all(n.netcache is not None for n in nc.nodes)

    def test_sync_addr_stable_and_unique(self):
        machine = Machine(tiny_config())
        a = machine.sync_addr("barrier", 1)
        b = machine.sync_addr("barrier", 2)
        c = machine.sync_addr("lock", 1)
        assert a == machine.sync_addr("barrier", 1)
        assert len({a, b, c}) == 3

    def test_sixteen_node_machine_builds(self):
        machine = Machine(tiny_config(num_nodes=16))
        assert len(machine.fabric.switches) == 4 * 8


class TestRunLoop:
    def test_deadlock_detection_on_mismatched_barriers(self):
        app = ScriptedApp(
            {0: [("barrier", 1)], 1: [], 2: [], 3: []}, blocks=1
        )
        machine = Machine(tiny_config())
        with pytest.raises(DeadlockError):
            machine.run(app)

    def test_quiesce_after_completion(self):
        machine, _stats = run_scripted(
            {p: [("w", ("blk", 0))] for p in range(4)}, blocks=1, home=0
        )
        assert machine.sim.pending == 0

    def test_exec_time_is_max_finish(self):
        machine, stats = run_scripted(
            {0: [("work", 100)], 1: [("work", 9000)]}, blocks=1
        )
        assert stats.exec_time == max(stats.finish_times.values())


class TestCoherenceAudit:
    def test_clean_machine_audits_clean(self):
        machine, _stats = run_scripted(
            {p: [("r", ("blk", 0)), ("w", ("blk", 1))] for p in range(4)},
            blocks=2, home=0,
        )
        assert machine.check_coherence() == []

    def test_audit_detects_hidden_sharer(self):
        machine, _stats = run_scripted(
            {1: [("r", ("blk", 0))]}, blocks=1, home=0
        )
        # corrupt: node 2 conjures a copy the directory doesn't know about
        block_addr = machine.nodes[1].processor.value_trace[0][1]
        machine.nodes[2].hierarchy.l2.insert(block_addr, LineState.SHARED, 0)
        problems = machine.check_coherence()
        assert any("not a registered sharer" in p for p in problems)

    def test_audit_detects_version_mismatch(self):
        machine, _stats = run_scripted(
            {1: [("r", ("blk", 0))]}, blocks=1, home=0
        )
        block_addr = machine.nodes[1].processor.value_trace[0][1]
        machine.nodes[1].hierarchy.l2.probe(block_addr).data = 99
        problems = machine.check_coherence()
        assert any("v99" in p for p in problems)

    def test_audit_detects_rogue_owner(self):
        machine, _stats = run_scripted(
            {1: [("w", ("blk", 0))]}, blocks=1, home=0
        )
        block_addr = next(machine.nodes[1].hierarchy.l2.resident_blocks())[0]
        machine.nodes[2].hierarchy.l2.insert(block_addr, LineState.MODIFIED, 5)
        problems = machine.check_coherence()
        assert problems

    def test_audit_detects_stale_switch_copy(self):
        config = tiny_config(switch_cache_size=1024)
        machine, _stats = run_scripted(
            {1: [("r", ("blk", 0))]}, config=config, blocks=1, home=0
        )
        copies = machine.fabric.switch_cache_blocks()
        assert copies  # the read deposited along its path
        sid, addr, _v = copies[0]
        machine.fabric.switches[sid].cache_engine.array.probe(addr).data = 77
        problems = machine.check_coherence()
        assert any("switch" in p for p in problems)

    def test_memory_version_accessor(self):
        machine, _stats = run_scripted(
            {1: [("w", ("blk", 0))]}, blocks=1, home=0
        )
        block_addr = next(machine.nodes[1].hierarchy.l2.resident_blocks())[0]
        # block is still MODIFIED at node 1; the home version is the
        # pre-write one (0) until a writeback happens
        assert machine.memory_version(block_addr) == 0
