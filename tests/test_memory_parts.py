"""Unit tests for the memory module, NI, and network cache."""

import pytest

from repro.errors import SimulationError
from repro.memory.dram import MemoryModule
from repro.memory.netcache import NetworkCache
from repro.memory.nic import NetworkInterface
from repro.network.message import Message, MsgKind
from repro.sim.engine import Simulator


class TestMemoryModule:
    def test_uncontended_latency_exceeds_50(self):
        sim = Simulator()
        mem = MemoryModule(sim, 0, access_cycles=40, bus_cycles=6)
        assert mem.uncontended_latency == 52
        start, done = mem.read()
        assert start == 6
        assert done == 52

    def test_queueing_under_bulk_arrivals(self):
        sim = Simulator()
        mem = MemoryModule(sim, 0)
        dones = [mem.read()[1] for _ in range(4)]
        # strictly increasing completion: the array is a serial resource
        assert dones == sorted(dones)
        assert dones[3] - dones[0] == 3 * 40
        assert mem.mean_queueing_delay() > 0

    def test_read_write_counters(self):
        sim = Simulator()
        mem = MemoryModule(sim, 0)
        mem.read()
        mem.write()
        mem.write()
        assert mem.reads == 1
        assert mem.writes == 2


class TestNetworkInterface:
    def test_local_delivery_bypasses_fabric(self):
        sim = Simulator()
        ni = NetworkInterface(sim, 2, fabric=None, local_delay=3)
        received = []
        ni.attach(received.append)
        msg = Message(MsgKind.READ, 2, 2, 0x40, 1)
        ni.send(msg)
        sim.run()
        assert received == [msg]
        assert msg.delivered_at == 3
        assert ni.local_deliveries == 1

    def test_remote_without_fabric_raises(self):
        sim = Simulator()
        ni = NetworkInterface(sim, 2, fabric=None)
        ni.attach(lambda m: None)
        with pytest.raises(SimulationError):
            ni.send(Message(MsgKind.READ, 2, 5, 0x40, 1))

    def test_wrong_source_rejected(self):
        sim = Simulator()
        ni = NetworkInterface(sim, 2, fabric=None)
        with pytest.raises(SimulationError):
            ni.send(Message(MsgKind.READ, 3, 2, 0x40, 1))

    def test_deferred_send(self):
        sim = Simulator()
        ni = NetworkInterface(sim, 2, fabric=None, local_delay=1)
        received = []
        ni.attach(lambda m: received.append(sim.now))
        ni.send(Message(MsgKind.READ, 2, 2, 0x40, 1), at=100)
        sim.run()
        assert received == [101]

    def test_unattached_dispatch_raises(self):
        sim = Simulator()
        ni = NetworkInterface(sim, 2, fabric=None)
        ni.send(Message(MsgKind.READ, 2, 2, 0x40, 1))
        with pytest.raises(SimulationError):
            sim.run()


class TestNetworkCache:
    def test_miss_then_fill_then_hit(self):
        sim = Simulator()
        nc = NetworkCache(sim, 0, size=4096, access_cycles=12)
        data, done = nc.lookup(0x40)
        assert data is None
        assert done == 12
        nc.fill(0x40, 9)
        sim.now += 50
        data, _done = nc.lookup(0x40)
        assert data == 9
        assert nc.hit_rate() == 0.5

    def test_lookup_occupies_port(self):
        sim = Simulator()
        nc = NetworkCache(sim, 0, access_cycles=12)
        _d1, done1 = nc.lookup(0x40)
        _d2, done2 = nc.lookup(0x80)
        assert done2 == done1 + 12

    def test_invalidate(self):
        sim = Simulator()
        nc = NetworkCache(sim, 0)
        nc.fill(0x40, 1)
        nc.invalidate(0x40)
        assert nc.inv_purges == 1
        data, _done = nc.lookup(0x40)
        assert data is None

    def test_invalidate_absent_not_counted(self):
        sim = Simulator()
        nc = NetworkCache(sim, 0)
        nc.invalidate(0x40)
        assert nc.inv_purges == 0

    def test_capacity_eviction(self):
        sim = Simulator()
        nc = NetworkCache(sim, 0, size=256, block_size=64, assoc=1)
        for block in range(8):
            nc.fill(block * 64, block)
        assert nc.array.occupancy() <= 4
