"""Tests for the MESI protocol extension (clean-exclusive state).

MESI is this repository's implementation of the protocol-variant future
work: a sole reader receives the block EXCLUSIVE, writes it with a silent
E->M promotion (no upgrade transaction), and notifies the home on clean
eviction so the directory's owner tracking stays exact.
"""

import pytest

from repro.cache.states import DirState, LineState
from repro.errors import ConfigError
from repro.system.config import SystemConfig
from repro.system.machine import Machine

from conftest import (
    ScriptedApp,
    assert_coherent,
    assert_monotonic_reads,
    run_scripted,
    tiny_config,
)


def mesi_config(**overrides):
    overrides.setdefault("protocol", "mesi")
    return tiny_config(**overrides)


class TestExclusiveGrant:
    def test_sole_reader_gets_exclusive(self):
        app = ScriptedApp({1: [("r", ("blk", 0))]}, blocks=1, home=0)
        machine = Machine(mesi_config())
        machine.run(app)
        block = app.block_addrs[0]
        assert machine.nodes[1].hierarchy.state_of(block) is LineState.EXCLUSIVE
        entry = machine.nodes[0].directory.peek(block)
        assert entry.state is DirState.MODIFIED
        assert entry.owner == 1
        assert machine.nodes[0].home_ctrl.exclusive_grants == 1
        assert_coherent(machine)

    def test_msi_machine_never_grants_exclusive(self):
        app = ScriptedApp({1: [("r", ("blk", 0))]}, blocks=1, home=0)
        machine = Machine(tiny_config())
        machine.run(app)
        block = app.block_addrs[0]
        assert machine.nodes[1].hierarchy.state_of(block) is LineState.SHARED
        assert machine.nodes[0].home_ctrl.exclusive_grants == 0

    def test_second_reader_downgrades_to_shared(self):
        app = ScriptedApp(
            {
                1: [("r", ("blk", 0)), ("barrier", 1)],
                2: [("barrier", 1), ("r", ("blk", 0))],
                0: [("barrier", 1)],
                3: [("barrier", 1)],
            },
            blocks=1, home=0,
        )
        machine = Machine(mesi_config())
        machine.run(app)
        block = app.block_addrs[0]
        assert machine.nodes[1].hierarchy.state_of(block) is LineState.SHARED
        assert machine.nodes[2].hierarchy.state_of(block) is LineState.SHARED
        entry = machine.nodes[0].directory.peek(block)
        assert entry.state is DirState.SHARED
        assert entry.sharers == {1, 2}
        assert_coherent(machine)


class TestSilentUpgrade:
    def test_read_then_write_needs_no_transaction(self):
        app = ScriptedApp(
            {1: [("r", ("blk", 0)), ("w", ("blk", 0))]}, blocks=1, home=0
        )
        machine = Machine(mesi_config())
        machine.run(app)
        block = app.block_addrs[0]
        ctrl = machine.nodes[1].l2ctrl
        assert ctrl.upgrades_issued == 0  # the MSI machine would issue one
        assert ctrl.writes_issued == 0
        line = machine.nodes[1].hierarchy.l2.probe(block)
        assert line.state is LineState.MODIFIED
        assert line.data == 1
        assert_coherent(machine)

    def test_msi_counterpart_issues_upgrade(self):
        app = ScriptedApp(
            {1: [("r", ("blk", 0)), ("w", ("blk", 0))]}, blocks=1, home=0
        )
        machine = Machine(tiny_config())
        machine.run(app)
        assert machine.nodes[1].l2ctrl.upgrades_issued == 1

    def test_silently_promoted_data_recalled_correctly(self):
        app = ScriptedApp(
            {
                1: [("r", ("blk", 0)), ("w", ("blk", 0)), ("barrier", 1)],
                2: [("barrier", 1), ("r", ("blk", 0))],
                0: [("barrier", 1)],
                3: [("barrier", 1)],
            },
            blocks=1, home=0,
        )
        machine = Machine(mesi_config())
        machine.run(app)
        block = app.block_addrs[0]
        reads = [v for _op, a, v, _t in machine.nodes[2].processor.value_trace
                 if a == block]
        assert reads == [1]  # sees the silently-written version
        assert_coherent(machine)


class TestCleanEviction:
    def test_exclusive_eviction_notifies_home(self):
        config = mesi_config(l2_size=1024, l2_assoc=1, l1_size=512)
        scripts = {1: [("r", ("blk", i)) for i in range(32)]}
        machine, _stats = run_scripted(scripts, config=config, blocks=32, home=0)
        # every evicted E line sent a replacement notification, so the
        # directory holds no stale owners
        stale_owners = [
            (block, entry.owner)
            for block, entry in machine.nodes[0].directory.entries()
            if entry.state is DirState.MODIFIED
            and machine.nodes[entry.owner].hierarchy.l2.probe(block) is None
        ]
        assert stale_owners == []
        assert machine.nodes[1].l2ctrl.writebacks_sent > 0
        assert_coherent(machine)

    def test_reread_after_clean_eviction(self):
        config = mesi_config(l2_size=1024, l2_assoc=1, l1_size=512)
        scripts = {1: [("r", ("blk", i)) for i in range(32)]
                   + [("r", ("blk", 0))]}
        machine, _stats = run_scripted(scripts, config=config, blocks=32, home=0)
        assert_coherent(machine)


class TestRecallOfExclusive:
    def test_remote_write_recalls_clean_exclusive(self):
        app = ScriptedApp(
            {
                1: [("r", ("blk", 0)), ("barrier", 1)],
                2: [("barrier", 1), ("w", ("blk", 0))],
                0: [("barrier", 1)],
                3: [("barrier", 1)],
            },
            blocks=1, home=0,
        )
        machine = Machine(mesi_config())
        machine.run(app)
        block = app.block_addrs[0]
        assert machine.nodes[1].hierarchy.state_of(block) is LineState.INVALID
        line = machine.nodes[2].hierarchy.l2.probe(block)
        assert line.state is LineState.MODIFIED
        assert line.data == 1
        assert_coherent(machine)


class TestMesiWithSwitchCaches:
    def test_exclusive_replies_never_deposited(self):
        app = ScriptedApp({1: [("r", ("blk", 0))]}, blocks=1, home=0)
        machine = Machine(mesi_config(switch_cache_size=1024))
        machine.run(app)
        block = app.block_addrs[0]
        copies = [a for _sid, a, _v in machine.fabric.switch_cache_blocks()
                  if a == block]
        assert copies == []  # DATA_E is not switch-cacheable

    def test_downgraded_shared_replies_are_deposited(self):
        app = ScriptedApp(
            {
                1: [("r", ("blk", 0)), ("barrier", 1), ("barrier", 2)],
                2: [("barrier", 1), ("r", ("blk", 0)), ("barrier", 2)],
                3: [("barrier", 1), ("barrier", 2), ("r", ("blk", 0))],
                0: [("barrier", 1), ("barrier", 2)],
            },
            blocks=1, home=0,
        )
        machine = Machine(mesi_config(switch_cache_size=1024))
        stats = machine.run(app)
        # reader 2 triggered a recall and got DATA_S (deposited); reader 3
        # can then be served in-network
        assert stats.read_counts["switch"] >= 1
        assert_coherent(machine)

    def test_full_apps_run_coherently_under_mesi(self):
        from repro.apps import GaussianElimination

        machine = Machine(mesi_config(switch_cache_size=1024))
        machine.run(GaussianElimination(n=10))
        assert_coherent(machine)
        assert_monotonic_reads(machine)


class TestConfigValidation:
    def test_bad_protocol_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(protocol="mosi")

    def test_default_is_msi(self):
        assert SystemConfig().protocol == "msi"
