"""Unit tests for the wire-level message model."""

from repro.network.message import FLIT_BYTES, Message, MsgKind, flits_for


class TestKinds:
    def test_data_kinds_carry_data(self):
        assert MsgKind.DATA_S.carries_data
        assert MsgKind.DATA_X.carries_data
        assert MsgKind.RECALL_REPLY.carries_data
        assert MsgKind.WRITEBACK.carries_data

    def test_control_kinds_do_not_carry_data(self):
        for kind in (MsgKind.READ, MsgKind.READX, MsgKind.UPGRADE,
                     MsgKind.INV, MsgKind.INV_ACK, MsgKind.UPGR_ACK,
                     MsgKind.RECALL, MsgKind.RECALL_X, MsgKind.DIR_UPDATE):
            assert not kind.carries_data

    def test_only_clean_shared_data_is_switch_cacheable(self):
        assert MsgKind.DATA_S.switch_cacheable
        for kind in MsgKind:
            if kind is not MsgKind.DATA_S:
                assert not kind.switch_cacheable

    def test_only_reads_interceptable(self):
        assert MsgKind.READ.interceptable
        assert not MsgKind.READX.interceptable
        assert not MsgKind.UPGRADE.interceptable

    def test_only_invalidations_snoop(self):
        assert MsgKind.INV.snoops_switch_caches
        for kind in MsgKind:
            if kind is not MsgKind.INV:
                assert not kind.snoops_switch_caches


class TestFlits:
    def test_control_message_is_one_flit(self):
        assert flits_for(MsgKind.READ, 64) == 1
        assert flits_for(MsgKind.INV, 64) == 1
        assert flits_for(MsgKind.DIR_UPDATE, 64) == 1

    def test_data_message_length_scales_with_block(self):
        assert flits_for(MsgKind.DATA_S, 64) == 1 + 64 // FLIT_BYTES
        assert flits_for(MsgKind.DATA_S, 32) == 1 + 4
        assert flits_for(MsgKind.WRITEBACK, 128) == 1 + 16


class TestMessage:
    def test_ids_are_unique(self):
        a = Message(MsgKind.READ, 0, 1, 0x40, 1)
        b = Message(MsgKind.READ, 0, 1, 0x40, 1)
        assert a.id != b.id

    def test_header_fields_follow_fig9(self):
        msg = Message(MsgKind.READ, src=3, dst=7, addr=0x1C0, flits=1)
        header = msg.header_fields()
        assert header["src"] == 3
        assert header["dst"] == 7
        assert header["addr"] == 0x1C0
        assert header["type"] == list(MsgKind).index(MsgKind.READ)

    def test_default_payload_is_independent(self):
        a = Message(MsgKind.READ, 0, 1, 0, 1)
        b = Message(MsgKind.READ, 0, 1, 0, 1)
        a.payload["x"] = 1
        assert "x" not in b.payload

    def test_timestamps_unset_initially(self):
        msg = Message(MsgKind.READ, 0, 1, 0, 1)
        assert msg.created_at == -1
        assert msg.injected_at == -1
        assert msg.delivered_at == -1
        assert msg.trace == []
