"""The observability layer: tracer, metrics, and the Perfetto export.

Three properties keep the layer trustworthy:

* **zero overhead when off** — a machine built without a tracer emits no
  events and produces *bit-identical* results to a traced run (tracing
  observes, never perturbs);
* **exact reconciliation** — the metrics histograms carry exact
  total/count sums, so their means must equal the corresponding
  ``MachineStats`` means bit-for-bit, not approximately;
* **well-formed export** — the Chrome trace-event JSON obeys the format
  Perfetto actually loads (metadata events, phase-specific fields,
  stable track ordering).
"""

from __future__ import annotations

import json

import pytest

from repro.apps import GaussianElimination
from repro.system.config import SystemConfig
from repro.system.machine import Machine
from repro.trace import MetricsRegistry, Tracer, chrome_trace
from repro.trace.metrics import Histogram


def sc_config() -> SystemConfig:
    return SystemConfig(num_nodes=4, l1_size=1024, l2_size=4096,
                        switch_cache_size=512)


def traced_run(tracer=None, metrics=None):
    machine = Machine(sc_config(), tracer=tracer, metrics=metrics)
    stats = machine.run(GaussianElimination(n=12))
    return machine, stats


# ----------------------------------------------------------------------
# Tracer unit behavior
# ----------------------------------------------------------------------
class TestTracer:
    def test_event_shapes(self):
        tracer = Tracer()
        tracer.instant("proc0", "wb_full", 5, {"addr": 64})
        tracer.complete("proc0", "barrier", 10, 7)
        tracer.counter("home1", "mem_backlog", 12, 3.0)
        tracer.async_span("ni2", "READ", "msg", 42, 20, 35, {"addr": 128})
        tracer.flow_start("ni2", "READ", 99, 20)
        tracer.flow_end("ni3", "DATA_S", 99, 40)
        instant, span, counter, begin, end, fs, fe = tracer.events
        assert instant == {"ph": "i", "track": "proc0", "name": "wb_full",
                           "ts": 5, "args": {"addr": 64}}
        assert span == {"ph": "X", "track": "proc0", "name": "barrier",
                        "ts": 10, "dur": 7}
        assert counter["ph"] == "C" and counter["value"] == 3.0
        assert begin["ph"] == "b" and end["ph"] == "e"
        assert begin["id"] == end["id"] == 42
        assert begin["cat"] == end["cat"] == "msg"
        assert end["ts"] == 35 and "args" not in end
        assert fs["ph"] == "s" and fe["ph"] == "f"
        assert fs["id"] == fe["id"] == 99 and fs["cat"] == "flow"

    def test_limit_counts_dropped_events(self):
        tracer = Tracer(limit=3)
        for ts in range(5):
            tracer.instant("proc0", "tick", ts)
        assert len(tracer) == 3
        assert tracer.dropped == 2
        # an async span past the limit drops both halves
        tracer.async_span("ni0", "READ", "msg", 1, 0, 9)
        assert len(tracer) == 3 and tracer.dropped == 4

    def test_tracks_first_appearance_order_and_named(self):
        tracer = Tracer()
        tracer.instant("sync", "barrier_release", 1)
        tracer.instant("proc0", "wb_full", 2)
        tracer.instant("sync", "barrier_release", 3)
        assert tracer.tracks() == ["sync", "proc0"]
        assert len(tracer.events_named("barrier_release")) == 2

    def test_write_jsonl(self, tmp_path):
        tracer = Tracer()
        tracer.instant("proc0", "wb_full", 5)
        tracer.complete("proc1", "lock", 6, 2)
        path = tmp_path / "events.jsonl"
        assert tracer.write_jsonl(str(path)) == 2
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines == tracer.events


# ----------------------------------------------------------------------
# Chrome trace-event export
# ----------------------------------------------------------------------
class TestChromeExport:
    def test_metadata_precedes_events_and_names_tracks(self):
        tracer = Tracer()
        tracer.instant("home0", "read", 3)
        doc = chrome_trace(tracer, label="unit")
        events = doc["traceEvents"]
        assert events[0]["name"] == "process_name"
        assert events[0]["args"] == {"name": "unit"}
        names = [e["name"] for e in events if e["ph"] == "M"]
        assert "thread_name" in names and "thread_sort_index" in names
        # all metadata first, then the data events
        phases = [e["ph"] for e in events]
        assert phases == ["M"] * (len(events) - 1) + ["i"]
        assert doc["otherData"]["events"] == 1
        assert doc["otherData"]["dropped"] == 0

    def test_track_ordering_groups_and_natural_sort(self):
        tracer = Tracer()
        for track in ("sync", "home2", "switch1.0", "ni10", "ni2",
                      "proc10", "proc2"):
            tracer.instant(track, "x", 0)
        doc = chrome_trace(tracer)
        thread_names = [
            e["args"]["name"] for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert thread_names == ["proc2", "proc10", "ni2", "ni10",
                                "switch1.0", "home2", "sync"]

    def test_phase_specific_fields(self):
        tracer = Tracer()
        tracer.instant("proc0", "wb_full", 1)
        tracer.complete("proc0", "barrier", 2, 5)
        tracer.counter("home0", "mem_backlog", 3, 7.0)
        tracer.async_span("ni0", "READ", "msg", 8, 4, 9)
        tracer.flow_end("ni0", "DATA_S", 8, 9)
        doc = chrome_trace(tracer)
        by_phase = {}
        for event in doc["traceEvents"]:
            by_phase.setdefault(event["ph"], event)
        assert by_phase["i"]["s"] == "t"
        assert by_phase["X"]["dur"] == 5
        assert by_phase["C"]["args"] == {"value": 7.0}
        assert by_phase["b"]["cat"] == "msg" and by_phase["b"]["id"] == 8
        assert by_phase["f"]["bp"] == "e"
        # the whole document must survive strict JSON serialization
        assert json.loads(json.dumps(doc)) == doc


# ----------------------------------------------------------------------
# Metrics instruments
# ----------------------------------------------------------------------
class TestMetrics:
    def test_histogram_buckets_and_exact_mean(self):
        hist = Histogram("lat")
        for value in (0, 1, 2, 3, 4, 100):
            hist.observe(value)
        assert hist.count == 6 and hist.total == 110
        assert hist.mean() == 110 / 6
        assert hist.min == 0 and hist.max == 100
        assert hist.buckets == {0: 1, 1: 1, 2: 2, 3: 1, 7: 1}
        assert Histogram.bucket_bounds(0) == (0, 0)
        assert Histogram.bucket_bounds(3) == (4, 7)
        assert Histogram.bucket_bounds(7) == (64, 127)

    def test_registry_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("msgs").inc(5)
        registry.gauge("occ").set(0.25)
        registry.histogram("lat").observe(37)
        registry.series("depth").sample(100, 2.0)
        registry.series("depth").sample(200, 3.0)
        payload = registry.to_payload()
        rebuilt = MetricsRegistry.from_payload(payload)
        assert rebuilt.to_payload() == payload
        assert rebuilt.counters["msgs"].value == 5
        assert rebuilt.histograms["lat"].mean() == 37.0
        assert rebuilt.series_map["depth"].times == [100, 200]
        # payloads are valid JSON as-is
        assert json.loads(json.dumps(payload)) == payload


# ----------------------------------------------------------------------
# Machine integration
# ----------------------------------------------------------------------
class TestMachineIntegration:
    @pytest.fixture(scope="class")
    def traced(self):
        tracer = Tracer()
        metrics = MetricsRegistry(sample_interval=500)
        machine, stats = traced_run(tracer=tracer, metrics=metrics)
        return tracer, metrics, machine, stats

    def test_event_taxonomy_present(self, traced):
        tracer, _metrics, _machine, _stats = traced
        names = {event["name"] for event in tracer.events}
        # one representative per instrumented layer
        assert "read" in names            # l2ctrl txn spans + home starts
        assert "hop" in names             # fabric switch hops
        assert "sc_probe" in names        # Caesar engine probes
        assert "sc_deposit" in names      # captures
        assert "dir_update" in names      # switch-served read registered
        assert "barrier_release" in names  # global sync episodes
        tracks = tracer.tracks()
        assert any(t.startswith("proc") for t in tracks)
        assert any(t.startswith("ni") for t in tracks)
        assert any(t.startswith("switch") for t in tracks)
        assert any(t.startswith("home") for t in tracks)

    def test_txn_spans_close_and_flows_pair(self, traced):
        tracer, _metrics, _machine, _stats = traced
        begins = [e for e in tracer.events if e["ph"] == "b"]
        ends = [e for e in tracer.events if e["ph"] == "e"]
        assert begins and len(begins) == len(ends)
        starts = {e["id"] for e in tracer.events if e["ph"] == "s"}
        finishes = {e["id"] for e in tracer.events if e["ph"] == "f"}
        assert finishes <= starts  # every reply arrow has a request leg

    def test_sampler_populates_series(self, traced):
        _tracer, metrics, _machine, stats = traced
        occupancy = metrics.series_map["sc_occupancy/total"]
        assert len(occupancy) >= 2
        assert all(v >= 0 for v in occupancy.values)
        assert max(occupancy.values) > 0  # the cache did fill
        assert occupancy.times == sorted(occupancy.times)
        hit_rate = metrics.series_map["sc_hit_rate"]
        assert all(0.0 <= v <= 1.0 for v in hit_rate.values)
        assert occupancy.times[-1] <= stats.exec_time + 500
        assert any(name.startswith("mem_backlog/home")
                   for name in metrics.series_map)

    def test_export_of_real_run_serializes(self, traced):
        tracer, _metrics, _machine, _stats = traced
        doc = chrome_trace(tracer)
        text = json.dumps(doc)
        assert json.loads(text)["otherData"]["events"] == len(tracer)

    def test_histogram_means_reconcile_exactly(self, traced):
        _tracer, metrics, _machine, stats = traced
        reconciled = 0
        for name, hist in metrics.histograms.items():
            if not name.startswith("read_latency/"):
                continue
            category = name.split("/", 1)[1]
            assert hist.count == stats.read_counts[category]
            assert hist.mean() == stats.mean_latency(category)
            reconciled += 1
        assert reconciled >= 2  # at least switch + a memory class

    def test_tracing_is_timing_transparent(self, traced):
        _tracer, _metrics, _machine, traced_stats = traced
        _machine2, plain_stats = traced_run()
        assert plain_stats.exec_time == traced_stats.exec_time
        assert plain_stats.to_dict() == traced_stats.to_dict()

    def test_untraced_machine_has_no_tracer_installed(self):
        machine = Machine(sc_config())
        assert machine.sim.tracer is None
        assert machine.metrics is None

    def test_trace_limit_respected_on_real_run(self):
        tracer = Tracer(limit=100)
        traced_run(tracer=tracer)
        assert len(tracer) == 100
        assert tracer.dropped > 0
