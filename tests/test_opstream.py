"""Unit tests for the op-stream compiler (apps/opstream.py).

The peephole is the part of the front end with real logic — run
detection, equal-cost work merging, chunking, run splitting — so it is
pinned here op by op; the end-to-end bit-identity of the compiled
processor path lives in tests/test_opstream_differential.py.
"""

import pytest

from repro.apps.opstream import (
    CHUNK_WORDS,
    OP_BARRIER,
    OP_LOCK,
    OP_LOOP,
    OP_R,
    OP_R_RUN,
    OP_UNLOCK,
    OP_W,
    OP_W_RUN,
    OP_WORK,
    OPS_ENV,
    SLOT_R,
    SLOT_W,
    SLOT_WORK,
    compile_chunks,
    elems_in_block,
    expand_chunks,
    expand_macro,
    ops_mode,
    row_pitch,
)
from repro.errors import ConfigError, SimulationError


def compile_flat(ops, **kwargs):
    """Compile and concatenate all chunks into one instruction list."""
    flat = []
    for chunk in compile_chunks(ops, **kwargs):
        flat.extend(chunk)
    return flat


def roundtrip(ops, **kwargs):
    return list(expand_chunks(compile_chunks(iter(ops), **kwargs)))


# ---------------------------------------------------------------------------
# work merging
# ---------------------------------------------------------------------------

def test_equal_cost_work_ops_merge():
    code = compile_flat([("work", 5)] * 7)
    assert code == [OP_WORK, 5, 7]


def test_unequal_cost_work_ops_stay_separate():
    code = compile_flat([("work", 5), ("work", 5), ("work", 9)])
    assert code == [OP_WORK, 5, 2, OP_WORK, 9, 1]


def test_work_merge_is_order_preserving_around_accesses():
    ops = [("work", 3), ("r", 64), ("work", 3)]
    assert roundtrip(ops) == ops


# ---------------------------------------------------------------------------
# stride-run detection
# ---------------------------------------------------------------------------

def test_constant_stride_reads_fuse_into_a_run():
    code = compile_flat([("r", 0), ("r", 8), ("r", 16), ("r", 24)])
    assert code == [OP_R_RUN, 0, 8, 4]


def test_constant_stride_writes_fuse_into_a_run():
    code = compile_flat([("w", 100), ("w", 110), ("w", 120)])
    assert code == [OP_W_RUN, 100, 10, 3]


def test_zero_stride_run_is_a_run():
    # repeated touches of one address are a stride-0 run
    code = compile_flat([("r", 64)] * 5)
    assert code == [OP_R_RUN, 64, 0, 5]


def test_negative_stride_run_is_a_run():
    code = compile_flat([("r", 24), ("r", 16), ("r", 8)])
    assert code == [OP_R_RUN, 24, -8, 3]


def test_single_access_stays_elementary():
    assert compile_flat([("r", 8)]) == [OP_R, 8]
    assert compile_flat([("w", 8)]) == [OP_W, 8]


def test_broken_stride_splits_the_run():
    code = compile_flat([("r", 0), ("r", 8), ("r", 16), ("r", 100)])
    assert code == [OP_R_RUN, 0, 8, 3, OP_R, 100]


def test_kind_change_splits_the_run():
    code = compile_flat([("r", 0), ("r", 8), ("w", 16), ("w", 24)])
    assert code == [OP_R_RUN, 0, 8, 2, OP_W_RUN, 16, 8, 2]


def test_sync_op_flushes_pending_fusion():
    code = compile_flat([("r", 0), ("r", 8), ("barrier", 3), ("work", 1)])
    assert code == [OP_R_RUN, 0, 8, 2, OP_BARRIER, 3, OP_WORK, 1, 1]


def test_lock_unlock_encode():
    code = compile_flat([("lock", 7), ("unlock", 7)])
    assert code == [OP_LOCK, 7, OP_UNLOCK, 7]


# ---------------------------------------------------------------------------
# explicit macros
# ---------------------------------------------------------------------------

def test_rr_macro_passes_through():
    assert compile_flat([("rr", 0, 8, 6)]) == [OP_R_RUN, 0, 8, 6]
    assert compile_flat([("wr", 32, 4, 3)]) == [OP_W_RUN, 32, 4, 3]


def test_rr_macro_of_one_lowers_to_elementary():
    assert compile_flat([("rr", 40, 8, 1)]) == [OP_R, 40]
    assert compile_flat([("wr", 40, 8, 1)]) == [OP_W, 40]


def test_rr_macro_of_zero_emits_nothing():
    assert compile_flat([("rr", 40, 8, 0)]) == []


def test_loop_macro_encodes_slots():
    body = [("r", 0, 8), ("work", 5), ("w", 256, 8)]
    code = compile_flat([("loop", 3, body)])
    assert code == [
        OP_LOOP, 3, 3,
        SLOT_R, 0, 8,
        SLOT_WORK, 5, 0,
        SLOT_W, 256, 8,
    ]


def test_empty_loop_emits_nothing():
    assert compile_flat([("loop", 0, [("r", 0, 8)])]) == []
    assert compile_flat([("loop", 4, [])]) == []


def test_expand_macro_matches_expand_chunks():
    macros = [
        ("rr", 0, 8, 5),
        ("work", 2),
        ("loop", 3, [("r", 64, 8), ("work", 1), ("w", 256, 8)]),
        ("wr", 1024, 16, 4),
        ("barrier", 0),
    ]
    assert list(expand_macro(iter(macros))) == roundtrip(macros)


# ---------------------------------------------------------------------------
# run splitting and chunking
# ---------------------------------------------------------------------------

def test_long_fused_run_splits_at_max_run():
    ops = [("r", 8 * k) for k in range(10)]
    code = compile_flat(iter(ops), max_run=4)
    assert code == [
        OP_R_RUN, 0, 8, 4,
        OP_R_RUN, 32, 8, 4,
        OP_R_RUN, 64, 8, 2,
    ]
    assert roundtrip(ops, max_run=4) == ops


def test_long_macro_run_splits_at_max_run():
    code = compile_flat([("wr", 0, 8, 9)], max_run=4)
    assert code == [
        OP_W_RUN, 0, 8, 4,
        OP_W_RUN, 32, 8, 4,
        OP_W_RUN, 64, 8, 1,
    ]


def test_instructions_never_straddle_chunks():
    ops = []
    for k in range(200):
        ops.append(("r", 64 * k))
        ops.append(("work", k % 3))
    chunks = list(compile_chunks(iter(ops), chunk_words=16))
    assert len(chunks) > 1
    for chunk in chunks:
        # each chunk decodes standalone — expand_chunks raises on a
        # truncated instruction
        list(expand_chunks([chunk]))
    assert list(expand_chunks(chunks)) == ops


def test_default_chunk_capacity_is_bounded():
    ops = [("r", 64 * k) for k in range(0, 3 * CHUNK_WORDS, 2)]
    # stride is constant, so this fuses to a handful of words
    chunks = list(compile_chunks(iter(ops)))
    assert len(chunks) == 1 and len(chunks[0]) == 4


def test_chunk_words_floor_is_enforced():
    with pytest.raises(ConfigError):
        list(compile_chunks(iter([]), chunk_words=8))
    with pytest.raises(ConfigError):
        list(compile_chunks(iter([]), max_run=1))


def test_unknown_op_raises():
    with pytest.raises(SimulationError):
        compile_flat([("frobnicate", 1)])


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def test_elems_in_block_power_of_two():
    assert elems_in_block(0, 8, 64) == 8
    assert elems_in_block(56, 8, 64) == 1
    assert elems_in_block(60, 8, 64) == 1  # partial element still counts


def test_elems_in_block_non_power_of_two():
    # write-buffer blocks may be any size
    assert elems_in_block(0, 8, 48) == 6
    assert elems_in_block(50, 8, 48) == 6  # block [48, 96)


def test_elems_in_block_stride_larger_than_block():
    assert elems_in_block(0, 128, 64) == 1


def test_elems_in_block_rejects_bad_stride():
    with pytest.raises(ConfigError):
        elems_in_block(0, 0, 64)


class _FakeMatrix:
    def __init__(self, bases, row_bytes=64):
        self._row_base = bases
        self.row_bytes = row_bytes


def test_row_pitch_even_rows():
    assert row_pitch(_FakeMatrix([0, 128, 256, 384])) == 128


def test_row_pitch_uneven_rows_is_zero():
    assert row_pitch(_FakeMatrix([0, 128, 300])) == 0


def test_row_pitch_single_row_falls_back_to_row_bytes():
    assert row_pitch(_FakeMatrix([512], row_bytes=96)) == 96


# ---------------------------------------------------------------------------
# mode selection
# ---------------------------------------------------------------------------

def test_ops_mode_defaults_to_compiled(monkeypatch):
    monkeypatch.delenv(OPS_ENV, raising=False)
    assert ops_mode() == "compiled"


def test_ops_mode_env_escape_hatch(monkeypatch):
    monkeypatch.setenv(OPS_ENV, "gen")
    assert ops_mode() == "gen"


def test_ops_mode_rejects_unknown(monkeypatch):
    monkeypatch.setenv(OPS_ENV, "vectorized")
    with pytest.raises(ConfigError):
        ops_mode()
