"""Lockstep differential: ``REPRO_OPS=compiled`` vs ``gen``.

The compiled front end (integer-coded op chunks + stride superops,
DESIGN.md §13) promises *bit identity* with the generator path: same
statistics, same simulated timing, same value traces, same event count.
These tests run every paper kernel under both front ends across the
protocol / switch-cache matrix and compare complete run fingerprints.

The small app scales here are chosen so the whole matrix stays in
tier-1 time; the full quick/full-scale sweep runs in the bench harness
(``repro-experiments bench``), whose ops section asserts the same
identity on every CI run.
"""

import pytest

from repro.apps.opstream import OPS_ENV
from repro.apps.synthetic import PrivateWork, UniformRandom
from repro.experiments.common import make_app
from repro.system.machine import Machine
from repro.system.presets import base_config, switch_cache_config

#: small instances of the six paper kernels — big enough to cross
#: block/chunk boundaries and fill the write buffer, small enough that
#: the 24-cell matrix stays cheap
SMALL_SCALE = {
    "FWA": {"n": 12},
    "GS": {"n_vectors": 8, "length": 12},
    "GE": {"n": 12},
    "MM": {"n": 12},
    "SOR": {"n": 16, "iterations": 1},
    "FFT": {"m": 8},
}

APPS = sorted(SMALL_SCALE)
PROTOCOLS = ("msi", "mesi")
SWITCH = ("off", "on")


def _config(protocol, switch, **overrides):
    if switch == "on":
        return switch_cache_config(4, protocol=protocol, **overrides)
    return base_config(4, protocol=protocol, **overrides)


def _small_app(name):
    return make_app(name, "quick", SMALL_SCALE[name])


def fingerprint(config, app, mode, monkeypatch):
    """Everything observable from one run: stats payload, event count,
    per-processor value and write traces."""
    monkeypatch.setenv(OPS_ENV, mode)
    machine = Machine(config, sanitize=False)
    stats = machine.run(app)
    traces = {}
    for stack in machine.stacks():
        traces[("v", stack.proc_id)] = list(stack.processor.value_trace)
        traces[("w", stack.proc_id)] = list(stack.write_trace)
    return stats.to_payload(), machine.sim.events_fired, traces


def assert_identical(config, app_factory, monkeypatch):
    gen = fingerprint(config, app_factory(), "gen", monkeypatch)
    compiled = fingerprint(config, app_factory(), "compiled", monkeypatch)
    assert gen[0] == compiled[0], "stats diverged between front ends"
    assert gen[1] == compiled[1], "event counts diverged between front ends"
    assert gen[2] == compiled[2], "traces diverged between front ends"


@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("switch", SWITCH)
@pytest.mark.parametrize("app_name", APPS)
def test_paper_kernels_bit_identical(app_name, protocol, switch, monkeypatch):
    config = _config(protocol, switch)
    assert_identical(config, lambda: _small_app(app_name), monkeypatch)


@pytest.mark.parametrize("app_name", ["GE", "SOR"])
def test_value_tracing_bit_identical(app_name, monkeypatch):
    # trace_values=True takes the per-element paths (bulk retirement is
    # reserved for untraced runs); both modes must still agree
    config = _config("msi", "on", trace_values=True)
    assert_identical(config, lambda: _small_app(app_name), monkeypatch)


def test_object_state_kernels_bit_identical(monkeypatch):
    # the REPRO_STATE=obj reference models lack the slot fast path, so
    # the compiled loop falls back to per-element probes — still
    # bit-identical
    from repro.cache.states import STATE_ENV

    monkeypatch.setenv(STATE_ENV, "obj")
    assert_identical(_config("msi", "on"), lambda: _small_app("GE"),
                     monkeypatch)


def test_heap_engine_bit_identical(monkeypatch):
    from repro.sim.engine import ENGINE_ENV

    monkeypatch.setenv(ENGINE_ENV, "heap")
    assert_identical(_config("mesi", "on"), lambda: _small_app("FWA"),
                     monkeypatch)


def test_synthetic_alias_pattern_bit_identical(monkeypatch):
    # PrivateWork's loop reads and rewrites the same element: the
    # aliased read-before-write slot is the trickiest batch case
    config = _config("msi", "on")
    assert_identical(config, lambda: PrivateWork(), monkeypatch)


def test_synthetic_irregular_stream_bit_identical(monkeypatch):
    # seeded-random streams defeat the peephole almost everywhere:
    # exercises the elementary-op decode loop
    config = _config("msi", "off")
    assert_identical(
        config, lambda: UniformRandom(ops_per_proc=150), monkeypatch
    )
