"""Per-application integration assertions on the 16-node machine.

Each of the six kernels has a characteristic protocol footprint the
paper's analysis relies on; these tests pin that footprint (and the
coherence audit) at small-but-16-node scale.
"""

import pytest

from repro.apps import (
    FloydWarshall,
    GaussianElimination,
    GramSchmidt,
    MatrixMultiply,
    RedBlackSOR,
    SixStepFFT,
)
from repro.system.config import SystemConfig
from repro.system.machine import Machine

from conftest import assert_coherent


def run16(app, **overrides):
    defaults = dict(num_nodes=16, l1_size=2048, l2_size=8192)
    defaults.update(overrides)
    machine = Machine(SystemConfig(**defaults))
    stats = machine.run(app)
    return machine, stats


class TestFWA:
    def test_pivot_row_read_by_all(self):
        machine, stats = run16(FloydWarshall(n=16))
        hist = stats.sharing_histogram(16)
        # the row-k broadcast dominates: most reads hit 16-reader blocks
        assert hist[16] > 0.5 * sum(hist.values())
        assert_coherent(machine)

    def test_rewrite_of_old_pivots_causes_invalidations(self):
        machine, _stats = run16(FloydWarshall(n=16))
        total_invs = sum(node.invs_received for node in machine.nodes)
        assert total_invs > 0

    def test_switch_caches_capture_broadcast(self):
        machine, stats = run16(FloydWarshall(n=16), switch_cache_size=1024)
        assert stats.read_counts["switch"] > stats.reads_at_remote_memory()
        assert_coherent(machine)


class TestGE:
    def test_barrier_count_matches_structure(self):
        machine, _stats = run16(GaussianElimination(n=16))
        # one barrier per elimination step plus the closing one
        assert machine.barriers.episodes == 16

    def test_upgrades_dominate_writes(self):
        # row owners update in place after reading: upgrades, not READX
        machine, _stats = run16(GaussianElimination(n=16))
        upgrades = sum(n.l2ctrl.upgrades_issued for n in machine.nodes)
        assert upgrades > 0


class TestGS:
    def test_basis_vector_shared(self):
        machine, stats = run16(GramSchmidt(n_vectors=12, length=16))
        assert stats.mean_sharing_degree() > 4
        assert_coherent(machine)


class TestMM:
    def test_a_and_c_stay_local(self):
        machine, stats = run16(MatrixMultiply(n=16))
        # A rows are local; remote traffic is essentially all B
        dist = stats.service_distribution()
        assert dist["local_mem"] < 0.05
        assert_coherent(machine)

    def test_no_barriers_needed(self):
        machine, _stats = run16(MatrixMultiply(n=16))
        assert machine.barriers.episodes == 0


class TestSOR:
    def test_only_boundary_rows_remote(self):
        machine, stats = run16(RedBlackSOR(n=32, iterations=1))
        # interior reads are local: remote reads are a small fraction
        assert stats.remote_reads() < 0.2 * stats.total_reads()
        assert_coherent(machine)

    def test_red_black_phases_barrier_per_color(self):
        machine, _stats = run16(RedBlackSOR(n=32, iterations=2))
        assert machine.barriers.episodes == 2 * 2


class TestFFT:
    def test_no_block_read_by_two_procs(self):
        machine, stats = run16(SixStepFFT(m=12))
        assert stats.mean_sharing_degree() == pytest.approx(1.0)

    def test_transpose_traffic_is_remote_heavy(self):
        machine, stats = run16(SixStepFFT(m=12))
        assert stats.reads_at_remote_memory() > 0
        assert_coherent(machine)

    def test_switch_caches_cannot_help(self):
        base_machine, base = run16(SixStepFFT(m=12))
        sc_machine, sc = run16(SixStepFFT(m=12), switch_cache_size=4096)
        assert sc.read_counts["switch"] == 0
        assert sc.exec_time == base.exec_time


class TestCrossAppProperties:
    @pytest.mark.parametrize("app_fn", [
        lambda: FloydWarshall(n=12),
        lambda: GaussianElimination(n=12),
        lambda: GramSchmidt(n_vectors=8, length=12),
        lambda: MatrixMultiply(n=12),
        lambda: RedBlackSOR(n=24, iterations=1),
        lambda: SixStepFFT(m=12),
    ])
    def test_work_conservation(self, app_fn):
        """Total reads recorded equals the op stream's read count."""
        machine = Machine(SystemConfig(num_nodes=16, l1_size=2048,
                                       l2_size=8192))
        app = app_fn()
        app.setup(machine)
        expected_reads = sum(
            1
            for proc in range(16)
            for op in app.ops(proc, machine)
            if op[0] == "r"
        )
        # fresh machine for the actual run (setup allocates)
        machine2 = Machine(SystemConfig(num_nodes=16, l1_size=2048,
                                        l2_size=8192))
        stats = machine2.run(app_fn())
        assert stats.total_reads() == expected_reads
