"""The parallel executor and the on-disk run cache.

Three properties keep the caching layers honest:

* **parallel == serial** — a run simulated in a pool worker and shipped
  back as a payload is bit-identical to the same run simulated inline;
* **disk round-trip** — a record stored to and reloaded from the run
  cache reproduces every statistic, and a warm cache performs zero new
  simulations;
* **keys/plans cannot alias** — the memo/disk key covers every
  ``SystemConfig`` field, and the per-experiment plans enumerate exactly
  the runs the serial runners perform (checked for cheap experiments).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments import common, parallel, runcache
from repro.experiments.common import RunRecord, config_key, run_key
from repro.experiments.registry import run_experiment
from repro.system.config import KB, SystemConfig
from repro.system.presets import base_config, switch_cache_config

GS_SPECS = [
    parallel.RunSpec("GS", "quick", base_config()),
    parallel.RunSpec("GS", "quick", switch_cache_config(size=2 * KB)),
]


@pytest.fixture
def isolated_caches(tmp_path, monkeypatch):
    """Fresh memo + a throwaway disk cache dir, disabled afterwards."""
    monkeypatch.setenv("REPRO_RUNCACHE_DIR", str(tmp_path / "runcache"))
    common.clear_cache()
    runcache.set_enabled(False)
    yield tmp_path / "runcache"
    runcache.set_enabled(False)
    common.clear_cache()


# ----------------------------------------------------------------------
# parallel == serial
# ----------------------------------------------------------------------
def test_parallel_matches_serial(isolated_caches):
    serial = {
        spec.key(): common.execute(
            spec.app, spec.scale, spec.config, spec.overrides
        )
        for spec in GS_SPECS
    }
    counters = parallel.execute_specs(list(GS_SPECS), jobs=2)
    assert counters["executed"] == len(GS_SPECS)
    for key, reference in serial.items():
        pooled = common.memoized(key)
        assert pooled is not None
        assert pooled.exec_time == reference.exec_time
        assert pooled.switch_totals == reference.switch_totals
        assert (
            pooled.stats.breakdown_means() == reference.stats.breakdown_means()
        )
        assert pooled.to_payload() == reference.to_payload()


def test_prewarmed_memo_serves_runners(isolated_caches):
    parallel.execute_specs(list(GS_SPECS), jobs=2)
    record = common.memoized(GS_SPECS[0].key())
    assert common.run("GS", "quick", base_config()) is record


# ----------------------------------------------------------------------
# disk cache round-trip
# ----------------------------------------------------------------------
def test_runcache_round_trip(isolated_caches):
    runcache.set_enabled(True)
    first = common.run("GS", "quick", base_config())
    stored = first.to_payload()
    common.clear_cache()  # evict the memo: force the disk path
    second = common.run("GS", "quick", base_config())
    assert second is not first
    assert second.to_payload() == stored
    assert second.exec_time == first.exec_time
    assert second.stats.to_dict() == first.stats.to_dict()


def test_warm_runcache_does_zero_simulations(isolated_caches, monkeypatch):
    runcache.set_enabled(True)
    common.run("GS", "quick", base_config())
    common.clear_cache()

    def boom(*args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("warm cache must not simulate")

    monkeypatch.setattr(common, "execute", boom)
    common.run("GS", "quick", base_config())


def test_runcache_disabled_by_default(isolated_caches):
    assert not runcache.is_enabled()
    common.run("GS", "quick", base_config())
    assert not (isolated_caches).exists()  # nothing written


def test_runcache_version_mismatch_misses(isolated_caches, monkeypatch):
    runcache.set_enabled(True)
    config = base_config()
    current = runcache.CACHE_FORMAT_VERSION
    first = common.run("GS", "quick", config)
    monkeypatch.setattr(runcache, "CACHE_FORMAT_VERSION", current + 1)
    assert runcache.load("GS", "quick", config) is None
    # a fresh store under the new version must not clobber the old entry
    runcache.store("GS", "quick", config, first.to_payload())
    monkeypatch.setattr(runcache, "CACHE_FORMAT_VERSION", current)
    assert runcache.load("GS", "quick", config) is not None


# ----------------------------------------------------------------------
# key coverage
# ----------------------------------------------------------------------
def test_config_key_covers_every_field():
    key = config_key(SystemConfig())
    assert len(key) == len(dataclasses.fields(SystemConfig))


def test_config_key_distinguishes_network_model():
    # the historical aliasing bug: A8's message- and flit-model runs
    # must never share a memo entry
    message = SystemConfig(num_nodes=4, network_model="message")
    flit = SystemConfig(num_nodes=4, network_model="flit")
    assert config_key(message) != config_key(flit)
    assert (
        runcache.config_fingerprint(message)
        != runcache.config_fingerprint(flit)
    )


def test_run_key_includes_app_overrides():
    config = base_config()
    assert run_key("GE", "quick", config) != run_key(
        "GE", "quick", config, {"n": 16}
    )


def test_stage_sets_key_deterministically():
    a = switch_cache_config(size=2 * KB, stages={0, 2})
    b = switch_cache_config(size=2 * KB, stages={2, 0})
    assert config_key(a) == config_key(b)
    assert runcache.config_fingerprint(a) == runcache.config_fingerprint(b)


# ----------------------------------------------------------------------
# plan coverage (cheap experiments only; a plan miss is benign but
# a drifted plan should be caught here)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("exp_id", ["F3", "E9"])
def test_plan_matches_runner(isolated_caches, exp_id):
    before = set(common.memoized_keys())
    run_experiment(exp_id, "quick")
    requested = set(common.memoized_keys()) - before
    planned = {spec.key() for spec in parallel.plan([exp_id], "quick")}
    assert requested == planned


def test_plans_exist_for_every_experiment():
    from repro.experiments.registry import EXPERIMENTS

    assert set(parallel.PLANS) == set(EXPERIMENTS)


# ----------------------------------------------------------------------
# payload round-trip is exact (the property the layers above rely on)
# ----------------------------------------------------------------------
def test_payload_round_trip_exact(isolated_caches):
    record = common.run("GS", "quick", switch_cache_config(size=2 * KB))
    payload = record.to_payload()
    rebuilt = RunRecord.from_payload(payload)
    assert rebuilt.to_payload() == payload
    assert rebuilt.stats.to_dict() == record.stats.to_dict()
    assert rebuilt.stats.sharing_histogram(16) == (
        record.stats.sharing_histogram(16)
    )
    assert rebuilt.stats.ideal_global_hit_rate() == (
        record.stats.ideal_global_hit_rate()
    )


def test_payload_carries_metrics_histograms(isolated_caches):
    record = common.run("GS", "quick", switch_cache_config(size=2 * KB))
    assert record.metrics is not None
    payload = record.to_payload()
    assert payload["metrics"]["histograms"]
    rebuilt = RunRecord.from_payload(payload)
    assert rebuilt.metrics.to_payload() == record.metrics.to_payload()
    # pre-metrics payloads (no key at all) rebuild with metrics=None
    legacy = dict(payload)
    del legacy["metrics"]
    assert RunRecord.from_payload(legacy).metrics is None


# ----------------------------------------------------------------------
# run-cache hygiene: clear/prune and the fingerprint serializer
# ----------------------------------------------------------------------
def test_clear_removes_orphaned_tmp_files(isolated_caches):
    runcache.set_enabled(True)
    common.run("GS", "quick", base_config())
    directory = runcache.cache_dir()
    # an interrupted store() dies between mkstemp and os.replace
    orphan = directory / "tmpdead01.tmp"
    orphan.write_text("{}")
    removed = runcache.clear()
    assert removed == 2  # the entry AND the orphan
    assert not list(directory.iterdir())


def test_prune_drops_stale_versions_and_tmp_only(isolated_caches):
    runcache.set_enabled(True)
    common.run("GS", "quick", base_config())
    directory = runcache.cache_dir()
    current = next(directory.glob("*.json"))
    old_entry = directory / "GS-quick-0123456789abcdef0123.v1.json"
    old_entry.write_text("{}")
    orphan = directory / "tmpdead02.tmp"
    orphan.write_text("{}")
    assert runcache.prune() == 2
    assert current.exists()
    assert not old_entry.exists() and not orphan.exists()
    # pruning again is a no-op; the live entry still loads
    assert runcache.prune() == 0
    assert runcache.load("GS", "quick", base_config()) is not None


def test_fingerprint_handles_nested_containers():
    # regression: _jsonable only converted the top level, so a tuple of
    # frozensets (or any nested set) crashed json.dumps
    config = base_config()
    overrides = {
        "mix": (frozenset({1, 2}), frozenset({3})),
        "nested": {"inner": {4, 5}},
        "deep": [({"a"}, ("b", {"c": (6,)}))],
    }
    digest = runcache.config_fingerprint(config, overrides)
    assert len(digest) == 64
    # order inside sets must not matter
    reordered = {
        "mix": (frozenset({2, 1}), frozenset({3})),
        "nested": {"inner": {5, 4}},
        "deep": [({"a"}, ("b", {"c": (6,)}))],
    }
    assert runcache.config_fingerprint(config, reordered) == digest


# ----------------------------------------------------------------------
# cache counters reconcile with what execute_specs actually did
# ----------------------------------------------------------------------
@pytest.fixture
def reset_counters(monkeypatch):
    monkeypatch.setattr(runcache, "hits", 0)
    monkeypatch.setattr(runcache, "misses", 0)
    monkeypatch.setattr(runcache, "stores", 0)


@pytest.mark.parametrize("jobs", [1, 2])
def test_cold_prewarm_counters_reconcile(isolated_caches, reset_counters,
                                         jobs):
    # regression (serial path): execute_specs probed the disk cache once
    # per spec, then handed off to common.run which probed AGAIN — so a
    # cold jobs=1 prewarm reported 2x the true miss count
    runcache.set_enabled(True)
    counters = parallel.execute_specs(list(GS_SPECS), jobs=jobs)
    assert counters["executed"] == len(GS_SPECS)
    stats = runcache.stats()
    assert stats["misses"] == counters["planned"]
    assert stats["stores"] == counters["executed"]
    assert stats["hits"] == 0


def test_warm_prewarm_counters_reconcile(isolated_caches, reset_counters):
    runcache.set_enabled(True)
    parallel.execute_specs(list(GS_SPECS), jobs=1)
    common.clear_cache()  # drop the memo so the disk layer must answer
    before = runcache.stats()
    counters = parallel.execute_specs(list(GS_SPECS), jobs=1)
    assert counters["disk"] == len(GS_SPECS)
    assert counters["executed"] == 0
    after = runcache.stats()
    assert after["hits"] - before["hits"] == counters["disk"]
    assert after["misses"] == before["misses"]
    assert after["stores"] == before["stores"]
